"""Empirical analyses of Section III-B (Fig. 4).

Four analyses over a dataset + its BN:

* **time burst** (Fig. 4a-b): dispersion of each user's log timestamps and
  their concentration around the application time;
* **temporal aggregation** (Fig. 4c): pairwise time intervals between logs of
  *different users* sharing the same ``(type, value)``;
* **homophily** (Fig. 4d-g): fraud ratio of the n-hop neighbourhood, overall
  and per edge type;
* **structural difference** (Fig. 4h-i): mean (weighted) degree of the n-th
  hop neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datagen.behavior_types import BehaviorType
from ..datagen.entities import DAY, Dataset
from ..network.bn import BehaviorNetwork

__all__ = [
    "TimeBurstSummary",
    "time_burst_summary",
    "temporal_aggregation_intervals",
    "hop_fraud_ratios",
    "hop_degrees",
]


@dataclass(slots=True)
class TimeBurstSummary:
    """Per-class activity dispersion (the Fig. 4a-b contrast)."""

    mean_span_days: float
    mean_std_days: float
    near_application_fraction: float
    n_users: int


def time_burst_summary(
    dataset: Dataset, fraud: bool, window_days: float = 3.0
) -> TimeBurstSummary:
    """Summarize log-time dispersion for one class of users.

    ``near_application_fraction`` is the share of a user's logs falling
    within ``window_days`` of their (first) application.
    """
    logs_by_user = dataset.logs_by_user()
    txns_by_user = dataset.transactions_by_user()
    labels = dataset.labels
    spans: list[float] = []
    stds: list[float] = []
    near: list[float] = []
    for uid, label in labels.items():
        if bool(label) != fraud:
            continue
        logs = logs_by_user.get(uid)
        txns = txns_by_user.get(uid)
        if not logs or not txns:
            continue
        times = np.asarray([log.timestamp for log in logs])
        spans.append(float(times.max() - times.min()) / DAY)
        stds.append(float(times.std()) / DAY)
        app_time = min(t.created_at for t in txns)
        near.append(float(np.mean(np.abs(times - app_time) <= window_days * DAY)))
    if not spans:
        raise ValueError("no users of the requested class")
    return TimeBurstSummary(
        mean_span_days=float(np.mean(spans)),
        mean_std_days=float(np.mean(stds)),
        near_application_fraction=float(np.mean(near)),
        n_users=len(spans),
    )


def temporal_aggregation_intervals(
    dataset: Dataset,
    btype: BehaviorType,
    fraud_pairs: bool,
    max_pairs_per_value: int = 200,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Pairwise |Δt| (days) between different users' logs sharing a value.

    ``fraud_pairs`` selects pairs where both users are fraudsters (versus
    both normal); mixed pairs are skipped, matching Fig. 4c's two series.
    """
    rng = rng or np.random.default_rng(0)
    labels = dataset.labels
    by_value: dict[str, list[tuple[int, float]]] = {}
    for log in dataset.logs:
        if log.btype != btype:
            continue
        if log.uid not in labels:
            continue
        by_value.setdefault(log.value, []).append((log.uid, log.timestamp))

    intervals: list[float] = []
    for entries in by_value.values():
        users = {uid for uid, _ in entries}
        if len(users) < 2:
            continue
        if len(entries) > 60:
            chosen = rng.choice(len(entries), size=60, replace=False)
            entries = [entries[i] for i in chosen]
        count = 0
        for i, (u, tu) in enumerate(entries):
            for v, tv in entries[i + 1 :]:
                if u == v:
                    continue
                both_fraud = labels[u] == 1 and labels[v] == 1
                both_normal = labels[u] == 0 and labels[v] == 0
                if (fraud_pairs and both_fraud) or (not fraud_pairs and both_normal):
                    intervals.append(abs(tu - tv) / DAY)
                    count += 1
                    if count >= max_pairs_per_value:
                        break
            if count >= max_pairs_per_value:
                break
    return np.asarray(intervals)


def hop_fraud_ratios(
    bn: BehaviorNetwork,
    labels: dict[int, int],
    fraud: bool,
    max_hops: int = 3,
    btype: BehaviorType | None = None,
    max_seeds: int = 500,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """Mean fraud ratio among exactly-n-hop neighbours, n = 1..max_hops.

    Restricting to ``btype`` gives the per-type homophily of Fig. 4e-g.
    """
    rng = rng or np.random.default_rng(0)
    seeds = [u for u, l in labels.items() if bool(l) == fraud and u in bn]
    if len(seeds) > max_seeds:
        chosen = rng.choice(len(seeds), size=max_seeds, replace=False)
        seeds = [seeds[i] for i in chosen]
    allowed = set(labels)
    ratios: list[list[float]] = [[] for _ in range(max_hops)]
    for seed in seeds:
        distances = _khop(bn, seed, max_hops, allowed, btype)
        for hop in range(1, max_hops + 1):
            at_hop = [v for v, d in distances.items() if d == hop]
            if at_hop:
                ratios[hop - 1].append(
                    float(np.mean([labels[v] for v in at_hop]))
                )
    return [float(np.mean(r)) if r else float("nan") for r in ratios]


def hop_degrees(
    bn: BehaviorNetwork,
    labels: dict[int, int],
    fraud: bool,
    max_hops: int = 3,
    weighted: bool = False,
    max_seeds: int = 400,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """Mean (weighted) degree of exactly-n-hop neighbours (Fig. 4h-i).

    Hop 0 would be the seeds themselves; the returned list starts at hop 1.
    """
    rng = rng or np.random.default_rng(0)
    seeds = [u for u, l in labels.items() if bool(l) == fraud and u in bn]
    if len(seeds) > max_seeds:
        chosen = rng.choice(len(seeds), size=max_seeds, replace=False)
        seeds = [seeds[i] for i in chosen]
    allowed = set(labels)
    values: list[list[float]] = [[] for _ in range(max_hops + 1)]
    for seed in seeds:
        distances = _khop(bn, seed, max_hops, allowed, None)
        for node, hop in distances.items():
            metric = (
                bn.weighted_degree(node) if weighted else float(bn.degree(node))
            )
            values[hop].append(metric)
    return [float(np.mean(v)) if v else float("nan") for v in values]


def _khop(
    bn: BehaviorNetwork,
    seed: int,
    max_hops: int,
    allowed: set[int],
    btype: BehaviorType | None,
) -> dict[int, int]:
    distances = {seed: 0}
    frontier = [seed]
    for depth in range(1, max_hops + 1):
        next_frontier: list[int] = []
        for node in frontier:
            for neighbor in bn.neighbors(node, btype):
                if neighbor in distances or neighbor not in allowed:
                    continue
                distances[neighbor] = depth
                next_frontier.append(neighbor)
        frontier = next_frontier
    return distances
