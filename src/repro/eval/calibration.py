"""Decision-threshold calibration.

Section VI-E: "To strike a balance between reducing the fraud ratio and
ensuring normal applications are not being blocked, a relatively high
threshold should be dynamically preset based on experts' long-time
observation of the prediction results."  These utilities replace the
expert eyeballing with explicit operating-point selection on a validation
set: pick the threshold meeting a precision floor (block few good users)
while maximizing recall, or maximize F-beta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import _validate

__all__ = ["OperatingPoint", "threshold_for_precision", "threshold_for_fbeta"]


@dataclass(slots=True)
class OperatingPoint:
    """A chosen threshold and the validation metrics it achieves."""

    threshold: float
    precision: float
    recall: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"threshold={self.threshold:.3f}"
            f" (precision={self.precision:.3f}, recall={self.recall:.3f})"
        )


def _sweep(labels: np.ndarray, scores: np.ndarray):
    """Yield (threshold, precision, recall) at every distinct score cut."""
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tps = np.cumsum(sorted_labels)
    positives = np.arange(1, len(labels) + 1)
    n_pos = int(labels.sum())
    # Cut after each distinct score value.
    distinct = np.r_[np.flatnonzero(np.diff(sorted_scores)), len(labels) - 1]
    for index in distinct:
        tp = tps[index]
        precision = tp / positives[index]
        recall = tp / n_pos if n_pos else 0.0
        yield float(sorted_scores[index]), float(precision), float(recall)


def threshold_for_precision(
    labels: np.ndarray,
    scores: np.ndarray,
    min_precision: float = 0.9,
) -> OperatingPoint:
    """Highest-recall threshold whose validation precision >= the floor.

    Falls back to the most conservative cut (highest distinct score) when no
    threshold achieves the floor — the deployment would rather block almost
    nothing than block good customers.
    """
    if not 0.0 < min_precision <= 1.0:
        raise ValueError("min_precision must be in (0, 1]")
    labels, scores = _validate(labels, scores)
    best: OperatingPoint | None = None
    fallback: OperatingPoint | None = None
    for threshold, precision, recall in _sweep(labels, scores):
        point = OperatingPoint(threshold, precision, recall)
        if fallback is None:
            fallback = point
        if precision >= min_precision and (best is None or recall > best.recall):
            best = point
    chosen = best if best is not None else fallback
    assert chosen is not None  # _validate guarantees non-empty input
    return chosen


def threshold_for_fbeta(
    labels: np.ndarray,
    scores: np.ndarray,
    beta: float = 1.0,
) -> OperatingPoint:
    """Threshold maximizing F-beta on the validation scores."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    labels, scores = _validate(labels, scores)
    b2 = beta * beta
    best: OperatingPoint | None = None
    best_f = -1.0
    for threshold, precision, recall in _sweep(labels, scores):
        if precision + recall == 0:
            continue
        f = (1 + b2) * precision * recall / (b2 * precision + recall)
        if f > best_f:
            best_f = f
            best = OperatingPoint(threshold, precision, recall)
    assert best is not None
    return best
