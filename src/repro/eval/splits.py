"""Train/test splitting by UID (the paper splits 80/20 on user id)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["UidSplit", "split_by_uid"]


@dataclass(slots=True)
class UidSplit:
    """UID-level split; provides row masks for transaction-aligned arrays."""

    train_uids: set[int]
    test_uids: set[int]

    def train_mask(self, uids: Sequence[int]) -> np.ndarray:
        """Boolean row mask selecting training uids."""
        return np.asarray([u in self.train_uids for u in uids])

    def test_mask(self, uids: Sequence[int]) -> np.ndarray:
        """Boolean row mask selecting held-out uids."""
        return np.asarray([u in self.test_uids for u in uids])


def split_by_uid(
    uids: Sequence[int],
    labels: dict[int, int] | None = None,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
    stratify: bool = True,
) -> UidSplit:
    """Randomly split distinct UIDs into train/test sets.

    With ``stratify`` and ``labels`` provided, positives and negatives are
    split separately so the scarce fraud class is represented in both sides
    (important at D1's low positive rate).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    distinct = np.asarray(sorted(set(uids)))
    if distinct.size < 2:
        raise ValueError("need at least two distinct uids to split")

    if stratify and labels is not None:
        positives = np.asarray([u for u in distinct if labels.get(u, 0) == 1])
        negatives = np.asarray([u for u in distinct if labels.get(u, 0) != 1])
        test: set[int] = set()
        for group in (positives, negatives):
            if group.size == 0:
                continue
            n_test = max(1, int(round(group.size * test_fraction)))
            chosen = rng.choice(group, size=min(n_test, group.size), replace=False)
            test.update(int(u) for u in chosen)
    else:
        n_test = max(1, int(round(distinct.size * test_fraction)))
        chosen = rng.choice(distinct, size=n_test, replace=False)
        test = {int(u) for u in chosen}

    train = {int(u) for u in distinct} - test
    return UidSplit(train_uids=train, test_uids=test)
