"""Evaluation metrics of Table III: precision, recall, F1, F2, AUC.

F2 weighs recall twice as much as precision — appropriate for fraud detection
where a missed fraudster costs the full item value while a false alarm costs
one manual review.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "precision_score",
    "recall_score",
    "fbeta_score",
    "f1_score",
    "roc_auc_score",
    "roc_curve",
    "confusion",
    "ClassificationReport",
    "classification_report",
]


def _validate(labels: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels).ravel()
    values = np.asarray(values, dtype=np.float64).ravel()
    if labels.shape != values.shape:
        raise ValueError("labels and predictions must have the same length")
    if labels.size == 0:
        raise ValueError("empty inputs")
    if not np.isin(labels, (0, 1)).all():
        raise ValueError("labels must be binary {0, 1}")
    return labels.astype(np.int64), values


def confusion(labels: np.ndarray, predicted: np.ndarray) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, fn, tn)`` for binary ``predicted`` in {0, 1}."""
    labels, predicted = _validate(labels, predicted)
    predicted = predicted > 0.5
    positive = labels == 1
    tp = int(np.sum(predicted & positive))
    fp = int(np.sum(predicted & ~positive))
    fn = int(np.sum(~predicted & positive))
    tn = int(np.sum(~predicted & ~positive))
    return tp, fp, fn, tn


def precision_score(labels: np.ndarray, predicted: np.ndarray) -> float:
    """Fraction of predicted positives that are true positives."""
    tp, fp, _fn, _tn = confusion(labels, predicted)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(labels: np.ndarray, predicted: np.ndarray) -> float:
    """Fraction of true positives that were predicted positive."""
    tp, _fp, fn, _tn = confusion(labels, predicted)
    return tp / (tp + fn) if tp + fn else 0.0


def fbeta_score(labels: np.ndarray, predicted: np.ndarray, beta: float) -> float:
    """Weighted harmonic mean of precision and recall (beta weights recall)."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    precision = precision_score(labels, predicted)
    recall = recall_score(labels, predicted)
    if precision == 0.0 and recall == 0.0:
        return 0.0
    b2 = beta * beta
    return (1 + b2) * precision * recall / (b2 * precision + recall)


def f1_score(labels: np.ndarray, predicted: np.ndarray) -> float:
    """Harmonic mean of precision and recall (F-beta with beta=1)."""
    return fbeta_score(labels, predicted, beta=1.0)


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """AUC via the rank (Mann-Whitney U) statistic, tie-aware."""
    labels, scores = _validate(labels, scores)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC is undefined with a single class")
    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    # Average ranks over ties.
    ranks = np.empty(labels.size, dtype=np.float64)
    i = 0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[labels == 1].sum()
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def roc_curve(
    labels: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(fpr, tpr, thresholds)`` at every distinct score."""
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    scores = scores[order]
    distinct = np.r_[np.flatnonzero(np.diff(scores)), labels.size - 1]
    tps = np.cumsum(labels)[distinct]
    fps = (distinct + 1) - tps
    n_pos = labels.sum()
    n_neg = labels.size - n_pos
    tpr = np.r_[0.0, tps / max(n_pos, 1)]
    fpr = np.r_[0.0, fps / max(n_neg, 1)]
    thresholds = np.r_[np.inf, scores[distinct]]
    return fpr, tpr, thresholds


@dataclass(slots=True)
class ClassificationReport:
    """One row of Table III (percentages)."""

    precision: float
    recall: float
    f1: float
    f2: float
    auc: float

    def as_percentages(self) -> dict[str, float]:
        """Metrics scaled to percent, keyed by Table III column names."""
        return {
            "Precision": 100.0 * self.precision,
            "Recall": 100.0 * self.recall,
            "F1": 100.0 * self.f1,
            "F2": 100.0 * self.f2,
            "AUC": 100.0 * self.auc,
        }


def classification_report(
    labels: np.ndarray, scores: np.ndarray, threshold: float = 0.5
) -> ClassificationReport:
    """Full Table III metric row at the given classification threshold."""
    labels_arr, scores_arr = _validate(labels, scores)
    predicted = (scores_arr >= threshold).astype(np.int64)
    return ClassificationReport(
        precision=precision_score(labels_arr, predicted),
        recall=recall_score(labels_arr, predicted),
        f1=f1_score(labels_arr, predicted),
        f2=fbeta_score(labels_arr, predicted, beta=2.0),
        auc=roc_auc_score(labels_arr, scores_arr),
    )
