"""Evaluation: metrics, splits, experiment running, empirical analyses."""

from .metrics import (
    ClassificationReport,
    classification_report,
    confusion,
    f1_score,
    fbeta_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from .calibration import OperatingPoint, threshold_for_fbeta, threshold_for_precision
from .runner import (
    ExperimentData,
    MethodResult,
    prepare_experiment,
    repeat_method,
    run_method,
)
from .splits import UidSplit, split_by_uid

__all__ = [
    "precision_score",
    "recall_score",
    "f1_score",
    "fbeta_score",
    "roc_auc_score",
    "roc_curve",
    "confusion",
    "ClassificationReport",
    "classification_report",
    "UidSplit",
    "split_by_uid",
    "OperatingPoint",
    "threshold_for_precision",
    "threshold_for_fbeta",
    "ExperimentData",
    "MethodResult",
    "prepare_experiment",
    "run_method",
    "repeat_method",
]
