"""Plain-text table/series formatting shared by the benchmark harness."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_percentiles"]


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 2,
    name_header: str = "Method",
) -> str:
    """Render ``{row_name: {column: value}}`` as an aligned text table."""
    if not rows:
        raise ValueError("no rows to format")
    if columns is None:
        columns = list(next(iter(rows.values())))
    name_width = max(len(name_header), max(len(name) for name in rows))
    col_width = max(10, max(len(c) for c in columns) + 2)

    lines: list[str] = []
    if title:
        lines.append(title)
    header = f"{name_header:<{name_width}}" + "".join(
        f"{c:>{col_width}}" for c in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in rows.items():
        cells = "".join(
            f"{values.get(c, float('nan')):>{col_width}.{precision}f}" for c in columns
        )
        lines.append(f"{name:<{name_width}}{cells}")
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], precision: int = 3
) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    pairs = "  ".join(f"({x:g}, {y:.{precision}f})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_percentiles(
    name: str, values_ms: Sequence[float], percentiles: Sequence[float] = (50, 99, 99.9)
) -> str:
    """Render latency percentiles in milliseconds."""
    import numpy as np

    stats = "  ".join(
        f"p{p:g}={np.percentile(values_ms, p):.0f}ms" for p in percentiles
    )
    mean = float(np.mean(values_ms))
    return f"{name}: mean={mean:.0f}ms  {stats}"
