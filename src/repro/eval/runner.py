"""Experiment orchestration: dataset -> BN -> features -> split -> methods.

This is the offline-evaluation harness behind Tables III, IV and V: it
prepares one :class:`ExperimentData` bundle per dataset and then trains and
scores any registered method on it, with multi-seed repetition for the
variance column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from ..datagen.behavior_types import EDGE_TYPES, BehaviorType
from ..datagen.entities import Dataset
from ..features import FeatureManager, StandardScaler
from ..network import BehaviorNetwork, BNBuilder, FAST_WINDOWS, typed_adjacency
from .metrics import ClassificationReport, classification_report
from .splits import split_by_uid

__all__ = ["ExperimentData", "prepare_experiment", "run_method", "repeat_method", "MethodResult"]

MethodFn = Callable[["ExperimentData", int], np.ndarray]


@dataclass(slots=True)
class ExperimentData:
    """Everything a detection method needs, prepared once per dataset."""

    dataset: Dataset
    bn: BehaviorNetwork
    feature_manager: FeatureManager
    nodes: list[int]
    features: np.ndarray  # standardized with train statistics
    features_raw: np.ndarray
    labels: np.ndarray
    adjacencies: dict[BehaviorType, sp.csr_matrix]
    merged: sp.csr_matrix
    edge_types: tuple[BehaviorType, ...]
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def fit_idx(self) -> np.ndarray:
        """Train + validation rows (for methods without early stopping)."""
        return np.concatenate([self.train_idx, self.val_idx])

    def pos_weight(self) -> float:
        """Moderate positive-class reweighting for imbalanced BCE."""
        y = self.labels[self.fit_idx]
        n_pos = max(1.0, float(y.sum()))
        return float(np.sqrt(max(1.0, (len(y) - n_pos) / n_pos)))


def prepare_experiment(
    dataset: Dataset,
    windows: Sequence[float] = FAST_WINDOWS,
    edge_types: Sequence[BehaviorType] = EDGE_TYPES,
    test_fraction: float = 0.2,
    val_fraction: float = 0.2,
    seed: int = 0,
    bn: BehaviorNetwork | None = None,
    include_stats: bool = False,
) -> ExperimentData:
    """Build BN, features and the 80/20 UID split for ``dataset``.

    ``include_stats=False`` matches Table II, whose node feature is
    ``X_{u+tau}``; the behavior statistics ``X_s`` belong to the deployed
    system (Section V) and can be switched on for system-level experiments.
    """
    if bn is None:
        bn = BNBuilder(windows=windows, edge_types=edge_types).build(dataset.logs)
    feature_manager = FeatureManager(dataset, include_stats=include_stats)
    labels_map = dataset.labels
    nodes = sorted(labels_map)
    labels = np.asarray([labels_map[u] for u in nodes])
    features_raw = feature_manager.node_matrix(nodes)
    adjacencies = typed_adjacency(bn, nodes, edge_types)
    merged = sp.csr_matrix((len(nodes), len(nodes)))
    for matrix in adjacencies.values():
        merged = merged + matrix

    rng = np.random.default_rng(seed)
    split = split_by_uid(nodes, labels_map, test_fraction, rng)
    non_test = np.flatnonzero(split.train_mask(nodes))
    test_idx = np.flatnonzero(split.test_mask(nodes))
    permuted = rng.permutation(non_test)
    n_val = int(round(len(permuted) * val_fraction))
    val_idx = np.sort(permuted[:n_val])
    train_idx = np.sort(permuted[n_val:])

    scaler = StandardScaler().fit(features_raw[train_idx])
    features = scaler.transform(features_raw)
    return ExperimentData(
        dataset=dataset,
        bn=bn,
        feature_manager=feature_manager,
        nodes=nodes,
        features=features,
        features_raw=features_raw,
        labels=labels,
        adjacencies=adjacencies,
        merged=merged.tocsr(),
        edge_types=tuple(edge_types),
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )


@dataclass(slots=True)
class MethodResult:
    """Aggregated multi-seed outcome for one method."""

    name: str
    report: ClassificationReport
    auc_variance: float
    scores: np.ndarray  # from the last seed

    def row(self) -> dict[str, float]:
        """Percentage metrics plus the AUC variance column of Table III."""
        row = self.report.as_percentages()
        row["Variance"] = 100.0 * self.auc_variance
        return row


def run_method(
    method: MethodFn, data: ExperimentData, seed: int = 0, threshold: float = 0.5
) -> tuple[ClassificationReport, np.ndarray]:
    """Train one method and score it on the held-out test rows."""
    scores = np.asarray(method(data, seed), dtype=np.float64)
    if scores.shape != data.labels.shape:
        raise ValueError("method must return one score per node")
    report = classification_report(
        data.labels[data.test_idx], scores[data.test_idx], threshold
    )
    return report, scores


def repeat_method(
    name: str,
    method: MethodFn,
    data: ExperimentData,
    seeds: Sequence[int] = (0, 1, 2),
    threshold: float = 0.5,
) -> MethodResult:
    """Run a method over several seeds; mean metrics + AUC variance."""
    reports = []
    scores = np.zeros_like(data.labels, dtype=np.float64)
    for seed in seeds:
        report, scores = run_method(method, data, seed, threshold)
        reports.append(report)
    aucs = np.asarray([r.auc for r in reports])
    mean = ClassificationReport(
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        f2=float(np.mean([r.f2 for r in reports])),
        auc=float(aucs.mean()),
    )
    variance = float(aucs.var()) if len(aucs) > 1 else 0.0
    return MethodResult(name=name, report=mean, auc_variance=variance, scores=scores)
