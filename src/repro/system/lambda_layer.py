"""Lambda-architecture speed layer: serve from precomputed state + deltas.

The batch layer (:mod:`repro.core.lambda_infer`) periodically replays the
exact serving path over every known user and checkpoints the resulting
:class:`~repro.core.lambda_infer.HAGState`.  This module is the online
half:

* :class:`LambdaLayer` owns the current state — runs batch passes
  (checkpointed through :class:`~repro.system.storage.LocalDatabase` and
  published through :class:`~repro.network.shm.SharedSnapshotStore`
  alongside the shard index), answers point lookups with
  bounded-staleness accounting, and refreshes on a configured period;
* :class:`DeltaSampler` is the :class:`~repro.system.service.Sampler`
  tier a lambda deployment installs on the BN server: cache hits never
  reach it (``Turbo`` serves them before the sampling stage), so every
  batch it *does* see is fallthrough work — which it meters, making the
  delta path's sampled-subgraph savings directly observable as
  ``turbo.lambda.*`` metrics.

Staleness of a cached score is the number of delta edge touches
(:meth:`~repro.network.bn.BehaviorNetwork.track_deltas`) that landed
inside the score's cached subgraph node set — a conservative superset of
what could have changed it, and exactly zero when no edges arrived since
the batch pass.  A request whose staleness exceeds the configured budget
falls through to the exact sampled path; at zero delta the cached score
is bit-exact with that path, so serving it is a pure latency win.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..core.lambda_infer import (
    HAGState,
    MaterializeStats,
    materialize,
    materialize_fullgraph,
    rematerialize,
)
from ..network.sampled_graph import SampledGraph, build_sampled_graph
from ..network.sampling import BatchSampleStats
from ..obs.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..network.shm import SegmentHandle, SharedSnapshotStore
    from ..obs.metrics import MetricsRegistry
    from .bn_server import BNServer
    from .feature_server import FeatureServer
    from .prediction_server import PredictionServer
    from .service import Sampler
    from .storage import LocalDatabase

__all__ = ["DeltaSampler", "LambdaHit", "LambdaLayer"]

#: Storage coordinates of the batch-layer checkpoint.
_CHECKPOINT_TABLE = "lambda_state"
_CHECKPOINT_KEY = "hag_state"
#: Shared-memory bundle name (published next to the ``bn_shard`` segments).
_SEGMENT_NAME = "lambda"


@dataclass(frozen=True, slots=True)
class LambdaHit:
    """One cache hit: the precomputed score and its staleness price."""

    score: float
    staleness: int
    position: int


class LambdaLayer:
    """The online delta layer over one checkpointable batch-pass state.

    ``hops`` / ``fanout`` / ``allowed`` mirror the deployment's sampling
    policy so the replayed scores are the ones the fresh path would
    compute.  ``refresh_period`` (simulated seconds, ``None`` = manual
    only) drives :meth:`maybe_refresh`; ``staleness_budget`` is the
    maximum delta-touch count a served cached score may carry.
    """

    def __init__(
        self,
        bn_server: "BNServer",
        feature_server: "FeatureServer",
        prediction_server: "PredictionServer",
        database: "LocalDatabase",
        tracer: Tracer | None = None,
        *,
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
        refresh_period: float | None = None,
        staleness_budget: int = 0,
        store: "SharedSnapshotStore | None" = None,
        component: str = "lambda_layer",
        full_graph: bool = True,
        incremental: bool = True,
        executor: Callable | None = None,
        slices: int = 1,
    ) -> None:
        self.bn_server = bn_server
        self.feature_server = feature_server
        self.prediction_server = prediction_server
        self.database = database
        self.tracer = tracer
        self.hops = hops
        self.fanout = fanout
        self.allowed = allowed
        self.refresh_period = refresh_period
        self.staleness_budget = staleness_budget
        self.store = store
        self.component = component
        self.full_graph = full_graph
        self.incremental = incremental
        self.executor = executor
        self.slices = slices
        self.metrics: "MetricsRegistry | None" = None
        self.state: HAGState | None = None
        self.last_pass_at: float | None = None
        self.batch_passes = 0
        self.incremental_passes = 0
        self.last_materialize: MaterializeStats | None = None
        self._sampled: SampledGraph | None = None
        self.hits = 0
        self.misses = {"uncovered": 0, "stale": 0, "unbound": 0}
        self.fallthrough_requests = 0
        self.fallthrough_nodes = 0
        self._bn: Any = None  # the network object the current state replayed
        self._segment: "SegmentHandle | None" = None
        self._delta_cache: tuple[tuple[int, int], dict[int, int]] | None = None

    # ------------------------------------------------------------------
    # Batch layer
    # ------------------------------------------------------------------
    def _targets(self) -> list[tuple[int, int, float]]:
        """``(uid, txn_id, now)`` per precomputable user, sorted by uid.

        Covers every known user inside the sampling policy's ``allowed``
        set that exists in the BN.  The cached ``now`` is the user's
        latest application's audit time — the as-of time a replay or an
        audit-time request would resolve to.
        """
        bn = self.bn_server.bn
        present = set(bn.nodes())
        rows: list[tuple[int, int, float]] = []
        for uid in self.feature_server.known_users():
            if self.allowed is not None and uid not in self.allowed:
                continue
            if uid not in present:
                continue
            txn = self.feature_server.latest_transaction(uid)
            rows.append((uid, int(txn.txn_id), float(txn.audit_at)))
        return rows

    def _sampled_graph(self, bn) -> SampledGraph:
        """The deployment's :class:`SampledGraph`, memoized per BN version."""
        cached = self._sampled
        if (
            cached is not None
            and cached.version == int(bn.version)
            and cached.fanout == self.fanout
        ):
            return cached
        sampled = build_sampled_graph(bn, self.fanout)
        self._sampled = sampled
        return sampled

    def run_batch_pass(self, now: float) -> tuple[HAGState, BatchSampleStats]:
        """One full batch pass at simulated time ``now``.

        Computes the exact serving-path score for every target — through
        :func:`repro.core.lambda_infer.materialize_fullgraph` over the
        version-pinned :class:`SampledGraph` by default, or the legacy
        per-user union replay when ``full_graph`` is off — runs the
        full-graph layer pass, checkpoints the state to storage, publishes
        it to the snapshot store (when one is wired), and resets delta
        tracking so staleness counts start from this pass.

        The pass is traced as one ``lambda_batch`` root span with a
        ``lambda_materialize`` child carrying per-stage children; its
        charged duration (the packed model forwards plus the checkpoint
        write) is metered under ``turbo.lambda.*`` but never billed to any
        request.
        """
        return self._run_pass(now, incremental=False)

    def run_incremental_pass(self, now: float) -> tuple[HAGState, BatchSampleStats]:
        """Refresh the state by recomputing only the delta's affected cone.

        Valid when the current state binds to the live BN with delta
        tracking on; anything else (no prior, rebound network, an ancestor
        the prior cannot extend) silently falls back to a full pass, so
        the call always leaves a fresh state behind.  Work is O(affected):
        only targets within ``hops`` of a touched node (plus targets whose
        feature provenance changed) are rescored, and only layer rows
        within SAO depth of a seed are recomputed — everything else is a
        byte-copy of the prior state.
        """
        return self._run_pass(now, incremental=True)

    def _run_pass(
        self, now: float, *, incremental: bool
    ) -> tuple[HAGState, BatchSampleStats]:
        feature_manager = self.feature_server.feature_manager
        scaler = self.prediction_server.scaler
        latency = self.prediction_server.latency
        bn = self.bn_server.bn

        rows = self._targets()
        targets = [uid for uid, _, _ in rows]
        txn_ids = [txn_id for _, txn_id, _ in rows]
        nows = [as_of for _, _, as_of in rows]

        root = None
        if self.tracer is not None:
            root = self.tracer.start_trace(
                "lambda_batch", at=now, targets=len(targets)
            )

        # Context feature rows are shared across subgraphs (they are
        # observed at the user's latest application, not the request), so
        # memoize them — bit-identical to per-request assembly.
        context_rows: dict[int, np.ndarray] = {}
        dim = feature_manager.dim

        def context_row(uid: int) -> np.ndarray:
            row = context_rows.get(uid)
            if row is None:
                txn = self.feature_server.latest_transaction(uid)
                row = np.zeros(dim) if txn is None else feature_manager.vector(txn)
                context_rows[uid] = row
            return row

        # Subgraph sizes actually scored this pass (incremental passes
        # score a subset; the deployment clock charges only that work).
        computed_sizes: list[int] = []

        def feature_fn(k: int, nodes) -> np.ndarray:
            computed_sizes.append(len(nodes))
            matrix_rows = [feature_manager.vector(
                self.feature_server.latest_transaction(targets[k]), as_of=nows[k]
            )]
            for uid in nodes[1:]:
                matrix_rows.append(context_row(uid))
            return np.stack(matrix_rows)

        # Wall-clock stage marks from the materializer's observer; turned
        # into lambda_materialize child spans after the pass.
        marks: list[tuple[str, float]] = []
        wall_start = time.perf_counter()

        def observer(name: str) -> None:
            marks.append((name, time.perf_counter()))

        model = self.prediction_server.model
        edge_type_order = self.prediction_server.edge_type_order
        mstats: MaterializeStats | None = None
        state: HAGState
        stats: BatchSampleStats

        use_incremental = (
            incremental
            and self.incremental
            and self.state is not None
            and self._bn is bn
            and bn.delta_tracking()
        )
        if use_incremental:

            def layer_row_fn(idx: np.ndarray) -> np.ndarray:
                return scaler.transform(
                    np.stack([context_row(targets[int(i)]) for i in idx])
                )

            try:
                state, stats, mstats = rematerialize(
                    model,
                    bn,
                    self.state,
                    targets,
                    txn_ids,
                    nows,
                    feature_fn,
                    hops=self.hops,
                    fanout=self.fanout,
                    edge_type_order=edge_type_order,
                    allowed=self.allowed,
                    transform=scaler.transform,
                    sampled=self._sampled_graph(bn),
                    touched=self._delta_touched(),
                    layer_row_fn=layer_row_fn,
                    observer=observer,
                )
            except ValueError:
                # Prior is not a valid ancestor (hops/fanout drift, missing
                # layer arrays) — degrade to the full sweep.
                use_incremental = False
                marks.clear()
                computed_sizes.clear()

        if not use_incremental:
            layer_features = None
            if targets:
                layer_features = scaler.transform(
                    np.stack([context_row(uid) for uid in targets])
                )
            if self.full_graph:
                state, stats, mstats = materialize_fullgraph(
                    model,
                    bn,
                    targets,
                    txn_ids,
                    nows,
                    feature_fn,
                    hops=self.hops,
                    fanout=self.fanout,
                    edge_type_order=edge_type_order,
                    allowed=self.allowed,
                    transform=scaler.transform,
                    sampled=self._sampled_graph(bn),
                    layer_features=layer_features,
                    executor=self.executor,
                    slices=self.slices,
                    observer=observer,
                )
            else:
                state, stats = materialize(
                    model,
                    bn,
                    targets,
                    txn_ids,
                    nows,
                    feature_fn,
                    hops=self.hops,
                    fanout=self.fanout,
                    edge_type_order=edge_type_order,
                    allowed=self.allowed,
                    transform=scaler.transform,
                    selection_cache=self.bn_server._batch_selection_cache(
                        self.fanout
                    ),
                    layer_features=layer_features,
                )
        wall_seconds = time.perf_counter() - wall_start

        arrays = state.to_arrays()
        if mstats is not None and mstats.mode == "incremental":
            charged_sizes = computed_sizes
        else:
            # Full passes score every row; with a pool executor the
            # features are assembled worker-side, so read the sizes off
            # the assembled state rather than the local feature_fn count.
            charged_sizes = [int(s) for s in np.diff(state.subgraph_indptr)]
        charged = sum(latency.charge_model_forward_batch(charged_sizes))
        charged += self.database.put(_CHECKPOINT_TABLE, _CHECKPOINT_KEY, arrays)
        if self.store is not None:
            previous = self._segment
            self._segment = self.store.publish(
                _SEGMENT_NAME,
                arrays,
                meta={"nodes": state.num_nodes, "bn_version": state.bn_version},
                version=state.bn_version,
            )
            if previous is not None and previous.segment != self._segment.segment:
                self.store.retire(previous.segment)

        self.state = state
        self._bn = bn
        self._delta_cache = None
        bn.track_deltas()
        self.last_pass_at = now
        self.batch_passes += 1
        self.last_materialize = mstats
        if mstats is not None and mstats.mode == "incremental":
            self.incremental_passes += 1

        if self.metrics is not None:
            self.metrics.counter("turbo.lambda.batch_passes").inc()
            self.metrics.histogram("turbo.lambda.batch_seconds").observe(charged)
            self.metrics.gauge("turbo.lambda.covered_nodes").set(state.num_nodes)
            self.metrics.gauge("turbo.lambda.bn_version").set(state.bn_version)
            if mstats is not None:
                self.metrics.counter("turbo.lambda.materialize.rows").inc(
                    mstats.rows_computed
                )
                self.metrics.counter("turbo.lambda.materialize.edges").inc(
                    mstats.edges_touched
                )
                self.metrics.histogram(
                    "turbo.lambda.materialize.wall_seconds"
                ).observe(wall_seconds)
                self.metrics.histogram(
                    "turbo.lambda.materialize.clock_seconds"
                ).observe(charged)
                self.metrics.histogram(
                    "turbo.lambda.materialize.cone_rows"
                ).observe(float(mstats.cone_rows))
        if root is not None:
            root.annotate("bn_version", state.bn_version)
            root.annotate("covered_nodes", state.num_nodes)
            root.annotate("sampled_nodes", stats.sampled_nodes)
            if mstats is not None:
                mat_span = root.child("lambda_materialize", now)
                mat_span.annotate("mode", mstats.mode)
                mat_span.annotate("rows_computed", mstats.rows_computed)
                mat_span.annotate("edges_touched", mstats.edges_touched)
                mat_span.annotate("cone_rows", mstats.cone_rows)
                mat_span.annotate("layer_rows", mstats.layer_rows)
                mat_span.annotate("slices", mstats.slices)
                previous_mark = wall_start
                for stage, at_mark in marks:
                    child = mat_span.child(stage, now)
                    child.finish(at_mark - previous_mark)
                    previous_mark = at_mark
                mat_span.finish(wall_seconds)
            self.tracer.finish_trace(root, charged)
        return state, stats

    def maybe_refresh(self, now: float) -> bool:
        """Run a batch pass when the refresh period elapsed; ``True`` if run.

        Prefers the incremental path when a valid prior state exists for an
        ancestor of the live BN (delta tracking intact); otherwise — first
        pass, rebound network, or ``incremental`` off — runs a full sweep.
        """
        if self.refresh_period is None:
            return False
        if self.last_pass_at is not None and now - self.last_pass_at < self.refresh_period:
            return False
        self._run_pass(now, incremental=True)
        return True

    def load_checkpoint(self) -> HAGState | None:
        """Rebuild the last checkpointed state from storage (recovery path).

        Installs it as the serving state only when it still matches the
        live BN version *and* delta tracking survived (otherwise staleness
        since the pass is unaccountable and serving it would be unsafe);
        the deserialized state is returned either way.
        """
        rows, _seconds = self.database.query(_CHECKPOINT_TABLE, _CHECKPOINT_KEY)
        if not rows or rows[0] is None:
            return None
        state = HAGState.from_arrays(rows[0])
        bn = self.bn_server.bn
        if state.bn_version == int(bn.version) and bn.delta_tracking():
            self.state = state
            self._bn = bn
            self._delta_cache = None
        return state

    # ------------------------------------------------------------------
    # Speed layer
    # ------------------------------------------------------------------
    def _delta_touched(self) -> dict[int, int]:
        """Per-node touch counts since the batch pass (memoized per epoch)."""
        bn = self._bn
        key = (int(bn.version), int(bn.delta_size()))
        cached = self._delta_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        touched = bn.delta_touched()
        self._delta_cache = (key, touched)
        return touched

    def _miss(self, reason: str) -> None:
        self.misses[reason] += 1
        if self.metrics is not None:
            self.metrics.counter("turbo.lambda.misses").inc()
            self.metrics.counter(f"turbo.lambda.miss.{reason}").inc()

    def lookup(self, uid: int, txn_id: int, now: float) -> LambdaHit | None:
        """Cached score for ``(uid, txn_id, now)`` within the staleness budget.

        ``None`` means the request must take the fresh sampled path:
        the target is uncovered (unknown user, newer transaction, or a
        different as-of time than the score was computed for), the cached
        subgraph absorbed more delta edge touches than the budget allows,
        or the state no longer binds to the live network object.
        """
        state = self.state
        if state is None:
            return None
        if self.bn_server.bn is not self._bn or not self._bn.delta_tracking():
            self._miss("unbound")
            return None
        found = state.lookup(uid, txn_id, now)
        if found is None:
            self._miss("uncovered")
            return None
        score, position = found
        staleness = state.staleness_of(position, self._delta_touched())
        if staleness > self.staleness_budget:
            self._miss("stale")
            return None
        self.hits += 1
        if self.metrics is not None:
            self.metrics.counter("turbo.lambda.hits").inc()
            self.metrics.histogram("turbo.lambda.staleness").observe(float(staleness))
        return LambdaHit(score=score, staleness=staleness, position=position)

    def record_fallthrough(self, stats: BatchSampleStats) -> None:
        """Meter one fresh-path batch served because the cache could not."""
        self.fallthrough_requests += stats.requests
        self.fallthrough_nodes += stats.sampled_nodes
        if self.metrics is not None:
            self.metrics.counter("turbo.lambda.fallthrough_requests").inc(
                stats.requests
            )
            self.metrics.counter("turbo.lambda.fallthrough_nodes").inc(
                stats.sampled_nodes
            )

    # ------------------------------------------------------------------
    # Introspection (CLI / dashboards)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name."""
        return self.component

    def stats(self) -> dict[str, float]:
        """Flat counter dict: refresh state, hit/miss mix, delta pressure."""
        state = self.state
        delta_size = 0.0
        if self._bn is not None and self._bn.delta_tracking():
            delta_size = float(self._bn.delta_size())
        last = self.last_materialize
        return {
            "batch_passes": float(self.batch_passes),
            "incremental_passes": float(self.incremental_passes),
            "materialize_rows": float(last.rows_computed if last is not None else -1),
            "materialize_edges": float(last.edges_touched if last is not None else -1),
            "covered_nodes": float(state.num_nodes if state is not None else 0),
            "bn_version": float(state.bn_version if state is not None else -1),
            "last_pass_at": float(
                self.last_pass_at if self.last_pass_at is not None else -1.0
            ),
            "refresh_period": float(
                self.refresh_period if self.refresh_period is not None else -1.0
            ),
            "staleness_budget": float(self.staleness_budget),
            "hits": float(self.hits),
            "misses_uncovered": float(self.misses["uncovered"]),
            "misses_stale": float(self.misses["stale"]),
            "misses_unbound": float(self.misses["unbound"]),
            "fallthrough_requests": float(self.fallthrough_requests),
            "fallthrough_nodes": float(self.fallthrough_nodes),
            "delta_size": delta_size,
        }


class DeltaSampler:
    """The lambda deployment's :class:`~repro.system.service.Sampler` tier.

    Wraps the deployment's underlying tier (local batch sampler or shard
    router).  Cache hits are served by ``Turbo`` before the sampling stage
    runs, so every batch reaching this sampler is delta-budget fallthrough
    — forwarded verbatim to the inner tier and metered on the layer.
    """

    tier = "lambda"

    def __init__(self, layer: LambdaLayer, inner: "Sampler") -> None:
        self.layer = layer
        self.inner = inner

    def sample_batch(
        self,
        targets,
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
        selection_cache: dict | None = None,
        now: float = 0.0,
    ):
        """Forward to the wrapped tier, metering the fallthrough work."""
        subgraphs, stats, gate_seconds = self.inner.sample_batch(
            targets,
            hops=hops,
            fanout=fanout,
            allowed=allowed,
            selection_cache=selection_cache,
            now=now,
        )
        self.layer.record_fallthrough(stats)
        return subgraphs, stats, gate_seconds
