"""Deterministic latency model for the storage and serving substrate.

Operation costs approximate a production MySQL + Redis deployment: disk-backed
queries cost milliseconds and scale with rows touched; in-memory cache reads
cost tens of microseconds.  A multiplicative lognormal jitter gives realistic
tail percentiles (p99/p999 in Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyModel", "LatencyBreakdown"]


@dataclass(slots=True)
class LatencyModel:
    """Per-operation base costs in seconds, plus tail jitter.

    ``charge`` returns a sampled duration for one operation; callers
    accumulate the durations into a request's latency breakdown.
    """

    db_query: float = 0.0072
    db_row: float = 2.4e-5
    db_write: float = 0.004
    cache_get: float = 0.00012
    cache_set: float = 0.00015
    #: in-memory aggregation over cached logs (per window scan / per log row).
    mem_scan_base: float = 0.00022
    mem_row: float = 1.1e-6
    #: per-node cost of assembling a sampled subgraph from cached adjacency.
    sample_per_node: float = 0.0006
    network_rtt: float = 0.002
    model_forward_base: float = 0.13
    model_forward_per_node: float = 0.0008
    #: scoring one application on the pre-Turbo rule stack (scorecard /
    #: block-list) — in-memory rule evaluation, no graph or storage access.
    fallback_score: float = 0.0009
    jitter_sigma: float = 0.35
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _jitter(self) -> float:
        if self.jitter_sigma <= 0:
            return 1.0
        return float(self._rng.lognormal(0.0, self.jitter_sigma))

    def charge_db_query(self, rows: int = 1) -> float:
        """Cost of one disk-backed query touching ``rows`` rows."""
        return (self.db_query + self.db_row * max(0, rows)) * self._jitter()

    def charge_db_write(self, rows: int = 1) -> float:
        """Cost of one disk-backed write of ``rows`` rows."""
        return (self.db_write + 0.5 * self.db_row * max(0, rows)) * self._jitter()

    def charge_cache_get(self) -> float:
        """Cost of one in-memory cache read."""
        return self.cache_get * self._jitter()

    def charge_cache_set(self) -> float:
        """Cost of one in-memory cache write."""
        return self.cache_set * self._jitter()

    def charge_mem_scan(self, rows: int = 1) -> float:
        """Cost of aggregating ``rows`` cached rows in memory."""
        return (self.mem_scan_base + self.mem_row * max(0, rows)) * self._jitter()

    def charge_sample_node(self) -> float:
        """Cost of assembling one sampled node's adjacency."""
        return self.sample_per_node * self._jitter()

    def charge_network(self) -> float:
        """Cost of one network round-trip."""
        return self.network_rtt * self._jitter()

    def charge_fallback(self) -> float:
        """Cost of scoring one request on the degraded rule-based path."""
        return self.fallback_score * self._jitter()

    def charge_model_forward(self, n_nodes: int) -> float:
        """Cost of one model forward over an ``n_nodes`` subgraph."""
        return (
            self.model_forward_base + self.model_forward_per_node * max(1, n_nodes)
        ) * self._jitter()

    def charge_model_forward_batch(self, sizes: "list[int]") -> list[float]:
        """Per-request cost of one *packed* forward over a micro-batch.

        The forward's fixed cost (weight loads, kernel launches, framework
        overhead — ``model_forward_base``) is paid once and amortized evenly
        across the batch; the per-node cost stays per request.  One jitter
        draw covers the whole batch because it is one physical forward.
        """
        if not sizes:
            return []
        jitter = self._jitter()
        base = self.model_forward_base / len(sizes)
        return [
            (base + self.model_forward_per_node * max(1, n)) * jitter for n in sizes
        ]


@dataclass(slots=True)
class LatencyBreakdown:
    """Per-module latency of one prediction request (Fig. 8a's series)."""

    sampling: float = 0.0
    features: float = 0.0
    prediction: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end request latency in seconds."""
        return self.sampling + self.features + self.prediction

    def as_millis(self) -> dict[str, float]:
        """Per-module latencies in milliseconds."""
        return {
            "subgraph_sampling_ms": 1000.0 * self.sampling,
            "feature_ms": 1000.0 * self.features,
            "prediction_ms": 1000.0 * self.prediction,
            "total_ms": 1000.0 * self.total,
        }
