"""The unified service API of the online system.

PR 3's redesign: the four online components — BN server, feature server,
prediction server and the model manager — historically exposed slightly
different method shapes.  This module defines the common surface:

* :class:`PredictRequest` — the frozen request object
  :meth:`~repro.system.turbo.Turbo.predict` accepts as its single
  argument (uid, transaction, optional latency budget override and an
  optional upstream :class:`~repro.obs.tracing.TraceContext`);
* :class:`RequestContext` — the mutable per-request pipeline state that
  flows *between* stages (sampled subgraph, feature matrix, probability)
  together with the orchestrator's sampling policy;
* :class:`Service` — the protocol every server satisfies: a ``name``, a
  ``ping()`` liveness probe, a ``stats()`` counter dict and a
  ``handle(request, span)`` entry point returning
  ``(value, seconds_charged)``.

``tests/test_system/test_service_api.py`` pins that all four servers are
``isinstance``-checkable against :class:`Service`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from ..datagen.entities import Transaction
from ..obs.tracing import Span, TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..network.sampling import ComputationSubgraph

__all__ = ["PredictRequest", "RequestContext", "Sampler", "Service"]


@dataclass(frozen=True, slots=True)
class PredictRequest:
    """One real-time detection request (the single ``Turbo.predict`` input).

    ``uid`` defaults to the transaction's user; ``now`` to the simulated
    clock at serve time; ``budget`` overrides the deployment's per-request
    latency budget for this request only (``None`` keeps the default);
    ``trace`` parents the request's span tree under an upstream trace.
    """

    txn: Transaction
    uid: int | None = None
    now: float | None = None
    budget: float | None = None
    trace: TraceContext | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.txn, Transaction):
            raise TypeError(f"txn must be a Transaction, got {type(self.txn).__name__}")
        if self.uid is None:
            object.__setattr__(self, "uid", int(self.txn.uid))
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive (or None)")


@dataclass(slots=True)
class RequestContext:
    """Mutable pipeline state of one in-flight request.

    Carries the frozen :class:`PredictRequest`, the resolved serve time,
    the orchestrator's sampling policy, and the artifacts each stage
    produces for the next one.  Servers read their inputs from here and
    write their outputs back, which is what lets all of them share the
    one ``handle(request, span)`` shape.
    """

    request: PredictRequest
    now: float
    hops: int = 2
    fanout: int | None = 10
    allowed: set[int] | None = None
    subgraph: "ComputationSubgraph | None" = None
    features: np.ndarray | None = None
    probability: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class Sampler(Protocol):
    """One computation-subgraph sampling tier behind ``BNServer``.

    PR 8's unification: the single-network batch sampler
    (:class:`~repro.system.bn_server.LocalSampler`), the sharded
    frontier-exchange router (:class:`~repro.system.shard_router.ShardRouter`)
    and the lambda speed layer's fallthrough sampler
    (:class:`~repro.system.lambda_layer.DeltaSampler`) all expose this one
    shape, so the orchestrator picks a tier by configuration instead of
    branching on deployment details inline.

    ``sample_batch`` returns ``(subgraphs, stats, gate_seconds)`` where
    ``stats`` is a :class:`~repro.network.sampling.BatchSampleStats`
    (``stats.partial`` lists request indices served from an incomplete
    frontier) and ``gate_seconds`` is batch-level probe cost charged to the
    first request.  ``selection_cache`` carries per-``(node, type)``
    neighbour rankings across batches; it is only valid for one
    ``(bn.version, fanout)`` pair and the owner must drop it when either
    changes.
    """

    tier: str

    def sample_batch(
        self,
        targets: Any,
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
        selection_cache: dict | None = None,
        now: float = 0.0,
    ) -> tuple[list, Any, float]:
        """Sample every target's ``G_v``; ``(subgraphs, stats, gate_s)``."""
        ...


@runtime_checkable
class Service(Protocol):
    """What every online component exposes (the unified service surface).

    ``ping()`` raises (``StorageError`` or an injected fault) when the
    component cannot serve and returns the charged probe seconds
    otherwise; ``stats()`` returns a flat dict of component counters for
    dashboards; ``handle(request, span)`` serves one stage of a request
    and returns ``(value, seconds_charged)``, annotating ``span`` (when
    given) with stage-level telemetry.
    """

    @property
    def name(self) -> str:
        """Stable component name (also the fault-injector address)."""
        ...

    def ping(self) -> float:
        """Liveness probe; raises when the component cannot serve."""
        ...

    def stats(self) -> dict[str, float]:
        """Flat dict of component counters (dashboard snapshot)."""
        ...

    def handle(self, request: Any, span: Span | None = None) -> tuple[Any, float]:
        """Serve one request/stage; returns ``(value, seconds_charged)``."""
        ...
