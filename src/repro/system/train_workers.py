"""Forked gradient workers for the parallel training engine.

Generalizes the :class:`~repro.system.shard_router.ShardWorkerPool`
pattern (fork context, pipe command loop, death-on-next-call detection,
``start``/``finish`` pipelining, a ``crash`` hook for failover tests) to
training: each worker attaches the
:class:`~repro.network.shm.SharedSnapshotStore` segment published by
:func:`publish_train_inputs` — the presampled CSRs
(:class:`~repro.core.train_engine.PresampledGraph` payload), the feature
matrix and the labels — unpickles the model once, and then serves
``gradients`` commands: given the current parameter state and a list of
batch id arrays, it assembles each minibatch and returns per-batch
gradient lists.

Bit-exactness contract: the worker routes through the *same*
``assemble_minibatch`` + ``_batch_gradient`` functions as the in-process
engine, over the same published arrays, at the same parameter state — so
a batch's gradient is bit-identical no matter which process computes it.
The parent performs the fixed-order fold; workers never reduce.

Timing contract: each ``gradients`` reply carries the worker's *in-child*
busy seconds (``perf_counter`` around the whole command).  On a
constrained CPU the parent can dispatch serially
(``serialize_dispatch=True``) so each span is measured uncontended, and
the benchmark combines them under the deployment clock exactly as
``bench_sharding`` does.

When the snapshot store runs in its in-process fallback mode (no POSIX
shared memory), the arrays travel to the fork as copy-on-write references
via the process ``args`` instead of a segment name — same arrays, zero
copies, no behavioural difference.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any

import numpy as np

from ..core.train_engine import (
    PresampledGraph,
    _batch_gradient,
    assemble_minibatch,
)
from ..network.shm import SegmentHandle, SharedSnapshotStore, attach_segment

__all__ = ["publish_train_inputs", "TrainWorkerPool"]


def publish_train_inputs(
    store: SharedSnapshotStore,
    presampled: PresampledGraph,
    features: np.ndarray,
    labels: np.ndarray,
    *,
    hops: int,
    version: int = 0,
) -> SegmentHandle:
    """Publish one segment holding everything a gradient worker reads.

    The presampled CSR parts are prefixed ``pg:`` (the
    ``SampledGraph``-style payload convention) next to the dense
    ``features`` / ``labels`` arrays, so one attach gives a worker the
    whole epoch-invariant input set.
    """
    pg_arrays, pg_meta = presampled.to_payload()
    arrays: dict[str, np.ndarray] = {
        f"pg:{key}": value for key, value in pg_arrays.items()
    }
    arrays["features"] = np.ascontiguousarray(features, dtype=np.float64)
    arrays["labels"] = np.ascontiguousarray(labels, dtype=np.float64)
    meta = {"presample": pg_meta, "hops": int(hops)}
    return store.publish("train-inputs", arrays, meta=meta, version=version)


def _load_inputs(inputs: Any) -> tuple[Any, dict[str, np.ndarray], dict]:
    """Resolve ``inputs`` to ``(segment_or_None, arrays, meta)``."""
    if isinstance(inputs, str):
        segment = attach_segment(inputs)
        return segment, segment.arrays, segment.meta
    arrays, meta = inputs  # in-process fallback: fork-inherited references
    return None, arrays, meta


def _train_worker_main(conn: Any, inputs: Any) -> None:  # pragma: no cover
    """Worker process loop: rebuild inputs, serve gradient commands.

    Covered by the pool round-trip tests, but excluded from coverage
    accounting because it runs in a forked child.
    """
    segment, arrays, meta = _load_inputs(inputs)
    presampled = PresampledGraph.from_payload(
        {key[3:]: value for key, value in arrays.items() if key.startswith("pg:")},
        meta["presample"],
    )
    features = arrays["features"]
    labels = arrays["labels"]
    hops = int(meta["hops"])
    model = None
    params: list = []
    pos_weight = 1.0
    rng = None  # seeded per worker; reserved for stochastic stages
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if command == "ping":
                conn.send(("ok", os.getpid()))
            elif command == "model":
                blob, seed = payload
                bundle = pickle.loads(blob)
                model = bundle["model"]
                model.train()
                params = model.parameters()
                pos_weight = float(bundle["pos_weight"])
                hops = int(bundle.get("hops", hops))
                rng = np.random.default_rng(seed)
                conn.send(("ok", len(params)))
            elif command == "gradients":
                if model is None:
                    raise RuntimeError("no model loaded")
                state, wire_batches = payload
                started = time.perf_counter()
                for param, array in zip(params, state):
                    param.data = np.asarray(array, dtype=np.float64)
                grads_out, losses, node_counts = [], [], []
                for batch in wire_batches:
                    mb = assemble_minibatch(
                        presampled,
                        features,
                        labels,
                        np.asarray(batch, dtype=np.int64),
                        hops,
                    )
                    grads, loss = _batch_gradient(model, params, mb, pos_weight)
                    grads_out.append(grads)
                    losses.append(loss)
                    node_counts.append(len(mb.nodes))
                busy = time.perf_counter() - started
                conn.send(("ok", (grads_out, losses, node_counts, busy)))
            elif command == "crash":
                os._exit(13)
            elif command == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            try:
                conn.send(("error", repr(exc)))
            except (BrokenPipeError, OSError):
                break
    # Drop array views before closing the mapping, else close() hits
    # BufferError and GC replays it noisily at interpreter exit.
    presampled = None
    features = None
    labels = None
    arrays = None
    del rng
    if segment is not None:
        segment.close()


class TrainWorkerPool:
    """A fleet of forked gradient workers over one published input segment.

    Worker lifecycle mirrors :class:`~repro.system.shard_router.ShardWorkerPool`:
    fork context (the parent's imports and the fallback-mode input arrays
    are inherited copy-on-write), daemon processes, pipe command loop,
    death detected on the next call and reported as ``None`` so the engine
    can fail the batches over to in-process computation.  The model payload
    (plus a per-worker seed from the config's ``workers`` stream) is
    replayed whenever a worker is spawned, so scaling up mid-run yields
    workers indistinguishable from the originals.
    """

    def __init__(
        self,
        inputs: Any,
        n_workers: int,
        model_payload: bytes | None = None,
        worker_seeds: list[int] | None = None,
        timeout: float = 120.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.timeout = timeout
        self._inputs = inputs
        self._model_payload = model_payload
        self._worker_seeds = list(worker_seeds or [])
        self._workers: list[dict[str, Any]] = []
        for _ in range(n_workers):
            self._spawn_worker()

    def _spawn_worker(self) -> int:
        """Fork one worker against the stored inputs; returns its id."""
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_train_worker_main,
            args=(child_conn, self._inputs),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers.append(
            {"process": process, "conn": parent_conn, "alive": True}
        )
        worker_id = len(self._workers) - 1
        if self._model_payload is not None:
            seed = (
                self._worker_seeds[worker_id]
                if worker_id < len(self._worker_seeds)
                else worker_id
            )
            self.call(worker_id, "model", (self._model_payload, seed))
        return worker_id

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def alive(self, worker_id: int) -> bool:
        """Whether ``worker_id``'s process is still serving."""
        return bool(self._workers[worker_id]["alive"])

    def alive_count(self) -> int:
        """Number of workers still serving."""
        return sum(1 for worker in self._workers if worker["alive"])

    # ------------------------------------------------------------------
    # Command round-trips
    # ------------------------------------------------------------------
    def call(self, worker_id: int, command: str, payload: Any = None) -> Any:
        """Round-trip one command; returns ``None`` when the worker is dead.

        Death (pipe EOF, crash, timeout) is recorded so later calls skip
        the worker; a worker-side exception is re-raised here.
        """
        worker = self._workers[worker_id]
        if not worker["alive"]:
            return None
        conn = worker["conn"]
        try:
            conn.send((command, payload))
            if not conn.poll(self.timeout):
                raise EOFError("worker timed out")
            status, value = conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            worker["alive"] = False
            worker["process"].join(timeout=1.0)
            return None
        if status == "error":
            raise RuntimeError(f"train worker {worker_id} failed: {value}")
        return value

    def start(self, worker_id: int, command: str, payload: Any = None) -> bool:
        """Send one command without waiting — pair with :meth:`finish`."""
        worker = self._workers[worker_id]
        if not worker["alive"]:
            return False
        try:
            worker["conn"].send((command, payload))
        except (BrokenPipeError, ConnectionResetError, OSError):
            worker["alive"] = False
            worker["process"].join(timeout=1.0)
            return False
        return True

    def finish(self, worker_id: int) -> Any:
        """Collect one pending reply from :meth:`start` (None when dead)."""
        worker = self._workers[worker_id]
        if not worker["alive"]:
            return None
        conn = worker["conn"]
        try:
            if not conn.poll(self.timeout):
                raise EOFError("worker timed out")
            status, value = conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            worker["alive"] = False
            worker["process"].join(timeout=1.0)
            return None
        if status == "error":
            raise RuntimeError(f"train worker {worker_id} failed: {value}")
        return value

    # -- convenience wrappers (the engine's vocabulary) -----------------
    def gradients(
        self, worker_id: int, state: list[np.ndarray], batches: list[np.ndarray]
    ) -> Any:
        """Blocking per-batch gradient computation on one worker."""
        return self.call(worker_id, "gradients", (state, batches))

    def start_gradients(
        self, worker_id: int, state: list[np.ndarray], batches: list[np.ndarray]
    ) -> bool:
        """Pipelined variant of :meth:`gradients` (collect with finish)."""
        return self.start(worker_id, "gradients", (state, batches))

    def crash(self, worker_id: int) -> None:
        """Hard-kill one worker (failover tests)."""
        self.start(worker_id, "crash")
        self._workers[worker_id]["process"].join(timeout=5.0)

    def close(self) -> None:
        """Stop every worker and join the processes."""
        for worker in self._workers:
            if worker["alive"]:
                try:
                    worker["conn"].send(("stop", None))
                    worker["conn"].poll(self.timeout)
                except (BrokenPipeError, OSError):
                    pass
            worker["conn"].close()
            worker["process"].join(timeout=5.0)
            if worker["process"].is_alive():  # pragma: no cover - defensive
                worker["process"].terminate()
            worker["alive"] = False
