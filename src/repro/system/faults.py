"""Deterministic fault injection and resilience primitives (Section V ops).

The paper sells Turbo as a production system with disaster backup and
latency SLOs; this module supplies the chaos-engineering substrate that
lets the repository *test* those claims:

* :class:`FaultInjector` — a seeded scheduler of component faults.  Every
  storage/cache/server call funnels through :meth:`FaultInjector.before_call`,
  which either raises an :class:`InjectedFault` (crash window, transient
  error) or returns extra latency to charge (brownout spike).  Given the
  same seed and the same call sequence, the injector produces an identical
  :attr:`FaultInjector.trace` — any outage scenario is reproducible.
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  multiplicative jitter.  Backoff time is *charged* (simulated), never
  slept, so it lands in the request's latency breakdown like every other
  cost in :mod:`repro.system.latency`.
* :class:`CircuitBreaker` — trips after consecutive graph-path failures and
  serves fallbacks without touching the broken dependency; while open it
  lets every ``probe_interval``-th request through as a half-open probe, so
  the breaker re-closes by itself once the dependency heals.  The breaker
  counts *requests*, not wall time, which keeps it deterministic under the
  simulated clock.

Fault timelines live on a :class:`~repro.system.clock.SimulatedClock` (by
default the one the Turbo deployment advances), so crash windows are
expressed in the same simulated seconds as every latency charge.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..obs.tracing import current_span
from .clock import SimulatedClock
from .storage import StorageError

__all__ = [
    "InjectedFault",
    "BudgetExceeded",
    "FaultEvent",
    "CrashWindow",
    "FaultInjector",
    "RetryPolicy",
    "CircuitBreaker",
    "random_fault_plan",
]


class InjectedFault(StorageError):
    """A fault manufactured by the :class:`FaultInjector`.

    Subclasses :class:`~repro.system.storage.StorageError` so every caller
    that already survives a real storage outage survives an injected one
    through the same handler.
    """


class BudgetExceeded(RuntimeError):
    """The graph path blew its per-request latency budget; degrade instead."""


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One materialized fault: what was injected, where and when."""

    component: str
    kind: str  # "crash" | "transient" | "latency"
    at: float  # simulated time of the call
    latency: float = 0.0  # extra seconds injected (kind == "latency")


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """Half-open outage interval ``[start, end)`` on the fault timeline."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError("crash window must have end > start")

    def contains(self, now: float) -> bool:
        """Is ``now`` inside the half-open window ``[start, end)``?"""
        return self.start <= now < self.end

    def overlaps(self, other: "CrashWindow") -> bool:
        """Do the two half-open windows share any instant?"""
        return self.start < other.end and other.start < self.end


@dataclass(slots=True)
class _RateRule:
    """Transient-error or latency-spike rule active on ``[start, end)``."""

    start: float
    end: float
    rate: float = 0.0  # per-call fault probability
    extra: float = 0.0  # extra seconds per call

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass
class _ComponentPlan:
    crash_windows: list[CrashWindow] = field(default_factory=list)
    transients: list[_RateRule] = field(default_factory=list)
    spikes: list[_RateRule] = field(default_factory=list)


class FaultInjector:
    """Seeded, schedulable fault plans for the online system's components.

    Components are addressed by name (``"database"``, ``"cache"``,
    ``"bn_server"``, ``"feature_server"``, ...).  The injector is a no-op
    until a plan is registered, so it is safe to wire into every deployment
    unconditionally: an empty plan draws no random numbers and records no
    events, keeping fault-free runs bit-identical to pre-injector behavior.
    """

    def __init__(self, seed: int = 0, clock: SimulatedClock | None = None) -> None:
        self.seed = seed
        self.clock = clock if clock is not None else SimulatedClock()
        self._rng = np.random.default_rng(seed)
        self._plans: dict[str, _ComponentPlan] = {}
        self.trace: list[FaultEvent] = []
        self.injected: Counter = Counter()  # (component, kind) -> count

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _plan(self, component: str) -> _ComponentPlan:
        return self._plans.setdefault(component, _ComponentPlan())

    def add_crash(self, component: str, start: float, end: float) -> CrashWindow:
        """Schedule a hard outage of ``component`` on ``[start, end)``.

        Windows for one component may never overlap: a crash cannot begin
        before the previous recovery — the injector enforces the invariant
        instead of trusting scenario scripts.
        """
        window = CrashWindow(start, end)
        plan = self._plan(component)
        for existing in plan.crash_windows:
            if window.overlaps(existing):
                raise ValueError(
                    f"crash window [{start}, {end}) overlaps existing "
                    f"[{existing.start}, {existing.end}) for {component!r}"
                )
        plan.crash_windows.append(window)
        plan.crash_windows.sort(key=lambda w: w.start)
        return window

    def add_transient(
        self,
        component: str,
        rate: float,
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        """Fail each call to ``component`` with probability ``rate`` on ``[start, end)``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self._plan(component).transients.append(_RateRule(start, end, rate=rate))

    def add_latency(
        self,
        component: str,
        extra: float,
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        """Slow each call to ``component`` by ``extra`` seconds on ``[start, end)``."""
        if extra < 0:
            raise ValueError("extra latency cannot be negative")
        self._plan(component).spikes.append(_RateRule(start, end, extra=extra))

    def clear_plans(self, component: str | None = None) -> None:
        """Drop fault plans (all components, or one); the trace is kept."""
        if component is None:
            self._plans.clear()
        else:
            self._plans.pop(component, None)

    def reset_trace(self) -> None:
        """Forget recorded events and counters (plans stay scheduled)."""
        self.trace.clear()
        self.injected.clear()

    # ------------------------------------------------------------------
    # Interrogation
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time on the injector's clock."""
        return self.clock.now()

    def crashed(self, component: str, now: float | None = None) -> bool:
        """Is ``component`` inside a crash window?  (Passive — no trace event.)

        Callers that *check before calling* (e.g. the BN server probing
        ``cache.available``) route around the outage gracefully and inject
        nothing; only calls that actually hit a crashed component record a
        fault.
        """
        plan = self._plans.get(component)
        if plan is None:
            return False
        at = self.now() if now is None else now
        return any(w.contains(at) for w in plan.crash_windows)

    @property
    def fault_count(self) -> int:
        """Total *raised* faults (crash + transient); latency spikes excluded."""
        return sum(
            count
            for (_component, kind), count in self.injected.items()
            if kind in ("crash", "transient")
        )

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def before_call(self, component: str, now: float | None = None) -> float:
        """Gate one call to ``component``.

        Raises :class:`InjectedFault` when the component is inside a crash
        window or a transient-error draw fires; otherwise returns the extra
        latency (seconds) the caller must charge to the operation.  Every
        injected fault or spike is appended to :attr:`trace`.
        """
        plan = self._plans.get(component)
        if plan is None:
            return 0.0
        at = self.now() if now is None else now
        for window in plan.crash_windows:
            if window.contains(at):
                self._record(component, "crash", at)
                raise InjectedFault(f"{component} is down (injected crash window)")
        for rule in plan.transients:
            if rule.active(at) and rule.rate > 0.0:
                if self._rng.random() < rule.rate:
                    self._record(component, "transient", at)
                    raise InjectedFault(f"{component} transient error (injected)")
        extra = sum(rule.extra for rule in plan.spikes if rule.active(at))
        if extra > 0.0:
            self._record(component, "latency", at, latency=extra)
        return extra

    def _record(self, component: str, kind: str, at: float, latency: float = 0.0) -> None:
        self.trace.append(FaultEvent(component, kind, at, latency))
        self.injected[(component, kind)] += 1
        # Stamp the fault onto whichever pipeline stage absorbed it, so a
        # trace shows not just *that* a request degraded but *where*.
        span = current_span()
        if span is not None:
            span.add_event(
                f"fault.{kind}", at=at, component=component, latency=latency
            )
            span.incr("faults")


@dataclass(slots=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and multiplicative jitter.

    ``backoff(attempt, rng)`` returns the simulated seconds to charge before
    attempt ``attempt + 1``; the caller adds it to the stage's latency
    breakdown (and therefore the clock), so waiting is never free.
    """

    max_attempts: int = 3
    base_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.25  # +/- fraction of the deterministic backoff

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff times cannot be negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retrying after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_backoff * self.multiplier ** (attempt - 1), self.max_backoff)
        if self.jitter > 0.0 and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return raw


class CircuitBreaker:
    """Consecutive-failure breaker with request-counted half-open probes.

    Deterministic under the simulated clock: the breaker opens after
    ``failure_threshold`` consecutive graph-path failures, then allows one
    probe request through every ``probe_interval`` requests.  A successful
    probe closes the breaker; a failed one keeps it open.
    """

    def __init__(self, failure_threshold: int = 3, probe_interval: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self.state = "closed"  # "closed" | "open"
        self.consecutive_failures = 0
        self.opened_count = 0
        self.short_circuited = 0  # requests denied while open
        self._calls_while_open = 0

    def allow(self) -> bool:
        """May this request attempt the protected path?"""
        if self.state == "closed":
            return True
        self._calls_while_open += 1
        if self._calls_while_open % self.probe_interval == 0:
            return True  # half-open probe
        self.short_circuited += 1
        return False

    def record_success(self) -> None:
        """Protected path succeeded — close the breaker."""
        self.consecutive_failures = 0
        self.state = "closed"
        self._calls_while_open = 0

    def record_failure(self) -> None:
        """Protected path failed (after retries); open past the threshold."""
        self.consecutive_failures += 1
        if self.state == "closed" and self.consecutive_failures >= self.failure_threshold:
            self.state = "open"
            self.opened_count += 1
            self._calls_while_open = 0

    def reset(self) -> None:
        """Operator action: force-close after a confirmed recovery."""
        self.record_success()


def random_fault_plan(
    injector: FaultInjector,
    components: list[str],
    rng: np.random.Generator,
    horizon: float = 100.0,
    max_windows: int = 3,
) -> FaultInjector:
    """Populate ``injector`` with a random, *valid* fault plan.

    For every component, draws up to ``max_windows`` crash windows that are
    non-overlapping by construction (sorted distinct cut points over the
    horizon), plus optionally one transient-error rule and one latency
    spike.  Used by the property-based tests: any seeded plan must satisfy
    the injector's invariants.
    """
    for component in components:
        n_windows = int(rng.integers(0, max_windows + 1))
        if n_windows:
            cuts = np.sort(rng.uniform(0.0, horizon, size=2 * n_windows))
            # Collapse accidental duplicates by nudging; keeps starts < ends.
            for i in range(1, len(cuts)):
                if cuts[i] <= cuts[i - 1]:
                    cuts[i] = np.nextafter(cuts[i - 1], np.inf)
            for i in range(n_windows):
                injector.add_crash(component, float(cuts[2 * i]), float(cuts[2 * i + 1]))
        if rng.random() < 0.5:
            start = float(rng.uniform(0.0, horizon))
            end = float(rng.uniform(start, horizon)) + 1e-9
            injector.add_transient(component, float(rng.uniform(0.0, 0.5)), start, end)
        if rng.random() < 0.5:
            start = float(rng.uniform(0.0, horizon))
            end = float(rng.uniform(start, horizon)) + 1e-9
            injector.add_latency(component, float(rng.uniform(0.001, 0.1)), start, end)
    return injector
