"""Feature management module of the online system.

Section V: the node features consist of profile features ``X_u``,
application features ``X_tau`` and behavior statistics ``X_s``.  Jimi had no
streaming infrastructure, so ``X_s`` was computed *on demand* from the raw
logs — the dominant share of prediction latency.  The Redis cache cut the
average request from 6.8 s to 0.8 s; this module reproduces both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..datagen.entities import Transaction
from ..features.pipeline import FeatureManager
from ..obs.tracing import Span
from .latency import LatencyModel
from .storage import InMemoryCache, LocalDatabase, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultInjector
    from .service import RequestContext

__all__ = ["FeatureServer", "FeatureBatchStats"]


@dataclass(frozen=True, slots=True)
class FeatureBatchStats:
    """Coalescing accounting for one ``features_for_batch`` call."""

    requests: int  # requests that reached feature assembly
    node_touches: int  # feature rows requested across all requests
    unique_rows: int  # distinct rows actually backing those touches
    row_cache_hits: int  # context rows served from the (uid, bucket) cache
    computed_rows: int  # context rows computed fresh this batch

    @property
    def coalescing(self) -> float:
        """Touches per distinct row — >1 means overlap was amortized."""
        return self.node_touches / max(1, self.unique_rows)


class FeatureServer:
    """Assembles the feature matrix for a computation subgraph's nodes.

    Satisfies the :class:`~repro.system.service.Service` protocol:
    :attr:`name`, :meth:`ping`, :meth:`stats` and :meth:`handle` (the
    ``feature_fetch`` stage of a prediction request).
    """

    def __init__(
        self,
        feature_manager: FeatureManager,
        latency: LatencyModel,
        database: LocalDatabase | None = None,
        cache: InMemoryCache | None = None,
        stat_windows: int = 5,
        cache_ttl: float = 6 * 3600.0,
        faults: "FaultInjector | None" = None,
        component: str = "feature_server",
    ) -> None:
        self.feature_manager = feature_manager
        self.latency = latency
        self.database = database or LocalDatabase(latency)
        self.cache = cache
        self.stat_windows = stat_windows
        self.cache_ttl = cache_ttl
        self.faults = faults
        self.component = component
        self._latest_txn = {
            txn.uid: txn for txn in feature_manager.latest_transactions()
        }
        # Feature-row cache for *context* rows, keyed per uid with the
        # time bucket it was written in: ``floor(now / cache_ttl)``.  Context
        # rows are observed at the user's latest application time, so a
        # cached row is bit-identical to a recomputed one until the latest
        # transaction changes (observe/refresh invalidate) — the bucket only
        # bounds how long a row is reused, mirroring the log-cache TTL.
        self._row_cache: dict[int, tuple[int, np.ndarray]] = {}
        self.row_cache_hits = 0
        self.row_cache_misses = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    # Post-deploy visibility (the latest-transaction table is not frozen)
    # ------------------------------------------------------------------
    def observe(self, transactions: Iterable[Transaction]) -> int:
        """Make transactions ingested after deploy visible to assembly.

        Updates the per-user latest-application table (and invalidates any
        cached feature row) for every transaction newer than the one on
        record.  Returns how many users were updated.
        """
        updated = 0
        for txn in transactions:
            current = self._latest_txn.get(txn.uid)
            if current is None or txn.created_at > current.created_at:
                self._latest_txn[txn.uid] = txn
                self._row_cache.pop(txn.uid, None)
                updated += 1
        return updated

    def refresh(self) -> None:
        """Rebuild the latest-transaction table from the feature manager.

        For deployments whose dataset grows in place; drops the feature-row
        cache wholesale since any user's context row may have changed.
        """
        self._latest_txn = {
            txn.uid: txn for txn in self.feature_manager.latest_transactions()
        }
        self._row_cache.clear()
        self.refreshes += 1

    def latest_transaction(self, uid: int) -> Transaction | None:
        """The user's latest application on record (``None`` if unknown).

        This is what a context row is observed at — and what the lambda
        batch layer replays per user so its cached score provenance
        matches the live assembly path exactly.
        """
        return self._latest_txn.get(uid)

    def known_users(self) -> list[int]:
        """Sorted uids with a latest application on record."""
        return sorted(self._latest_txn)

    # ------------------------------------------------------------------
    # Service surface (see repro.system.service.Service)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name (also the fault-injector address)."""
        return self.component

    def ping(self) -> float:
        """Liveness probe; raises through the fault gate when down."""
        return self.faults.before_call(self.component) if self.faults else 0.0

    def stats(self) -> dict[str, float]:
        """Feature-store counters (known users, feature dimensionality)."""
        return {
            "known_users": float(len(self._latest_txn)),
            "feature_dim": float(self.feature_manager.dim),
            "stat_windows": float(self.stat_windows),
            "row_cache_rows": float(len(self._row_cache)),
            "row_cache_hits": float(self.row_cache_hits),
            "row_cache_misses": float(self.row_cache_misses),
        }

    def handle(
        self, request: "RequestContext", span: Span | None = None
    ) -> tuple[np.ndarray, float]:
        """Serve the ``feature_fetch`` stage: build the node feature matrix.

        Requires the bn_sample stage to have populated
        ``request.subgraph``; stores the matrix back on the context for
        the inference stage and annotates ``span`` with the row count.
        """
        if request.subgraph is None:
            raise ValueError("feature_fetch requires a sampled subgraph")
        matrix, seconds = self.features_for(
            request.subgraph.nodes, request.request.txn, request.now
        )
        request.features = matrix
        if span is not None:
            span.annotate("feature_rows", int(matrix.shape[0]))
        return matrix, seconds

    def features_for(
        self,
        nodes: Sequence[int],
        target_txn: Transaction,
        now: float,
    ) -> tuple[np.ndarray, float]:
        """Feature rows for ``nodes`` (``nodes[0]`` is the request target).

        The target row uses the transaction under audit; context nodes use
        their latest application.  Returns ``(matrix, seconds_charged)``.

        Failure contract: raises :class:`~repro.system.storage.StorageError`
        (or an injected fault) when the module, the cache mid-lookup, or the
        database behind a cold cache cannot serve.
        """
        seconds = self.faults.before_call(self.component) if self.faults else 0.0
        seconds += self.latency.charge_network()
        if self.cache is None or not self.cache.available:
            # The on-demand X_s scan reads raw logs from the database; a
            # dead database must fail the request instead of silently
            # charging latency for scans that never ran.
            seconds += self.database.ping()
        rows: list[np.ndarray] = []
        for position, uid in enumerate(nodes):
            txn = target_txn if position == 0 else self._latest_txn.get(uid)
            if txn is None:
                rows.append(np.zeros(self.feature_manager.dim))
                continue
            as_of = now if position == 0 else None
            rows.append(self.feature_manager.vector(txn, as_of=as_of))
            seconds += self._charge_node(uid, now)
        return np.stack(rows), seconds

    def _charge_node(self, uid: int, now: float) -> float:
        """Latency of assembling one node's features.

        ``X_s`` is computed on demand in both modes (Jimi had no streaming
        aggregation); the cache moves the scan from disk-backed queries to
        in-memory log slices — the optimization that cut the average request
        from 6.8 s to 0.8 s in Section V.
        """
        seconds = 0.0
        n_logs = self._count_logs(uid, now)
        if self.cache is not None and self.cache.available:
            # Profile + transaction rows come from the in-memory store; the
            # statistics windows scan the cached log slice.
            _value, hit, cost = self.cache.get(("logs", uid), now)
            seconds += cost + self.latency.charge_cache_get()
            if not hit:
                _rows, query_cost = self.database.query("logs", uid)
                seconds += query_cost
                seconds += self.cache.set(("logs", uid), True, now, ttl=self.cache_ttl)
            for _ in range(self.stat_windows):
                seconds += self.latency.charge_mem_scan(n_logs)
        else:
            # Profile + transaction queries, then the expensive on-demand
            # statistics scan over the user's raw logs, window by window.
            seconds += self.latency.charge_db_query(1) * 2
            for _ in range(self.stat_windows):
                seconds += self.latency.charge_db_query(max(1, n_logs))
        return seconds

    def _count_logs(self, uid: int, now: float) -> int:
        """History length that prices the ``X_s`` scan — bisect, no slice."""
        return self.feature_manager.log_index.count_before(uid, now)

    def _count_logs_reference(self, uid: int, now: float) -> int:
        """Pinned pre-fix counting: materializes the full log slice."""
        return len(self.feature_manager.log_index.logs_before(uid, now))

    # ------------------------------------------------------------------
    # Batched serving
    # ------------------------------------------------------------------
    def _bucket(self, now: float) -> int:
        return int(now // self.cache_ttl) if self.cache_ttl > 0 else 0

    def features_for_batch(
        self,
        node_lists: Sequence[Sequence[int] | None],
        target_txns: Sequence[Transaction],
        nows: Sequence[float],
    ) -> tuple[
        list[np.ndarray | None],
        list[float],
        list[Exception | None],
        FeatureBatchStats,
    ]:
        """Coalesced feature assembly for a micro-batch of requests.

        ``node_lists[i]`` are request ``i``'s subgraph nodes (``None`` for a
        request already failed upstream — it is skipped).  Matrices are
        bit-for-bit what :meth:`features_for` returns per request: target
        rows are observed at the request's ``now``, context rows at the
        user's latest application — which makes context rows shareable, so
        each unique context uid is charged and computed once per batch (or
        served from the ``(uid, time-bucket)`` row cache for a cache-get),
        and the ``X_s`` block for every row to compute comes from one
        columnar pass.

        Failure contract: storage faults poison only the request whose
        charging hit them; the per-request error is returned instead of
        raised so the rest of the batch proceeds.
        """
        n = len(node_lists)
        matrices: list[np.ndarray | None] = [None] * n
        seconds = [0.0] * n
        errors: list[Exception | None] = [None] * n
        alive: list[int] = []
        charged: set[int] = set()
        batch_hits = 0
        for i in range(n):
            nodes = node_lists[i]
            if nodes is None:
                continue
            try:
                charge = self.faults.before_call(self.component) if self.faults else 0.0
                charge += self.latency.charge_network()
                if self.cache is None or not self.cache.available:
                    charge += self.database.ping()
                for position, uid in enumerate(nodes):
                    if position == 0:
                        charge += self._charge_node(uid, nows[i])
                        charged.add(uid)
                        continue
                    if self._latest_txn.get(uid) is None or uid in charged:
                        continue
                    cached = self._row_cache.get(uid)
                    if cached is not None and cached[0] == self._bucket(nows[i]):
                        charge += self.latency.charge_cache_get()
                        batch_hits += 1
                    else:
                        charge += self._charge_node(uid, nows[i])
                    charged.add(uid)
            except StorageError as exc:
                errors[i] = exc
                continue
            seconds[i] = charge
            alive.append(i)

        # Row plan: first alive toucher of each context uid decides hit vs
        # compute; cached rows are always bit-identical to a fresh compute
        # (observe/refresh invalidate on any latest-transaction change).
        plan: dict[int, str] = {}
        bucket_of: dict[int, int] = {}
        for i in alive:
            for uid in node_lists[i][1:]:
                if uid in plan or self._latest_txn.get(uid) is None:
                    continue
                bucket = self._bucket(nows[i])
                cached = self._row_cache.get(uid)
                plan[uid] = "hit" if cached is not None and cached[0] == bucket else "compute"
                bucket_of[uid] = bucket
        compute_uids = [uid for uid, decision in plan.items() if decision == "compute"]
        self.row_cache_hits += batch_hits
        self.row_cache_misses += len(compute_uids)

        batch_txns = [target_txns[i] for i in alive]
        batch_as_ofs: list[float | None] = [nows[i] for i in alive]
        batch_txns.extend(self._latest_txn[uid] for uid in compute_uids)
        batch_as_ofs.extend([None] * len(compute_uids))
        rows = self.feature_manager.vector_batch(batch_txns, batch_as_ofs)
        target_rows = dict(zip(alive, rows[: len(alive)]))
        context_rows: dict[int, np.ndarray] = {}
        for uid, row in zip(compute_uids, rows[len(alive):]):
            context_rows[uid] = row
            self._row_cache[uid] = (bucket_of[uid], row)
        for uid, decision in plan.items():
            if decision == "hit":
                context_rows[uid] = self._row_cache[uid][1]

        touches = 0
        for i in alive:
            nodes = node_lists[i]
            touches += len(nodes)
            request_rows = [target_rows[i]]
            for uid in nodes[1:]:
                row = context_rows.get(uid)
                if row is None:
                    request_rows.append(np.zeros(self.feature_manager.dim))
                else:
                    request_rows.append(row)
            matrices[i] = np.stack(request_rows)
        stats = FeatureBatchStats(
            requests=len(alive),
            node_touches=touches,
            unique_rows=len(alive) + len(plan),
            row_cache_hits=batch_hits,
            computed_rows=len(compute_uids),
        )
        return matrices, seconds, errors, stats
