"""Feature management module of the online system.

Section V: the node features consist of profile features ``X_u``,
application features ``X_tau`` and behavior statistics ``X_s``.  Jimi had no
streaming infrastructure, so ``X_s`` was computed *on demand* from the raw
logs — the dominant share of prediction latency.  The Redis cache cut the
average request from 6.8 s to 0.8 s; this module reproduces both paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..datagen.entities import Transaction
from ..features.pipeline import FeatureManager
from ..obs.tracing import Span
from .latency import LatencyModel
from .storage import InMemoryCache, LocalDatabase

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultInjector
    from .service import RequestContext

__all__ = ["FeatureServer"]


class FeatureServer:
    """Assembles the feature matrix for a computation subgraph's nodes.

    Satisfies the :class:`~repro.system.service.Service` protocol:
    :attr:`name`, :meth:`ping`, :meth:`stats` and :meth:`handle` (the
    ``feature_fetch`` stage of a prediction request).
    """

    def __init__(
        self,
        feature_manager: FeatureManager,
        latency: LatencyModel,
        database: LocalDatabase | None = None,
        cache: InMemoryCache | None = None,
        stat_windows: int = 5,
        cache_ttl: float = 6 * 3600.0,
        faults: "FaultInjector | None" = None,
        component: str = "feature_server",
    ) -> None:
        self.feature_manager = feature_manager
        self.latency = latency
        self.database = database or LocalDatabase(latency)
        self.cache = cache
        self.stat_windows = stat_windows
        self.cache_ttl = cache_ttl
        self.faults = faults
        self.component = component
        self._latest_txn = {
            txn.uid: txn for txn in feature_manager.latest_transactions()
        }

    # ------------------------------------------------------------------
    # Service surface (see repro.system.service.Service)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name (also the fault-injector address)."""
        return self.component

    def ping(self) -> float:
        """Liveness probe; raises through the fault gate when down."""
        return self.faults.before_call(self.component) if self.faults else 0.0

    def stats(self) -> dict[str, float]:
        """Feature-store counters (known users, feature dimensionality)."""
        return {
            "known_users": float(len(self._latest_txn)),
            "feature_dim": float(self.feature_manager.dim),
            "stat_windows": float(self.stat_windows),
        }

    def handle(
        self, request: "RequestContext", span: Span | None = None
    ) -> tuple[np.ndarray, float]:
        """Serve the ``feature_fetch`` stage: build the node feature matrix.

        Requires the bn_sample stage to have populated
        ``request.subgraph``; stores the matrix back on the context for
        the inference stage and annotates ``span`` with the row count.
        """
        if request.subgraph is None:
            raise ValueError("feature_fetch requires a sampled subgraph")
        matrix, seconds = self.features_for(
            request.subgraph.nodes, request.request.txn, request.now
        )
        request.features = matrix
        if span is not None:
            span.annotate("feature_rows", int(matrix.shape[0]))
        return matrix, seconds

    def features_for(
        self,
        nodes: Sequence[int],
        target_txn: Transaction,
        now: float,
    ) -> tuple[np.ndarray, float]:
        """Feature rows for ``nodes`` (``nodes[0]`` is the request target).

        The target row uses the transaction under audit; context nodes use
        their latest application.  Returns ``(matrix, seconds_charged)``.

        Failure contract: raises :class:`~repro.system.storage.StorageError`
        (or an injected fault) when the module, the cache mid-lookup, or the
        database behind a cold cache cannot serve.
        """
        seconds = self.faults.before_call(self.component) if self.faults else 0.0
        seconds += self.latency.charge_network()
        if self.cache is None or not self.cache.available:
            # The on-demand X_s scan reads raw logs from the database; a
            # dead database must fail the request instead of silently
            # charging latency for scans that never ran.
            seconds += self.database.ping()
        rows: list[np.ndarray] = []
        for position, uid in enumerate(nodes):
            txn = target_txn if position == 0 else self._latest_txn.get(uid)
            if txn is None:
                rows.append(np.zeros(self.feature_manager.dim))
                continue
            as_of = now if position == 0 else None
            rows.append(self.feature_manager.vector(txn, as_of=as_of))
            seconds += self._charge_node(uid, now)
        return np.stack(rows), seconds

    def _charge_node(self, uid: int, now: float) -> float:
        """Latency of assembling one node's features.

        ``X_s`` is computed on demand in both modes (Jimi had no streaming
        aggregation); the cache moves the scan from disk-backed queries to
        in-memory log slices — the optimization that cut the average request
        from 6.8 s to 0.8 s in Section V.
        """
        seconds = 0.0
        n_logs = len(self.feature_manager.log_index.logs_before(uid, now))
        if self.cache is not None and self.cache.available:
            # Profile + transaction rows come from the in-memory store; the
            # statistics windows scan the cached log slice.
            _value, hit, cost = self.cache.get(("logs", uid), now)
            seconds += cost + self.latency.charge_cache_get()
            if not hit:
                _rows, query_cost = self.database.query("logs", uid)
                seconds += query_cost
                seconds += self.cache.set(("logs", uid), True, now, ttl=self.cache_ttl)
            for _ in range(self.stat_windows):
                seconds += self.latency.charge_mem_scan(n_logs)
        else:
            # Profile + transaction queries, then the expensive on-demand
            # statistics scan over the user's raw logs, window by window.
            seconds += self.latency.charge_db_query(1) * 2
            for _ in range(self.stat_windows):
                seconds += self.latency.charge_db_query(max(1, n_logs))
        return seconds
