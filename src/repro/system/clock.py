"""Simulated wall clock for the online-system benchmarks.

All latency in :mod:`repro.system` is *charged*, never slept: components
report how long an operation would take under the latency model, and the
clock advances accordingly.  This keeps the Fig. 8 / Section V benchmarks
fast and deterministic.
"""

from __future__ import annotations

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance time; returns the new now."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
