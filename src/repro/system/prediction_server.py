"""Real-time prediction server: runs HAG on a sampled computation subgraph."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.hag import HAG
from ..datagen.behavior_types import BehaviorType
from ..features.pipeline import StandardScaler
from ..network.sampling import ComputationSubgraph
from ..obs.tracing import Span
from .latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultInjector
    from .service import RequestContext

__all__ = ["PredictionServer"]


class PredictionServer:
    """Holds the active model + scaler and serves inductive predictions.

    Satisfies the :class:`~repro.system.service.Service` protocol:
    :attr:`name`, :meth:`ping`, :meth:`stats` and :meth:`handle` (the
    ``inference`` stage of a prediction request).
    """

    def __init__(
        self,
        model: HAG,
        scaler: StandardScaler,
        edge_type_order: Sequence[BehaviorType],
        latency: LatencyModel,
        faults: "FaultInjector | None" = None,
        component: str = "prediction_server",
    ) -> None:
        self.model = model
        self.scaler = scaler
        self.edge_type_order = tuple(edge_type_order)
        self.latency = latency
        self.faults = faults
        self.component = component
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Service surface (see repro.system.service.Service)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name (also the fault-injector address)."""
        return self.component

    def ping(self) -> float:
        """Liveness probe; raises through the fault gate when down."""
        return self.faults.before_call(self.component) if self.faults else 0.0

    def stats(self) -> dict[str, float]:
        """Serving counters (requests served, edge-type vocabulary size)."""
        return {
            "requests_served": float(self.requests_served),
            "edge_types": float(len(self.edge_type_order)),
        }

    def handle(
        self, request: "RequestContext", span: Span | None = None
    ) -> tuple[float, float]:
        """Serve the ``inference`` stage: run HAG on the sampled subgraph.

        Requires the upstream stages to have populated ``request.subgraph``
        and ``request.features``; stores the fraud probability back on the
        context and annotates ``span`` with it.
        """
        if request.subgraph is None or request.features is None:
            raise ValueError("inference requires a subgraph and its features")
        probability, seconds = self.predict(request.subgraph, request.features)
        request.probability = probability
        if span is not None:
            span.annotate("probability", probability)
        return probability, seconds

    def predict(
        self, subgraph: ComputationSubgraph, features: np.ndarray
    ) -> tuple[float, float]:
        """Fraud probability for the subgraph target; ``(probability, seconds)``."""
        if features.shape[0] != subgraph.num_nodes:
            raise ValueError("feature rows must align with subgraph nodes")
        extra = self.faults.before_call(self.component) if self.faults else 0.0
        scaled = self.scaler.transform(features)
        probability = self.model.predict_subgraph(
            subgraph, scaled, edge_type_order=self.edge_type_order
        )
        self.requests_served += 1
        return probability, self.latency.charge_model_forward(subgraph.num_nodes) + extra

    def predict_batch(
        self,
        subgraphs: Sequence[ComputationSubgraph],
        features: Sequence[np.ndarray],
        gate_extras: Sequence[float] | None = None,
    ) -> tuple[list[float], list[float]]:
        """One packed forward for a micro-batch; ``(probabilities, seconds)``.

        Probabilities are bit-for-bit what per-request :meth:`predict` calls
        return (see :meth:`repro.core.hag.HAG.predict_subgraphs`); the fixed
        forward cost is amortized across the batch by the latency model.
        The caller runs the per-request fault gate (``ping``) and passes the
        charged extras through ``gate_extras`` so they land in the same
        latency slot as the scalar path's.
        """
        if len(subgraphs) != len(features):
            raise ValueError("one feature matrix per subgraph is required")
        scaled = [self.scaler.transform(matrix) for matrix in features]
        probabilities = self.model.predict_subgraphs(
            subgraphs, scaled, edge_type_order=self.edge_type_order
        )
        self.requests_served += len(subgraphs)
        seconds = self.latency.charge_model_forward_batch(
            [subgraph.num_nodes for subgraph in subgraphs]
        )
        if gate_extras is not None:
            seconds = [s + extra for s, extra in zip(seconds, gate_extras)]
        return probabilities, seconds
