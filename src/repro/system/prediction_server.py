"""Real-time prediction server: runs HAG on a sampled computation subgraph."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.hag import HAG
from ..datagen.behavior_types import BehaviorType
from ..features.pipeline import StandardScaler
from ..network.sampling import ComputationSubgraph
from .latency import LatencyModel

__all__ = ["PredictionServer"]


class PredictionServer:
    """Holds the active model + scaler and serves inductive predictions."""

    def __init__(
        self,
        model: HAG,
        scaler: StandardScaler,
        edge_type_order: Sequence[BehaviorType],
        latency: LatencyModel,
    ) -> None:
        self.model = model
        self.scaler = scaler
        self.edge_type_order = tuple(edge_type_order)
        self.latency = latency
        self.requests_served = 0

    def predict(
        self, subgraph: ComputationSubgraph, features: np.ndarray
    ) -> tuple[float, float]:
        """Fraud probability for the subgraph target; ``(probability, seconds)``."""
        if features.shape[0] != subgraph.num_nodes:
            raise ValueError("feature rows must align with subgraph nodes")
        scaled = self.scaler.transform(features)
        probability = self.model.predict_subgraph(
            subgraph, scaled, edge_type_order=self.edge_type_order
        )
        self.requests_served += 1
        return probability, self.latency.charge_model_forward(subgraph.num_nodes)
