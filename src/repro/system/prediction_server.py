"""Real-time prediction server: runs HAG on a sampled computation subgraph."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.hag import HAG
from ..datagen.behavior_types import BehaviorType
from ..features.pipeline import StandardScaler
from ..network.sampling import ComputationSubgraph
from .latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultInjector

__all__ = ["PredictionServer"]


class PredictionServer:
    """Holds the active model + scaler and serves inductive predictions."""

    def __init__(
        self,
        model: HAG,
        scaler: StandardScaler,
        edge_type_order: Sequence[BehaviorType],
        latency: LatencyModel,
        faults: "FaultInjector | None" = None,
        component: str = "prediction_server",
    ) -> None:
        self.model = model
        self.scaler = scaler
        self.edge_type_order = tuple(edge_type_order)
        self.latency = latency
        self.faults = faults
        self.component = component
        self.requests_served = 0

    def predict(
        self, subgraph: ComputationSubgraph, features: np.ndarray
    ) -> tuple[float, float]:
        """Fraud probability for the subgraph target; ``(probability, seconds)``."""
        if features.shape[0] != subgraph.num_nodes:
            raise ValueError("feature rows must align with subgraph nodes")
        extra = self.faults.before_call(self.component) if self.faults else 0.0
        scaled = self.scaler.transform(features)
        probability = self.model.predict_subgraph(
            subgraph, scaled, edge_type_order=self.edge_type_order
        )
        self.requests_served += 1
        return probability, self.latency.charge_model_forward(subgraph.num_nodes) + extra
