"""Storage substrate: a local database, an in-memory cache, and replication.

Models the deployment of Section V: a MySQL cluster holds the ground truth
(logs, profiles, the global edge list); a Redis cluster caches the graph,
features and behavior logs; both have primary-and-replica switching so the
system survives a primary crash.  Costs are charged through the latency
model instead of performing real I/O.

Every store optionally carries a :class:`~repro.system.faults.FaultInjector`
reference plus a component name; injected crash windows make the store
``available == False`` (so check-then-use callers can route around it) and
any call that goes through anyway raises
:class:`~repro.system.faults.InjectedFault` — never a silent degraded
result.  See ``docs/RESILIENCE.md`` for the failure-mode contracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterable

from ..obs.tracing import current_span
from .latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultInjector

__all__ = ["LocalDatabase", "InMemoryCache", "ReplicatedStore", "StorageError"]


def _stamp(key: str) -> None:
    """Count one storage operation on the active request span (if any).

    Keeps trace context threading out of every call signature: whatever
    pipeline stage is executing inside a ``use_span`` block accumulates
    ``db.*`` / ``cache.*`` op counters on its own span.
    """
    span = current_span()
    if span is not None:
        span.incr(key)


class StorageError(RuntimeError):
    """Raised when no replica can serve a request."""


class LocalDatabase:
    """Disk-backed key-value/table store (MySQL stand-in).

    Tables are dicts of key -> row-list; every access charges DB latency.
    """

    def __init__(
        self,
        latency: LatencyModel,
        faults: "FaultInjector | None" = None,
        component: str = "database",
    ) -> None:
        self.latency = latency
        self.faults = faults
        self.component = component
        self._tables: dict[str, dict[Hashable, list[Any]]] = {}
        self.query_count = 0
        self.write_count = 0
        self._up = True

    @property
    def available(self) -> bool:
        """Up and outside any injected crash window (check-then-use probe)."""
        if not self._up:
            return False
        return self.faults is None or not self.faults.crashed(self.component)

    def _table(self, name: str) -> dict[Hashable, list[Any]]:
        return self._tables.setdefault(name, {})

    def _gate(self) -> float:
        """Crash/fault gate for one operation; returns injected extra seconds.

        Raises :class:`StorageError` when manually crashed and
        :class:`~repro.system.faults.InjectedFault` when the fault plan says
        so — *before* any state is read or mutated, so a faulted call never
        leaves partial writes or phantom evictions behind.
        """
        if not self._up:
            raise StorageError("database instance is down")
        if self.faults is not None:
            return self.faults.before_call(self.component)
        return 0.0

    def ping(self) -> float:
        """Liveness probe: raises when the store cannot serve, else returns
        the injected extra seconds (so even probing a browned-out store
        charges the spike)."""
        return self._gate()

    def insert(self, table: str, key: Hashable, row: Any) -> float:
        """Append a row under ``key``; returns charged seconds."""
        extra = self._gate()
        self._table(table).setdefault(key, []).append(row)
        self.write_count += 1
        _stamp("db.writes")
        return self.latency.charge_db_write(1) + extra

    def insert_many(self, table: str, items: Iterable[tuple[Hashable, Any]]) -> float:
        """Bulk-append rows in one write; returns charged seconds."""
        extra = self._gate()
        count = 0
        tbl = self._table(table)
        for key, row in items:
            tbl.setdefault(key, []).append(row)
            count += 1
        self.write_count += 1
        _stamp("db.writes")
        return self.latency.charge_db_write(count) + extra

    def put(self, table: str, key: Hashable, value: Any) -> float:
        """Replace the full row-list for ``key`` (single-value semantics)."""
        extra = self._gate()
        self._table(table)[key] = [value]
        self.write_count += 1
        _stamp("db.writes")
        return self.latency.charge_db_write(1) + extra

    def query(self, table: str, key: Hashable) -> tuple[list[Any], float]:
        """Return ``(rows, seconds)``; rows is empty if the key is absent."""
        extra = self._gate()
        rows = self._table(table).get(key, [])
        self.query_count += 1
        _stamp("db.queries")
        return rows, self.latency.charge_db_query(len(rows)) + extra

    def scan(self, table: str) -> tuple[list[tuple[Hashable, list[Any]]], float]:
        """Full-table scan; returns ``(items, seconds)``."""
        extra = self._gate()
        tbl = self._table(table)
        self.query_count += 1
        _stamp("db.queries")
        total_rows = sum(len(rows) for rows in tbl.values())
        return list(tbl.items()), self.latency.charge_db_query(total_rows) + extra

    def crash(self) -> None:
        """Simulate an instance crash: requests fail until recovery."""
        self._up = False

    def recover(self) -> None:
        """Bring the instance back (durable contents intact)."""
        self._up = True

    def snapshot(self) -> dict[str, dict[Hashable, list[Any]]]:
        """Deep-ish copy used to seed replicas."""
        return {t: {k: list(v) for k, v in rows.items()} for t, rows in self._tables.items()}

    def load_snapshot(self, snapshot: dict[str, dict[Hashable, list[Any]]]) -> None:
        """Replace the contents with a snapshot (replica seeding)."""
        self._tables = {t: {k: list(v) for k, v in rows.items()} for t, rows in snapshot.items()}


class InMemoryCache:
    """Redis stand-in: TTL-aware key-value cache with hit/miss accounting.

    Failure contract (see ``docs/RESILIENCE.md``): a crashed cache — manual
    ``crash()`` or an injected crash window — **raises** ``StorageError``
    from ``get``/``set`` instead of silently reporting a miss.  A silent
    miss would send the caller to the database without anyone noticing the
    outage; raising keeps the degradation decision (retry, route around,
    fall back) with the resilience layer.  The fault gate runs before the
    TTL sweep, so a faulted ``get`` never evicts the expired entry nor
    counts a miss.
    """

    def __init__(
        self,
        latency: LatencyModel,
        default_ttl: float | None = None,
        faults: "FaultInjector | None" = None,
        component: str = "cache",
    ) -> None:
        self.latency = latency
        self.default_ttl = default_ttl
        self.faults = faults
        self.component = component
        self._store: dict[Hashable, tuple[Any, float | None]] = {}
        self.hits = 0
        self.misses = 0
        self._up = True

    @property
    def available(self) -> bool:
        """Up and outside any injected crash window (check-then-use probe)."""
        if not self._up:
            return False
        return self.faults is None or not self.faults.crashed(self.component)

    def _gate(self) -> float:
        if not self._up:
            raise StorageError("cache instance is down")
        if self.faults is not None:
            return self.faults.before_call(self.component)
        return 0.0

    def ping(self) -> float:
        """Liveness probe; raises when the cache cannot serve."""
        return self._gate()

    def get(self, key: Hashable, now: float = 0.0) -> tuple[Any | None, bool, float]:
        """Return ``(value, hit, seconds)``; raises ``StorageError`` when down."""
        extra = self._gate()
        seconds = self.latency.charge_cache_get() + extra
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            _stamp("cache.misses")
            return None, False, seconds
        value, expires = entry
        if expires is not None and now > expires:
            del self._store[key]
            self.misses += 1
            _stamp("cache.misses")
            return None, False, seconds
        self.hits += 1
        _stamp("cache.hits")
        return value, True, seconds

    def set(
        self, key: Hashable, value: Any, now: float = 0.0, ttl: float | None = None
    ) -> float:
        """Store ``value`` under ``key`` (optionally with a TTL); returns seconds."""
        extra = self._gate()
        ttl = ttl if ttl is not None else self.default_ttl
        expires = now + ttl if ttl is not None else None
        self._store[key] = (value, expires)
        _stamp("cache.sets")
        return self.latency.charge_cache_set() + extra

    def invalidate(self, key: Hashable) -> None:
        """Remove one key if present."""
        self._store.pop(key, None)

    def clear(self) -> None:
        """Drop every cached entry."""
        self._store.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def crash(self) -> None:
        """Simulate a cache-instance crash (contents are lost)."""
        self._up = False
        self._store.clear()

    def recover(self) -> None:
        """Bring the cache back online (empty)."""
        self._up = True

    def _ensure_up(self) -> None:
        if not self._up:
            raise StorageError("cache instance is down")


@dataclass
class ReplicatedStore:
    """Primary/replica pair with automatic failover (disaster backup).

    Writes go to every available node; reads go to the primary and fail
    over to the replica when the primary is down (charging one extra
    network round-trip).  Duck-types ``LocalDatabase``'s read/write surface
    so the BN and feature servers can run on either.

    Counter contract (pinned by tests): :attr:`failovers` is a **lifetime**
    counter of redirected reads — :meth:`promote_replica` does *not* reset
    it, because the operator question it answers ("how often did we serve
    off the backup?") spans promotions.  Promotions are counted separately
    in :attr:`promotions`.
    """

    primary: LocalDatabase
    replica: LocalDatabase
    latency: LatencyModel
    failovers: int = field(default=0)
    promotions: int = field(default=0)

    @property
    def available(self) -> bool:
        """Can *any* node serve?"""
        return self.primary.available or self.replica.available

    def ping(self) -> float:
        """Liveness probe against the read path (primary, else replica)."""
        if self.primary.available:
            return self.primary.ping()
        if self.replica.available:
            return self.replica.ping() + self.latency.charge_network()
        raise StorageError("no database replica available")

    def _write_all(self, op: str, *args: Any) -> float:
        seconds = 0.0
        wrote = False
        for node in (self.primary, self.replica):
            if node.available:
                seconds += getattr(node, op)(*args)
                wrote = True
        if not wrote:
            raise StorageError("no database replica available for write")
        return seconds

    def insert(self, table: str, key: Hashable, row: Any) -> float:
        """Write to every available replica; returns charged seconds."""
        return self._write_all("insert", table, key, row)

    def insert_many(self, table: str, items: Iterable[tuple[Hashable, Any]]) -> float:
        """Bulk write to every available replica; returns charged seconds."""
        materialized = list(items)  # both nodes must see the same rows
        return self._write_all("insert_many", table, materialized)

    def put(self, table: str, key: Hashable, value: Any) -> float:
        """Replace ``key`` on every available replica; returns charged seconds."""
        return self._write_all("put", table, key, value)

    def query(self, table: str, key: Hashable) -> tuple[list[Any], float]:
        """Read from the primary, failing over to the replica."""
        if self.primary.available:
            return self.primary.query(table, key)
        if self.replica.available:
            self.failovers += 1
            _stamp("db.failovers")
            rows, seconds = self.replica.query(table, key)
            return rows, seconds + self.latency.charge_network()
        raise StorageError("no database replica available for read")

    def scan(self, table: str) -> tuple[list[tuple[Hashable, list[Any]]], float]:
        """Full-table scan with the same failover routing as :meth:`query`."""
        if self.primary.available:
            return self.primary.scan(table)
        if self.replica.available:
            self.failovers += 1
            _stamp("db.failovers")
            items, seconds = self.replica.scan(table)
            return items, seconds + self.latency.charge_network()
        raise StorageError("no database replica available for read")

    def promote_replica(self) -> None:
        """Primary-and-replica switch after a crash.

        Swaps the roles and increments :attr:`promotions`; the lifetime
        :attr:`failovers` counter is deliberately left untouched (see the
        class docstring for the contract).
        """
        self.primary, self.replica = self.replica, self.primary
        self.promotions += 1

    def recover(self) -> None:
        """Operator action: bring both nodes back up."""
        self.primary.recover()
        self.replica.recover()

    def crash(self) -> None:
        """Total outage: both nodes down (used by chaos scripts)."""
        self.primary.crash()
        self.replica.crash()
