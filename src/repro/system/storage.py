"""Storage substrate: a local database, an in-memory cache, and replication.

Models the deployment of Section V: a MySQL cluster holds the ground truth
(logs, profiles, the global edge list); a Redis cluster caches the graph,
features and behavior logs; both have primary-and-replica switching so the
system survives a primary crash.  Costs are charged through the latency
model instead of performing real I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from .latency import LatencyModel

__all__ = ["LocalDatabase", "InMemoryCache", "ReplicatedStore", "StorageError"]


class StorageError(RuntimeError):
    """Raised when no replica can serve a request."""


class LocalDatabase:
    """Disk-backed key-value/table store (MySQL stand-in).

    Tables are dicts of key -> row-list; every access charges DB latency.
    """

    def __init__(self, latency: LatencyModel) -> None:
        self.latency = latency
        self._tables: dict[str, dict[Hashable, list[Any]]] = {}
        self.query_count = 0
        self.write_count = 0
        self.available = True

    def _table(self, name: str) -> dict[Hashable, list[Any]]:
        return self._tables.setdefault(name, {})

    def insert(self, table: str, key: Hashable, row: Any) -> float:
        """Append a row under ``key``; returns charged seconds."""
        self._ensure_up()
        self._table(table).setdefault(key, []).append(row)
        self.write_count += 1
        return self.latency.charge_db_write(1)

    def insert_many(self, table: str, items: Iterable[tuple[Hashable, Any]]) -> float:
        """Bulk-append rows in one write; returns charged seconds."""
        self._ensure_up()
        count = 0
        tbl = self._table(table)
        for key, row in items:
            tbl.setdefault(key, []).append(row)
            count += 1
        self.write_count += 1
        return self.latency.charge_db_write(count)

    def put(self, table: str, key: Hashable, value: Any) -> float:
        """Replace the full row-list for ``key`` (single-value semantics)."""
        self._ensure_up()
        self._table(table)[key] = [value]
        self.write_count += 1
        return self.latency.charge_db_write(1)

    def query(self, table: str, key: Hashable) -> tuple[list[Any], float]:
        """Return ``(rows, seconds)``; rows is empty if the key is absent."""
        self._ensure_up()
        rows = self._table(table).get(key, [])
        self.query_count += 1
        return rows, self.latency.charge_db_query(len(rows))

    def scan(self, table: str) -> tuple[list[tuple[Hashable, list[Any]]], float]:
        """Full-table scan; returns ``(items, seconds)``."""
        self._ensure_up()
        tbl = self._table(table)
        self.query_count += 1
        total_rows = sum(len(rows) for rows in tbl.values())
        return list(tbl.items()), self.latency.charge_db_query(total_rows)

    def crash(self) -> None:
        """Simulate an instance crash: requests fail until recovery."""
        self.available = False

    def recover(self) -> None:
        """Bring the instance back (durable contents intact)."""
        self.available = True

    def _ensure_up(self) -> None:
        if not self.available:
            raise StorageError("database instance is down")

    def snapshot(self) -> dict[str, dict[Hashable, list[Any]]]:
        """Deep-ish copy used to seed replicas."""
        return {t: {k: list(v) for k, v in rows.items()} for t, rows in self._tables.items()}

    def load_snapshot(self, snapshot: dict[str, dict[Hashable, list[Any]]]) -> None:
        """Replace the contents with a snapshot (replica seeding)."""
        self._tables = {t: {k: list(v) for k, v in rows.items()} for t, rows in snapshot.items()}


class InMemoryCache:
    """Redis stand-in: TTL-aware key-value cache with hit/miss accounting."""

    def __init__(self, latency: LatencyModel, default_ttl: float | None = None) -> None:
        self.latency = latency
        self.default_ttl = default_ttl
        self._store: dict[Hashable, tuple[Any, float | None]] = {}
        self.hits = 0
        self.misses = 0
        self.available = True

    def get(self, key: Hashable, now: float = 0.0) -> tuple[Any | None, bool, float]:
        """Return ``(value, hit, seconds)``."""
        self._ensure_up()
        seconds = self.latency.charge_cache_get()
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None, False, seconds
        value, expires = entry
        if expires is not None and now > expires:
            del self._store[key]
            self.misses += 1
            return None, False, seconds
        self.hits += 1
        return value, True, seconds

    def set(
        self, key: Hashable, value: Any, now: float = 0.0, ttl: float | None = None
    ) -> float:
        """Store ``value`` under ``key`` (optionally with a TTL); returns seconds."""
        self._ensure_up()
        ttl = ttl if ttl is not None else self.default_ttl
        expires = now + ttl if ttl is not None else None
        self._store[key] = (value, expires)
        return self.latency.charge_cache_set()

    def invalidate(self, key: Hashable) -> None:
        """Remove one key if present."""
        self._store.pop(key, None)

    def clear(self) -> None:
        """Drop every cached entry."""
        self._store.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def crash(self) -> None:
        """Simulate a cache-instance crash (contents are lost)."""
        self.available = False
        self._store.clear()

    def recover(self) -> None:
        """Bring the cache back online (empty)."""
        self.available = True

    def _ensure_up(self) -> None:
        if not self.available:
            raise StorageError("cache instance is down")


@dataclass
class ReplicatedStore:
    """Primary/replica pair with automatic failover (disaster backup).

    Writes go to both; reads go to the primary and fail over to the replica
    when the primary is down (charging one extra network round-trip).
    """

    primary: LocalDatabase
    replica: LocalDatabase
    latency: LatencyModel
    failovers: int = field(default=0)

    def insert(self, table: str, key: Hashable, row: Any) -> float:
        """Write to every available replica; returns charged seconds."""
        seconds = 0.0
        wrote = False
        for node in (self.primary, self.replica):
            if node.available:
                seconds += node.insert(table, key, row)
                wrote = True
        if not wrote:
            raise StorageError("no database replica available for write")
        return seconds

    def query(self, table: str, key: Hashable) -> tuple[list[Any], float]:
        """Read from the primary, failing over to the replica."""
        if self.primary.available:
            return self.primary.query(table, key)
        if self.replica.available:
            self.failovers += 1
            rows, seconds = self.replica.query(table, key)
            return rows, seconds + self.latency.charge_network()
        raise StorageError("no database replica available for read")

    def promote_replica(self) -> None:
        """Primary-and-replica switch after a crash."""
        self.primary, self.replica = self.replica, self.primary
