"""Cross-shard frontier exchange and multi-process serving for sharded BN.

Turns the union-frontier sampler of
:func:`repro.network.sampling.computation_subgraphs_batch` into a
shard-aware protocol (ROADMAP item 1, InferTurbo-style gather/apply/scatter
over a partitioned graph):

* each hop, the not-yet-ranked ``(node, type)`` keys of the whole batch are
  deduplicated and split by owner shard (the *frontier exchange*);
* each shard ranks/selects its own nodes' neighbours from the published
  :class:`~repro.network.sharding.ShardIndex` (the same memoized
  deterministic top-``fanout`` selection the single-network sampler uses);
* the router merges the per-shard selections back into every request's BFS
  bookkeeping — bit-exact against the single-network sampler, pinned by
  ``tests/test_network/test_sharding.py``.

:class:`ShardRouter` owns publication (index → shared-memory segments via
:class:`~repro.network.shm.SharedSnapshotStore`, versioned and retired on
rebuild), the per-shard fault gates (components ``bn_shard{i}`` registered
with the deployment's :class:`~repro.system.faults.FaultInjector` and
optional per-shard :class:`~repro.system.faults.CircuitBreaker`s — a dead
shard degrades the batch to the surviving shards' partial frontier instead
of raising), and the ``turbo.shard.*`` metrics.

:class:`ShardWorkerPool` is the OS-level parallel half: worker *processes*
attach the published segments zero-copy, rebuild the read-only index, and
serve whole sampling / packed-HAG-inference sub-batches over a pipe —
``sample``/``predict`` results are bit-identical to the parent's, and a
crashed worker is detected and failed over in-process without losing the
segment (the publisher owns unlink).
"""

from __future__ import annotations

import os
import pickle
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np
import scipy.sparse as sp

from ..core.lambda_infer import HAGState, SliceResult, score_slice
from ..datagen.behavior_types import BehaviorType
from ..network.sampled_graph import SampledGraph
from ..network.sampling import BatchSampleStats, ComputationSubgraph
from ..network.sharding import ShardIndex, ShardedBehaviorNetwork, _shard_of_int
from ..network.shm import SharedSnapshotStore, attach_segment
from ..obs.tracing import current_span
from .storage import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from .faults import CircuitBreaker, FaultInjector

__all__ = [
    "index_sample_batch",
    "publish_materialize_inputs",
    "fullgraph_executor",
    "ShardRouter",
    "ShardWorkerPool",
]

#: Selection key -> neighbour list; shared shape with the single-network
#: sampler's ``selection_cache`` so the BN server can reuse one dict.
SelectionCache = dict


def index_sample_batch(
    index: ShardIndex,
    targets: Sequence[int],
    hops: int = 2,
    fanout: int | None = 25,
    allowed: set[int] | None = None,
    selection_cache: SelectionCache | None = None,
    resolve: Callable[[int, list[tuple[int, BehaviorType]]], list[list[int]] | None]
    | None = None,
    on_exchange: Callable[[int, dict[int, list], int], None] | None = None,
) -> tuple[list[ComputationSubgraph], BatchSampleStats]:
    """Sample every target's ``G_v`` from a published shard index.

    Lockstep variant of ``computation_subgraphs_batch``: one frontier
    exchange per hop ranks all outstanding ``(node, type)`` keys, then each
    request replays its own BFS bookkeeping — selections are pure per key,
    so the per-request node lists (and the CSR bits built from
    :meth:`ShardIndex.induced_entries`) are bit-for-bit what the
    single-network sampler produces.

    ``resolve(shard_id, keys)`` overrides local selection (worker pools,
    fault gates); returning ``None`` marks the shard dead for this batch —
    its keys select nothing, affected requests are listed in
    ``stats.partial``, and dead selections are **not** written to
    ``selection_cache`` (a recovered shard must not serve stale emptiness).
    ``on_exchange(hop, groups_by_shard, lost_keys)`` observes each
    exchange for metrics/spans.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    types = index.types
    if selection_cache is None:
        selection_cache = {}
    n_requests = len(targets)
    selected_lists: list[list[int]] = [[int(t)] for t in targets]
    seen_sets: list[set[int]] = [{int(t)} for t in targets]
    frontiers: list[list[int]] = [[int(t)] for t in targets]
    dead_keys: set[tuple[int, BehaviorType]] = set()
    dead_shards: set[int] = set()
    partial = [False] * n_requests
    expansions = 0
    touched: set[tuple[int, BehaviorType]] = set()

    for hop in range(hops):
        pending: list[tuple[int, BehaviorType]] = []
        pending_set: set[tuple[int, BehaviorType]] = set()
        for frontier in frontiers:
            for node in frontier:
                for btype in types:
                    key = (node, btype)
                    if (
                        key in selection_cache
                        or key in pending_set
                        or key in dead_keys
                    ):
                        continue
                    pending_set.add(key)
                    pending.append(key)
        groups: dict[int, list[tuple[int, BehaviorType]]] = {}
        for key in pending:
            groups.setdefault(_shard_of_int(key[0], index.n_shards), []).append(key)
        lost = 0
        for shard_id in sorted(groups):
            keys = groups[shard_id]
            selections: list[list[int]] | None
            if resolve is not None:
                selections = resolve(shard_id, keys)
            else:
                selections = [
                    index.select_neighbors(node, btype, fanout)
                    for node, btype in keys
                ]
            if selections is None:
                dead_keys.update(keys)
                dead_shards.add(shard_id)
                lost += len(keys)
                continue
            for key, neighbors in zip(keys, selections):
                selection_cache[key] = neighbors
        if on_exchange is not None and pending:
            on_exchange(hop, groups, lost)

        for i in range(n_requests):
            frontier = frontiers[i]
            if not frontier:
                continue
            selected = selected_lists[i]
            seen = seen_sets[i]
            next_frontier: list[int] = []
            for node in frontier:
                for btype in types:
                    expansions += 1
                    key = (node, btype)
                    touched.add(key)
                    if key in dead_keys:
                        partial[i] = True
                        continue
                    for neighbor in selection_cache[key]:
                        if neighbor in seen:
                            continue
                        if allowed is not None and neighbor not in allowed:
                            continue
                        seen.add(neighbor)
                        selected.append(neighbor)
                        next_frontier.append(neighbor)
            frontiers[i] = next_frontier

    union_nodes: list[int] = []
    union_index: dict[int, int] = {}
    for nodes in selected_lists:
        for uid in nodes:
            if uid not in union_index:
                union_index[uid] = len(union_nodes)
                union_nodes.append(uid)
    ids = np.asarray(union_nodes, dtype=np.int64)
    positions = np.searchsorted(index.node_ids, ids)
    clipped = np.minimum(positions, max(index.num_nodes - 1, 0))
    if index.num_nodes:
        valid = index.node_ids[clipped] == ids
        positions = np.where(valid, clipped, -1).astype(np.int64)
    else:
        positions = np.full(ids.shape, -1, dtype=np.int64)
    live_shards = (
        None
        if not dead_shards
        else [s for s in range(index.n_shards) if s not in dead_shards]
    )
    typed_entries = index.induced_entries(positions, types, live_shards)
    if dead_shards:
        # Adjacency rows owned by dead shards were dropped too — flag every
        # request whose subgraph contains such a node.
        owner = np.full(len(union_nodes), -1, dtype=np.int64)
        inside = positions >= 0
        owner[inside] = index.owner_of_pos[positions[inside]]
        dead_row = np.isin(owner, list(dead_shards))
        for i, nodes in enumerate(selected_lists):
            if partial[i]:
                continue
            if any(dead_row[union_index[uid]] for uid in nodes):
                partial[i] = True

    subgraphs: list[ComputationSubgraph] = []
    request_of_union = np.full(len(union_nodes), -1, dtype=np.int64)
    for target, nodes in zip(targets, selected_lists):
        n = len(nodes)
        node_positions = np.asarray(
            [union_index[uid] for uid in nodes], dtype=np.int64
        )
        request_of_union[node_positions] = np.arange(n, dtype=np.int64)
        adjacency: dict[BehaviorType, sp.csr_matrix] = {}
        for btype in types:
            iu, iv, weights = typed_entries[btype]
            riu = request_of_union[iu]
            riv = request_of_union[iv]
            keep = (riu >= 0) & (riv >= 0)
            iu_kept, iv_kept, w_kept = riu[keep], riv[keep], weights[keep]
            adjacency[btype] = sp.csr_matrix(
                (
                    np.concatenate([w_kept, w_kept]),
                    (
                        np.concatenate([iu_kept, iv_kept]),
                        np.concatenate([iv_kept, iu_kept]),
                    ),
                ),
                shape=(n, n),
            )
        request_of_union[node_positions] = -1
        subgraphs.append(
            ComputationSubgraph(target=int(target), nodes=nodes, adjacency=adjacency)
        )

    stats = BatchSampleStats(
        requests=n_requests,
        sampled_nodes=sum(len(nodes) for nodes in selected_lists),
        unique_nodes=len(union_nodes),
        expansions=expansions,
        unique_expansions=len(touched),
        partial=tuple(i for i in range(n_requests) if partial[i]),
    )
    return subgraphs, stats


def publish_materialize_inputs(
    store: SharedSnapshotStore,
    name: str,
    sampled: SampledGraph,
    uids: np.ndarray,
    context_rows: np.ndarray,
    target_rows: np.ndarray,
    *,
    hops: int,
    chunk: int = 256,
    allowed_mask: np.ndarray | None = None,
):
    """Publish one full-graph sweep's worker inputs as a single segment.

    The segment bundles the :class:`SampledGraph` payload (``sg:``-prefixed
    arrays), the sorted target ``uids``, the per-graph-position raw context
    feature rows, and the per-target raw transaction feature rows — all a
    ``materialize`` worker command needs besides the model bundle.  Returns
    the publish handle; pass ``handle.segment`` to
    :meth:`ShardWorkerPool.materialize_attach`.
    """
    sg_arrays, sg_meta = sampled.to_payload()
    arrays = {f"sg:{key}": value for key, value in sg_arrays.items()}
    arrays["uids"] = np.asarray(uids, dtype=np.int64)
    arrays["context_rows"] = np.asarray(context_rows, dtype=np.float64)
    arrays["target_rows"] = np.asarray(target_rows, dtype=np.float64)
    if allowed_mask is not None:
        arrays["allowed_mask"] = allowed_mask.astype(np.uint8)
    meta = {"sampled": sg_meta, "hops": int(hops), "chunk": int(chunk)}
    return store.publish(name, arrays, meta, version=sampled.version)


def fullgraph_executor(pool: "ShardWorkerPool"):
    """Executor over a worker pool for ``materialize_fullgraph``.

    Returns a callable mapping the sweep's ``(lo, hi)`` bounds to
    :class:`SliceResult`s: bounds are assigned round-robin over the live
    workers, all commands are pipelined before any result is collected
    (workers score their slices concurrently), and a dead worker's slots
    come back ``None`` — ``materialize_fullgraph`` recomputes those slices
    in-process, so worker loss degrades throughput, never correctness.
    The pool must have model and materialize inputs attached
    (:meth:`ShardWorkerPool.materialize_attach`).
    """

    def executor(
        bounds: Sequence[tuple[int, int]],
    ) -> list[SliceResult | None]:
        results: list[SliceResult | None] = [None] * len(bounds)
        workers = [w for w in range(pool.n_workers) if pool.alive(w)]
        if not workers:
            return results
        assigned: dict[int, list[int]] = {}
        for i in range(len(bounds)):
            assigned.setdefault(workers[i % len(workers)], []).append(i)
        for worker_id, slots in assigned.items():
            for i in slots:
                if not pool.start(worker_id, "materialize", tuple(bounds[i])):
                    break
        for worker_id, slots in assigned.items():
            for i in slots:
                value = pool.finish(worker_id)
                if value is None:
                    break
                results[i] = SliceResult.from_arrays(value)
        return results

    return executor


class ShardRouter:
    """Publishes the merged shard index and serves batch samples from it.

    One router fronts one :class:`ShardedBehaviorNetwork`: it re-publishes
    the read index through a :class:`SharedSnapshotStore` whenever the
    facade version moves (retiring the previous segments), gates every
    batch through the per-shard fault components ``{prefix}{i}``, and
    degrades to the surviving shards' partial frontier when a shard is
    down.  ``metrics`` may be attached after construction (the Turbo
    orchestrator wires its registry in at deploy time).
    """

    #: :class:`~repro.system.service.Sampler` tier name.
    tier = "sharded"

    def __init__(
        self,
        sharded: ShardedBehaviorNetwork,
        faults: "FaultInjector | None" = None,
        metrics: "MetricsRegistry | None" = None,
        breakers: dict[int, "CircuitBreaker"] | None = None,
        store: SharedSnapshotStore | None = None,
        use_shm: bool = True,
        component_prefix: str = "bn_shard",
    ) -> None:
        self.sharded = sharded
        self.faults = faults
        self.metrics = metrics
        self.breakers = dict(breakers or {})
        self.store = store if store is not None else SharedSnapshotStore(use_shm=use_shm)
        self.component_prefix = component_prefix
        self._published_version: int | None = None
        self._segments: list[str] = []

    @property
    def components(self) -> list[str]:
        """Fault-injector addresses of the shards (``bn_shard0``, ...)."""
        return [
            f"{self.component_prefix}{s}" for s in range(self.sharded.n_shards)
        ]

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def ensure_published(self) -> ShardIndex:
        """Build/publish the index for the current version; retire the old.

        Zero-copy readers (worker pools) attach the returned
        :attr:`segments`; publication is observed by
        ``turbo.shard.publish.*`` and the per-shard ``turbo.shard.owned_*``
        gauges.
        """
        index = self.sharded.index()
        if self._published_version == index.version:
            return index
        started = perf_counter()
        arrays, meta = index.to_payload()
        global_arrays = {
            key: value for key, value in arrays.items() if not key.startswith("blk")
        }
        handles = [
            self.store.publish("global", global_arrays, meta, version=index.version)
        ]
        for s in range(index.n_shards):
            prefix = f"blk{s}:"
            block_arrays = {
                key: value for key, value in arrays.items() if key.startswith(prefix)
            }
            handles.append(
                self.store.publish(
                    f"shard{s}",
                    block_arrays,
                    {"shard": s, "version": index.version},
                    version=index.version,
                )
            )
        previous = self._segments
        self._segments = [handle.segment for handle in handles]
        self._published_version = index.version
        for segment in previous:
            self.store.retire(segment)
        self._inc("turbo.shard.publish.count")
        self._observe("turbo.shard.publish.seconds", perf_counter() - started)
        if self.metrics is not None:
            self.metrics.gauge("turbo.shard.index.pairs").set(index.num_pairs)
            self.metrics.gauge("turbo.shard.index.nodes").set(index.num_nodes)
            for s, block in enumerate(index.shards):
                self.metrics.gauge(f"turbo.shard.owned_nodes.shard{s}").set(
                    len(block.own_positions)
                )
                self.metrics.gauge(f"turbo.shard.owned_half_edges.shard{s}").set(
                    len(block.nbr_pos)
                )
        return index

    @property
    def segments(self) -> list[str]:
        """Currently-published segment names (global first, then shards)."""
        return list(self._segments)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def probe_shards(self, now: float | None = None) -> tuple[set[int], float]:
        """Gate every shard once; returns ``(dead_shards, gate_seconds)``.

        Breaker first (an open breaker short-circuits without probing),
        then the fault injector; probe outcomes feed back into the breaker.
        With no faults and no breakers this draws nothing and charges 0.0 —
        the healthy path stays bit-identical to the unsharded server.
        """
        dead: set[int] = set()
        gate_seconds = 0.0
        if self.faults is None and not self.breakers:
            return dead, gate_seconds
        for s in range(self.sharded.n_shards):
            breaker = self.breakers.get(s)
            if breaker is not None and not breaker.allow():
                dead.add(s)
                continue
            if self.faults is not None:
                try:
                    gate_seconds += self.faults.before_call(
                        f"{self.component_prefix}{s}", now=now
                    )
                except StorageError:
                    dead.add(s)
                    if breaker is not None:
                        breaker.record_failure()
                    self._inc("turbo.shard.down")
                    continue
            if breaker is not None:
                breaker.record_success()
        return dead, gate_seconds

    def sample_batch(
        self,
        targets: Sequence[int],
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
        selection_cache: SelectionCache | None = None,
        now: float = 0.0,
        pool: "ShardWorkerPool | None" = None,
    ) -> tuple[list[ComputationSubgraph], BatchSampleStats, float]:
        """Frontier-exchange batch sampling; ``(subgraphs, stats, gate_s)``.

        Bit-exact against ``computation_subgraphs_batch`` on the equivalent
        unsharded network while every shard is healthy; with dead shards the
        surviving frontier is served and ``stats.partial`` lists the
        affected request indices.  When ``pool`` is given, selection for a
        shard's keys is delegated to a worker process (falling back
        in-process if the worker died — worker loss is not data loss, the
        segments outlive it).
        """
        index = self.ensure_published()
        dead, gate_seconds = self.probe_shards(now=now)
        if dead and selection_cache:
            # A warm cache must not mask a dead shard: selections owned by a
            # downed shard are evicted so resolution re-runs (and fails) for
            # them, surfacing partial degradation.  The mirror rule of "a
            # recovered shard must not serve stale emptiness" — a dead shard
            # must not serve stale fullness.
            doomed = [
                key
                for key in selection_cache
                if _shard_of_int(key[0], index.n_shards) in dead
            ]
            for key in doomed:
                del selection_cache[key]

        resolve = None
        if dead or pool is not None:

            def resolve(shard_id: int, keys: list) -> list[list[int]] | None:
                if shard_id in dead:
                    return None
                if pool is not None:
                    selections = pool.resolve(shard_id, keys, fanout)
                    if selections is not None:
                        return selections
                    self._inc("turbo.shard.worker_failover")
                return [
                    index.select_neighbors(node, btype, fanout)
                    for node, btype in keys
                ]

        span = current_span()

        def on_exchange(hop: int, groups: dict[int, list], lost: int) -> None:
            keys = sum(len(g) for g in groups.values())
            self._inc("turbo.shard.frontier.exchanges", len(groups))
            self._inc("turbo.shard.frontier.keys", keys)
            if lost:
                self._inc("turbo.shard.frontier.lost", lost)
            if span is not None:
                span.incr("turbo.shard.frontier.exchanges", len(groups))
                span.add_event(
                    "shard.frontier.exchange",
                    at=now,
                    hop=hop,
                    shards=len(groups),
                    keys=keys,
                    lost=lost,
                )

        subgraphs, stats = index_sample_batch(
            index,
            targets,
            hops=hops,
            fanout=fanout,
            allowed=allowed,
            selection_cache=selection_cache,
            resolve=resolve,
            on_exchange=on_exchange,
        )
        if stats.partial:
            self._inc("turbo.shard.partial_requests", len(stats.partial))
            if span is not None:
                span.incr("turbo.shard.partial_requests", len(stats.partial))
        return subgraphs, stats, gate_seconds

    def close(self) -> None:
        """Retire every published segment (store teardown)."""
        for segment in self._segments:
            try:
                self.store.retire(segment)
            except KeyError:  # pragma: no cover - already retired
                pass
        self._segments = []
        self._published_version = None
        self.store.close()


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _worker_main(conn: Any, segments: list[str]) -> None:  # pragma: no cover
    """Worker process loop: attach segments, serve sample/predict commands.

    Covered by the pool round-trip tests, but excluded from coverage
    accounting because it runs in a forked child.
    """
    attached = [attach_segment(name) for name in segments]

    def rebuild() -> ShardIndex:
        arrays: dict[str, np.ndarray] = {}
        meta: dict[str, Any] = {}
        for seg in attached:
            arrays.update(seg.arrays)
            if "types" in seg.meta:
                meta = seg.meta
        return ShardIndex.from_payload(arrays, meta)

    index = rebuild()
    bundle: dict[str, Any] | None = None
    features_cache: dict[str, Any] = {}
    lambda_state: HAGState | None = None
    lambda_segment: Any = None
    mat: dict[str, Any] | None = None
    mat_segment: Any = None
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if command == "ping":
                conn.send(("ok", os.getpid()))
            elif command == "attach":
                for seg in attached:
                    seg.close()
                attached = [attach_segment(name) for name in payload]
                for seg in features_cache.values():
                    seg.close()
                features_cache.clear()
                index = rebuild()
                conn.send(("ok", index.version))
            elif command == "resolve":
                keys, fanout = payload
                conn.send(
                    (
                        "ok",
                        [
                            index.select_neighbors(node, BehaviorType(value), fanout)
                            for node, value in keys
                        ],
                    )
                )
            elif command == "sample":
                targets, hops, fanout, allowed = payload
                subgraphs, stats = index_sample_batch(
                    index, targets, hops=hops, fanout=fanout, allowed=allowed
                )
                conn.send(("ok", (subgraphs, stats)))
            elif command == "model":
                bundle = pickle.loads(payload)
                conn.send(("ok", None))
            elif command == "predict":
                targets, hops, fanout, features = payload
                if isinstance(features, str):
                    if features not in features_cache:
                        features_cache[features] = attach_segment(features)
                    features = features_cache[features].arrays["features"]
                subgraphs, stats = index_sample_batch(
                    index, targets, hops=hops, fanout=fanout
                )
                if bundle is None:
                    raise RuntimeError("no model loaded")
                scaled = [
                    bundle["scaler"].transform(
                        features[np.asarray(sub.nodes, dtype=np.int64)]
                    )
                    for sub in subgraphs
                ]
                probabilities = bundle["model"].predict_subgraphs(
                    subgraphs, scaled, edge_type_order=bundle["edge_type_order"]
                )
                conn.send(("ok", (list(probabilities), stats)))
            elif command == "lambda_attach":
                if lambda_segment is not None:
                    lambda_segment.close()
                lambda_segment = attach_segment(payload)
                lambda_state = HAGState.from_arrays(lambda_segment.arrays)
                conn.send(("ok", lambda_state.bn_version))
            elif command == "lambda_lookup":
                if lambda_state is None:
                    raise RuntimeError("no lambda state attached")
                scores: list[float | None] = []
                for uid, txn_id, at in payload:
                    hit = lambda_state.lookup(int(uid), int(txn_id), float(at))
                    scores.append(None if hit is None else float(hit[0]))
                conn.send(("ok", scores))
            elif command == "materialize_attach":
                # One published segment carries the whole sweep's inputs:
                # the SampledGraph payload (``sg:`` prefix), the sorted
                # target uids, per-position context feature rows, and
                # per-target transaction feature rows.
                if mat_segment is not None:
                    mat_segment.close()
                mat_segment = attach_segment(payload)
                arrays = mat_segment.arrays
                meta = mat_segment.meta
                sampled = SampledGraph.from_payload(
                    {
                        key[3:]: value
                        for key, value in arrays.items()
                        if key.startswith("sg:")
                    },
                    meta["sampled"],
                )
                mat = {
                    "sampled": sampled,
                    "uids": np.asarray(arrays["uids"], dtype=np.int64),
                    "context_rows": arrays["context_rows"],
                    "target_rows": arrays["target_rows"],
                    "allowed_mask": (
                        np.asarray(arrays["allowed_mask"], dtype=bool)
                        if "allowed_mask" in arrays
                        else None
                    ),
                    "hops": int(meta["hops"]),
                    "chunk": int(meta["chunk"]),
                }
                conn.send(("ok", sampled.version))
            elif command == "materialize":
                if mat is None:
                    raise RuntimeError("no materialize inputs attached")
                if bundle is None:
                    raise RuntimeError("no model loaded")
                lo, hi = payload
                sampled = mat["sampled"]
                context_rows = mat["context_rows"]
                target_rows = mat["target_rows"]

                def feature_fn(k: int, nodes: Any) -> np.ndarray:
                    plist = sampled.positions_of(
                        np.asarray(nodes, dtype=np.int64)
                    )
                    rows = context_rows[np.maximum(plist, 0)]
                    rows[0] = target_rows[k]
                    return rows

                result = score_slice(
                    bundle["model"],
                    sampled,
                    mat["uids"],
                    np.arange(lo, hi, dtype=np.int64),
                    feature_fn,
                    hops=mat["hops"],
                    edge_type_order=bundle["edge_type_order"],
                    allowed_mask=mat["allowed_mask"],
                    transform=bundle["scaler"].transform,
                    chunk=mat["chunk"],
                )
                conn.send(("ok", result.to_arrays()))
            elif command == "crash":
                os._exit(13)
            elif command == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            try:
                conn.send(("error", repr(exc)))
            except (BrokenPipeError, OSError):
                break
    # Drop index/feature/lambda views before closing the mappings, else
    # close() hits BufferError and GC replays it noisily at interpreter exit.
    index = None
    lambda_state = None
    mat = None
    closing = list(attached) + list(features_cache.values())
    if lambda_segment is not None:
        closing.append(lambda_segment)
    if mat_segment is not None:
        closing.append(mat_segment)
    for seg in closing:
        seg.close()


class ShardWorkerPool:
    """A fleet of forked worker processes serving from shared segments.

    Worker ``i`` is the serving replica for shard ``i % n_shards``; every
    worker maps the *whole* published index read-only (it is one shared
    segment set — per-shard memory cost is the mapping, not a copy), so any
    worker can also serve whole sub-batches (``sample``/``predict``), which
    is how the benchmark partitions request load across shards.  A dead
    worker is detected on the next call and excluded; the caller falls back
    in-process — the shared segments are owned by the publisher and survive
    any worker crash.

    The pool satisfies the :class:`~repro.system.service.Service` protocol
    (``name``/``ping``/``stats``/``handle``) and is autoscaling-aware:
    :meth:`scale_to` forks additional workers against the stored segment
    set (re-sending the model payload) or retires workers from the tail,
    so the :class:`~repro.system.queue.Autoscaler` can drive a forked pool
    exactly like the in-process simulated one.
    """

    def __init__(
        self,
        segments: list[str],
        n_workers: int,
        model_payload: bytes | None = None,
        timeout: float = 60.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.timeout = timeout
        self._segments = list(segments)
        self._model_payload = model_payload
        self._workers: list[dict[str, Any]] = []
        self._scale_ups = 0
        self._scale_downs = 0
        for _ in range(n_workers):
            self._spawn_worker()

    def _spawn_worker(self) -> int:
        """Fork one worker against the stored segments; returns its id."""
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main, args=(child_conn, list(self._segments)), daemon=True
        )
        process.start()
        child_conn.close()
        self._workers.append({"process": process, "conn": parent_conn, "alive": True})
        worker_id = len(self._workers) - 1
        if self._model_payload is not None:
            self.call(worker_id, "model", self._model_payload)
        return worker_id

    def _retire_worker(self) -> None:
        """Stop and join the last worker in the pool."""
        worker = self._workers.pop()
        if worker["alive"]:
            try:
                worker["conn"].send(("stop", None))
                worker["conn"].poll(self.timeout)
            except (BrokenPipeError, OSError):
                pass
        worker["conn"].close()
        worker["process"].join(timeout=5.0)
        if worker["process"].is_alive():  # pragma: no cover - defensive
            worker["process"].terminate()
        worker["alive"] = False

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------------
    # Service protocol + autoscaling surface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name (``Service`` protocol)."""
        return "shard_worker_pool"

    @property
    def size(self) -> int:
        """Workers currently able to serve (the autoscaler's pool size)."""
        return self.alive_count()

    def ping(self) -> float:
        """Liveness probe; raises when no worker process can serve."""
        from .storage import StorageError

        for worker_id in range(self.n_workers):
            if self.call(worker_id, "ping") is not None:
                return 0.0
        raise StorageError("no live shard workers in the pool")

    def stats(self) -> dict[str, float]:
        """Flat dict of pool counters (dashboard snapshot)."""
        return {
            "workers": float(self.n_workers),
            "alive": float(self.alive_count()),
            "scale_ups": float(self._scale_ups),
            "scale_downs": float(self._scale_downs),
        }

    def handle(self, request: Any, span: Any = None) -> tuple[Any, float]:
        """Serve one ``(worker_id, command, payload)`` round-trip.

        Returns ``(value, 0.0)`` — worker round-trips are real wall time,
        not charged simulated seconds, so nothing is added to a breakdown.
        """
        worker_id, command, payload = request
        return self.call(worker_id, command, payload), 0.0

    def scale_to(self, n: int, now: float = 0.0) -> int:
        """Grow/shrink the pool to ``n`` live workers; returns the new size.

        Growth forks fresh processes against the stored segment set (and
        replays the model payload); shrinking retires workers from the
        tail, which preserves the ``shard_id % n_workers`` routing of the
        survivors.  ``now`` is accepted for interface parity with the
        simulated pool (forked workers are usable as soon as the fork
        returns).
        """
        if n < 1:
            raise ValueError("cannot scale below one worker")
        while self.alive_count() < n:
            self._spawn_worker()
            self._scale_ups += 1
        while self.n_workers > n and self.alive_count() > n:
            self._retire_worker()
            self._scale_downs += 1
        return self.alive_count()

    def alive(self, worker_id: int) -> bool:
        """Whether ``worker_id``'s process is still serving."""
        return bool(self._workers[worker_id]["alive"])

    def alive_count(self) -> int:
        """Number of workers still serving."""
        return sum(1 for worker in self._workers if worker["alive"])

    def call(self, worker_id: int, command: str, payload: Any = None) -> Any:
        """Round-trip one command; returns ``None`` when the worker is dead.

        Death (pipe EOF, crash, timeout) is recorded so later calls skip
        the worker; a worker-side exception is re-raised here.
        """
        worker = self._workers[worker_id]
        if not worker["alive"]:
            return None
        conn = worker["conn"]
        try:
            conn.send((command, payload))
            if not conn.poll(self.timeout):
                raise EOFError("worker timed out")
            status, value = conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            worker["alive"] = False
            worker["process"].join(timeout=1.0)
            return None
        if status == "error":
            raise RuntimeError(f"shard worker {worker_id} failed: {value}")
        return value

    def start(self, worker_id: int, command: str, payload: Any = None) -> bool:
        """Send one command without waiting — pair with :meth:`finish`.

        Splitting :meth:`call` lets a driver pipeline work across workers
        (send to all, then collect), so slices score concurrently.  Returns
        ``False`` when the worker is dead or the pipe broke on send.
        """
        worker = self._workers[worker_id]
        if not worker["alive"]:
            return False
        try:
            worker["conn"].send((command, payload))
        except (BrokenPipeError, ConnectionResetError, OSError):
            worker["alive"] = False
            worker["process"].join(timeout=1.0)
            return False
        return True

    def finish(self, worker_id: int) -> Any:
        """Collect one pending reply from :meth:`start` (None when dead)."""
        worker = self._workers[worker_id]
        if not worker["alive"]:
            return None
        conn = worker["conn"]
        try:
            if not conn.poll(self.timeout):
                raise EOFError("worker timed out")
            status, value = conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            worker["alive"] = False
            worker["process"].join(timeout=1.0)
            return None
        if status == "error":
            raise RuntimeError(f"shard worker {worker_id} failed: {value}")
        return value

    def materialize_attach(self, worker_id: int, segment: str) -> int | None:
        """Attach one published full-graph sweep input segment zero-copy.

        The segment comes from :func:`publish_materialize_inputs`.  Returns
        the attached :class:`SampledGraph`'s BN version, or ``None`` when
        the worker is dead.
        """
        return self.call(worker_id, "materialize_attach", str(segment))

    def materialize_slice(self, worker_id: int, lo: int, hi: int) -> SliceResult | None:
        """Score one ``[lo, hi)`` slice of the attached sweep's targets."""
        value = self.call(worker_id, "materialize", (int(lo), int(hi)))
        if value is None:
            return None
        return SliceResult.from_arrays(value)

    def resolve(
        self, shard_id: int, keys: list[tuple[int, BehaviorType]], fanout: int | None
    ) -> list[list[int]] | None:
        """Rank one shard's selection keys on its worker (None when dead)."""
        worker_id = shard_id % self.n_workers
        wire_keys = [(int(node), btype.value) for node, btype in keys]
        return self.call(worker_id, "resolve", (wire_keys, fanout))

    def sample(
        self,
        worker_id: int,
        targets: Sequence[int],
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
    ) -> tuple[list[ComputationSubgraph], BatchSampleStats] | None:
        """Sample a sub-batch on one worker (None when the worker is dead)."""
        return self.call(
            worker_id, "sample", ([int(t) for t in targets], hops, fanout, allowed)
        )

    def predict(
        self,
        worker_id: int,
        targets: Sequence[int],
        features: np.ndarray | str,
        hops: int = 2,
        fanout: int | None = 25,
    ) -> tuple[list[float], BatchSampleStats] | None:
        """Sample + packed HAG inference for a sub-batch on one worker.

        ``features`` is a uid-indexed matrix, either inline or the name of
        a published feature segment the worker attaches zero-copy.
        """
        return self.call(
            worker_id, "predict", ([int(t) for t in targets], hops, fanout, features)
        )

    def lambda_attach(self, worker_id: int, segment: str) -> int | None:
        """Attach one published lambda (cached HAG state) segment zero-copy.

        Returns the attached state's BN version, or ``None`` when the
        worker is dead.
        """
        return self.call(worker_id, "lambda_attach", str(segment))

    def lambda_lookup(
        self, worker_id: int, triples: Sequence[tuple[int, int, float]]
    ) -> list[float | None] | None:
        """Serve cached scores for ``(uid, txn_id, now)`` triples.

        Each slot is the cached probability, or ``None`` when the triple
        misses the attached state (uncovered uid or a different
        transaction).  The whole call returns ``None`` when the worker is
        dead; staleness gating stays with the parent's
        :class:`~repro.system.lambda_layer.LambdaLayer`, which owns the
        delta index.
        """
        wire = [(int(u), int(t), float(at)) for u, t, at in triples]
        return self.call(worker_id, "lambda_lookup", wire)

    def reattach(self, segments: list[str]) -> int:
        """Point every live worker at a newly published segment set."""
        updated = 0
        for worker_id in range(self.n_workers):
            if self.call(worker_id, "attach", list(segments)) is not None:
                updated += 1
        return updated

    def crash(self, worker_id: int) -> None:
        """Test hook: hard-kill one worker (``os._exit`` in the child)."""
        worker = self._workers[worker_id]
        if not worker["alive"]:
            return
        try:
            worker["conn"].send(("crash", None))
        except (BrokenPipeError, OSError):
            pass
        worker["process"].join(timeout=5.0)
        worker["alive"] = False

    def close(self) -> None:
        """Stop every live worker and join the processes."""
        for worker_id, worker in enumerate(self._workers):
            if worker["alive"]:
                try:
                    self.call(worker_id, "stop")
                except RuntimeError:  # pragma: no cover - defensive
                    pass
            worker["conn"].close()
            worker["process"].join(timeout=5.0)
            if worker["process"].is_alive():  # pragma: no cover - defensive
                worker["process"].terminate()
            worker["alive"] = False

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
