"""Deployment configuration for the online Turbo system.

Collapses the scattered ``deploy_turbo(...)`` keyword arguments into one
validated :class:`TurboConfig` dataclass (PR 3's API redesign).  The
defaults are the paper's deployed settings: decision threshold 0.85, a
15 s per-request latency budget, bounded retries with a circuit breaker,
and the scorecard/block-list fallback ladder armed.

``deploy_turbo(dataset, config=TurboConfig(...))`` is the canonical call;
the legacy keyword style (``deploy_turbo(dataset, threshold=..., ...)``)
still works — the keywords are collected into a config for one release
of backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..network.windows import FAST_WINDOWS
from .faults import CircuitBreaker, FaultInjector, RetryPolicy
from .latency import LatencyModel

__all__ = ["TurboConfig"]


@dataclass(slots=True)
class TurboConfig:
    """Validated knobs of one Turbo deployment (paper defaults).

    Training: ``hidden``, ``train_epochs``, ``seed``.  Serving:
    ``threshold`` (0.85 in the deployed system), ``hops``/``fanout``
    (computation-subgraph sampling), ``request_budget`` (seconds; ``None``
    disables).  Infrastructure: ``windows`` (BN window hierarchy),
    ``use_cache``, ``replicated`` (primary/replica database),
    ``with_fallbacks``, ``shards`` (hash-partition the BN across this many
    shards; 1 keeps the single-network server).  Lambda tier:
    ``lambda_tier`` arms the two-tier batch/speed serving path
    (:mod:`repro.system.lambda_layer`), ``lambda_refresh_period``
    (simulated seconds between automatic batch passes; ``None`` = manual
    refresh only), ``lambda_staleness_budget`` (maximum delta edge
    touches a served cached score may carry; 0 keeps cached serving
    bit-exact), ``lambda_full_graph`` (materialize through the global
    sampled-adjacency sweep instead of per-user union replay; ``None``
    resolves to on) and ``lambda_incremental`` (refreshes recompute only
    the delta's affected cone when a valid prior state exists; ``None``
    resolves to on).  Resilience: ``retry_policy``, ``breaker`` and
    ``faults`` (``None`` creates deployment-local defaults), ``latency``
    (the latency model; ``None`` creates one from ``seed``).  Tracing:
    ``trace_max`` bounds retained traces (``None`` keeps all).
    """

    windows: Sequence[float] = tuple(FAST_WINDOWS)
    use_cache: bool = True
    threshold: float = 0.85
    hidden: Sequence[int] = (64, 32)
    train_epochs: int = 60
    seed: int = 0
    hops: int = 2
    fanout: int | None = 10
    replicated: bool = False
    shards: int = 1
    lambda_tier: bool = False
    lambda_refresh_period: float | None = None
    lambda_staleness_budget: int = 0
    lambda_full_graph: bool | None = None
    lambda_incremental: bool | None = None
    request_budget: float | None = 15.0
    with_fallbacks: bool = True
    retry_policy: RetryPolicy | None = None
    breaker: CircuitBreaker | None = None
    faults: FaultInjector | None = None
    latency: LatencyModel | None = None
    trace_max: int | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` on an inconsistent configuration."""
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if self.request_budget is not None and self.request_budget <= 0:
            raise ValueError("request_budget must be positive (or None)")
        if self.train_epochs < 1:
            raise ValueError("train_epochs must be >= 1")
        if self.hops < 0:
            raise ValueError("hops must be non-negative")
        if self.fanout is not None and self.fanout < 0:
            raise ValueError("fanout must be non-negative (or None)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.lambda_refresh_period is not None and self.lambda_refresh_period <= 0:
            raise ValueError("lambda_refresh_period must be positive (or None)")
        if self.lambda_staleness_budget < 0:
            raise ValueError("lambda_staleness_budget must be non-negative")
        if not self.lambda_tier and (
            self.lambda_refresh_period is not None
            or self.lambda_staleness_budget
            or self.lambda_full_graph is not None
            or self.lambda_incremental is not None
        ):
            raise ValueError("lambda_* knobs require lambda_tier=True")
        if not self.windows:
            raise ValueError("windows must be non-empty")
        if not self.hidden:
            raise ValueError("hidden must name at least one layer width")
        if self.trace_max is not None and self.trace_max < 1:
            raise ValueError("trace_max must be positive (or None)")
