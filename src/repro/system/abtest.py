"""Online A/B test replay (Section VI-E).

Protocol of the paper's Jul-2019 experiment: applications first pass the
original rule-based risk management system (the scorecard); Turbo then
scores the survivors at threshold 0.85.  The *baseline* group ships with the
scorecard decision alone; the *test* group additionally drops applications
Turbo flags.  After the lease plays out, the fraud ratio among accepted
applications is compared; Turbo's online precision/recall are measured on
the test group's scorecard survivors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..baselines.scorecard import Scorecard
from ..datagen.entities import Dataset, Transaction
from .turbo import Turbo

__all__ = ["ABTestResult", "run_ab_test"]


@dataclass(slots=True)
class ABTestResult:
    """Aggregates of the A/B replay."""

    n_baseline: int
    n_test: int
    baseline_accepted: int
    test_accepted: int
    baseline_fraud_ratio: float
    test_fraud_ratio: float
    online_precision: float
    online_recall: float

    @property
    def fraud_ratio_reduction(self) -> float:
        """Relative reduction of the accepted-set fraud ratio (paper: 23.19 %)."""
        if self.baseline_fraud_ratio <= 0:
            return 0.0
        return (
            (self.baseline_fraud_ratio - self.test_fraud_ratio)
            / self.baseline_fraud_ratio
        )


def run_ab_test(
    turbo: Turbo,
    scorecard: Scorecard,
    dataset: Dataset,
    transactions: Sequence[Transaction],
    rng: np.random.Generator | None = None,
) -> ABTestResult:
    """Replay ``transactions`` through the two pipelines.

    Each application is randomly assigned to the baseline or test group; the
    scorecard gates both, and Turbo additionally gates the test group.
    """
    if not transactions:
        raise ValueError("no transactions to replay")
    rng = rng or np.random.default_rng(0)
    users = dataset.user_by_id()

    baseline_accepted: list[int] = []  # fraud labels of accepted applications
    test_accepted: list[int] = []
    n_baseline = n_test = 0
    tp = fp = fn = 0

    for txn in transactions:
        user = users[txn.uid]
        rejected_by_rules = scorecard.predict(user, txn)
        label = int(txn.is_fraud)
        if rng.random() < 0.5:
            n_baseline += 1
            if not rejected_by_rules:
                baseline_accepted.append(label)
        else:
            n_test += 1
            if rejected_by_rules:
                continue
            response = turbo.handle_request(txn, now=txn.audit_at)
            if response.blocked:
                if label:
                    tp += 1
                else:
                    fp += 1
            else:
                if label:
                    fn += 1
                test_accepted.append(label)

    baseline_ratio = float(np.mean(baseline_accepted)) if baseline_accepted else 0.0
    test_ratio = float(np.mean(test_accepted)) if test_accepted else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return ABTestResult(
        n_baseline=n_baseline,
        n_test=n_test,
        baseline_accepted=len(baseline_accepted),
        test_accepted=len(test_accepted),
        baseline_fraud_ratio=baseline_ratio,
        test_fraud_ratio=test_ratio,
        online_precision=precision,
        online_recall=recall,
    )
