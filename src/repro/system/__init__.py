"""The Turbo online system: servers, storage, latency simulation, A/B test."""

from .abtest import ABTestResult, run_ab_test
from .bn_server import BNServer
from .clock import SimulatedClock
from .config import TurboConfig
from .faults import (
    BudgetExceeded,
    CircuitBreaker,
    CrashWindow,
    FaultEvent,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    random_fault_plan,
)
from .bn_server import LocalSampler
from .feature_server import FeatureServer
from .lambda_layer import DeltaSampler, LambdaHit, LambdaLayer
from .latency import LatencyBreakdown, LatencyModel
from .loadgen import (
    DEFAULT_PRIORITY_CLASSES,
    Arrival,
    BurstWindow,
    OpenLoopLoadGenerator,
    PriorityClass,
    TrafficPattern,
    bursts_from_drift,
)
from .model_management import ModelManager, ModelVersion
from .monitoring import LatencyHistogram, SystemMonitor
from .prediction_server import PredictionServer
from .queue import (
    Autoscaler,
    QueueConfig,
    QueueFrontend,
    QueueRecord,
    RequestQueue,
    SimulatedWorkerPool,
)
from .service import PredictRequest, RequestContext, Sampler, Service
from .shard_router import (
    ShardRouter,
    ShardWorkerPool,
    fullgraph_executor,
    index_sample_batch,
    publish_materialize_inputs,
)
from .storage import InMemoryCache, LocalDatabase, ReplicatedStore, StorageError
from .turbo import Turbo, TurboResponse, deploy_turbo

__all__ = [
    "SimulatedClock",
    "TurboConfig",
    "PredictRequest",
    "RequestContext",
    "Sampler",
    "Service",
    "LatencyModel",
    "LatencyBreakdown",
    "LocalDatabase",
    "InMemoryCache",
    "ReplicatedStore",
    "StorageError",
    "FaultInjector",
    "InjectedFault",
    "FaultEvent",
    "CrashWindow",
    "RetryPolicy",
    "CircuitBreaker",
    "BudgetExceeded",
    "random_fault_plan",
    "BNServer",
    "LocalSampler",
    "LambdaLayer",
    "LambdaHit",
    "DeltaSampler",
    "ShardRouter",
    "ShardWorkerPool",
    "fullgraph_executor",
    "publish_materialize_inputs",
    "index_sample_batch",
    "FeatureServer",
    "PredictionServer",
    "TrafficPattern",
    "BurstWindow",
    "PriorityClass",
    "DEFAULT_PRIORITY_CLASSES",
    "Arrival",
    "OpenLoopLoadGenerator",
    "bursts_from_drift",
    "QueueConfig",
    "QueueRecord",
    "RequestQueue",
    "SimulatedWorkerPool",
    "Autoscaler",
    "QueueFrontend",
    "ModelManager",
    "ModelVersion",
    "SystemMonitor",
    "LatencyHistogram",
    "Turbo",
    "TurboResponse",
    "deploy_turbo",
    "ABTestResult",
    "run_ab_test",
]
