"""Operational telemetry for the online system.

Production risk systems live and die by their dashboards; this module
is the dashboard *view* over the observability subsystem
(:mod:`repro.obs.metrics`): request counts, per-module latency
distributions, block rate, degradation/SLO accounting and error counts.

Since PR 3 every number here is backed by a named metric in a
:class:`~repro.obs.metrics.MetricsRegistry` (``turbo.requests``,
``turbo.latency.sampling``, ...; see ``docs/OBSERVABILITY.md`` for the
full name list), so monitor counters and registry totals reconcile
exactly — a contract pinned by ``tests/test_system/test_tracing.py``.

Resilience accounting (``docs/RESILIENCE.md``): every served request is
attributed to a degradation level (``full`` = HAG graph path, else the
fallback that answered), latency SLOs can be armed per mode, and the
monitor tracks the derived error budget, availability (full-path
fraction), degraded-request rate, retries and storage failovers.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..obs.metrics import Histogram, MetricsRegistry
from .latency import LatencyBreakdown

__all__ = ["LatencyHistogram", "SystemMonitor"]


class LatencyHistogram(Histogram):
    """Latency view over :class:`~repro.obs.metrics.Histogram`.

    Samples are observed in seconds; the accessors report milliseconds
    (the unit of the Fig. 8a tables and the SLO targets).
    """

    @property
    def mean_ms(self) -> float:
        """Mean latency in milliseconds over all observations."""
        return 1000.0 * self.mean

    def percentile_ms(self, percentile: float) -> float:
        """Latency percentile in milliseconds over the retained samples."""
        return 1000.0 * self.percentile(percentile)

    def summary(self) -> dict[str, float]:
        """Count, mean and tail percentiles in milliseconds."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
            "p999_ms": self.percentile_ms(99.9),
        }


class SystemMonitor:
    """Aggregates request-level telemetry across the Turbo pipeline.

    A thin view: scalar counters are
    :class:`~repro.obs.metrics.Counter` instruments and the latency
    histograms are registry-owned :class:`LatencyHistogram` instances, so
    any dashboard number can be cross-checked against
    ``monitor.registry.snapshot()``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sampling = self.registry.histogram(
            "turbo.latency.sampling", factory=LatencyHistogram
        )
        self.features = self.registry.histogram(
            "turbo.latency.features", factory=LatencyHistogram
        )
        self.prediction = self.registry.histogram(
            "turbo.latency.prediction", factory=LatencyHistogram
        )
        self.total = self.registry.histogram(
            "turbo.latency.total", factory=LatencyHistogram
        )
        #: total latency of requests served degraded (fallback path only).
        self.degraded_total = self.registry.histogram(
            "turbo.latency.degraded_total", factory=LatencyHistogram
        )
        self._requests = self.registry.counter("turbo.requests")
        self._blocked = self.registry.counter("turbo.blocked")
        self._errors = self.registry.counter("turbo.errors")
        self._degraded = self.registry.counter("turbo.degraded")
        self._retries = self.registry.counter("turbo.retries")
        self._failovers = self.registry.counter("turbo.failovers")
        self._slo_violations = self.registry.counter("turbo.slo_violations")
        self.errors: Counter = Counter()
        self.subgraph_sizes: list[int] = []
        #: degradation level -> served-request count ("full" is the HAG path).
        self.degraded: Counter = Counter()
        #: latency SLO targets in milliseconds (None = SLO accounting disarmed).
        self.slo_target_ms: float | None = None
        self.degraded_slo_target_ms: float | None = None
        #: allowed SLO-violation fraction backing :meth:`error_budget_remaining`.
        self.error_budget: float = 0.01

    # ------------------------------------------------------------------
    # Registry-backed counters (dashboard accessors)
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        """Requests served (``turbo.requests``)."""
        return self._requests.as_int()

    @property
    def blocked(self) -> int:
        """Requests blocked at the decision threshold (``turbo.blocked``)."""
        return self._blocked.as_int()

    @property
    def retries(self) -> int:
        """Storage/server retries spent across all requests (``turbo.retries``)."""
        return self._retries.as_int()

    @property
    def failovers(self) -> int:
        """Reads served off a backup replica (``turbo.failovers``)."""
        return self._failovers.as_int()

    @property
    def slo_violations(self) -> int:
        """Requests past their per-mode SLO target (``turbo.slo_violations``)."""
        return self._slo_violations.as_int()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def set_slo(
        self,
        target_ms: float,
        degraded_target_ms: float | None = None,
        error_budget: float = 0.01,
    ) -> None:
        """Arm latency-SLO accounting.

        ``target_ms`` applies to full-path requests, ``degraded_target_ms``
        (default: same) to degraded ones; ``error_budget`` is the tolerated
        violation fraction behind :meth:`error_budget_remaining`.
        """
        if target_ms <= 0:
            raise ValueError("SLO target must be positive")
        if not 0.0 < error_budget <= 1.0:
            raise ValueError("error budget must be in (0, 1]")
        self.slo_target_ms = target_ms
        self.degraded_slo_target_ms = (
            degraded_target_ms if degraded_target_ms is not None else target_ms
        )
        self.error_budget = error_budget

    def record_request(
        self,
        breakdown: LatencyBreakdown,
        blocked: bool,
        subgraph_size: int,
        degradation: str = "full",
        retries: int = 0,
    ) -> None:
        """Record one served request's latency, outcome and serving mode."""
        self._requests.inc()
        if blocked:
            self._blocked.inc()
        self.sampling.observe(breakdown.sampling)
        self.features.observe(breakdown.features)
        self.prediction.observe(breakdown.prediction)
        self.total.observe(breakdown.total)
        self.subgraph_sizes.append(subgraph_size)
        self.degraded[degradation] += 1
        self._retries.inc(retries)
        if degradation != "full":
            self._degraded.inc()
            self.degraded_total.observe(breakdown.total)
        if self.slo_target_ms is not None:
            target = (
                self.slo_target_ms
                if degradation == "full"
                else self.degraded_slo_target_ms
            )
            if 1000.0 * breakdown.total > target:
                self._slo_violations.inc()

    def record_error(self, kind: str) -> None:
        """Count one error of the given kind."""
        self.errors[kind] += 1
        self._errors.inc()

    def record_failover(self, count: int = 1) -> None:
        """Count reads served off a backup replica."""
        self._failovers.inc(count)

    @property
    def block_rate(self) -> float:
        """Fraction of served requests that were blocked."""
        return self.blocked / self.requests if self.requests else 0.0

    @property
    def degraded_requests(self) -> int:
        """Requests that could not be served by the full graph path."""
        return self.requests - self.degraded.get("full", 0)

    @property
    def degraded_rate(self) -> float:
        """Fraction of requests served by a fallback instead of HAG."""
        return self.degraded_requests / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests served at full fidelity (the HAG path)."""
        return 1.0 - self.degraded_rate if self.requests else 1.0

    def error_budget_remaining(self) -> float:
        """Fraction of the SLO error budget still unspent.

        1.0 = untouched, 0.0 = exactly exhausted, negative = burned past the
        budget.  With SLO accounting disarmed (or no traffic) the budget is
        untouched by definition.
        """
        if self.slo_target_ms is None or not self.requests:
            return 1.0
        allowed = self.error_budget * self.requests
        return (allowed - self.slo_violations) / allowed

    def slo_summary(self) -> dict[str, float]:
        """The resilience counters as one flat dict (benchmarks serialize it)."""
        return {
            "requests": float(self.requests),
            "availability": self.availability,
            "degraded_rate": self.degraded_rate,
            "degraded_requests": float(self.degraded_requests),
            "retries": float(self.retries),
            "failovers": float(self.failovers),
            "errors": float(sum(self.errors.values())),
            "slo_violations": float(self.slo_violations),
            "error_budget_remaining": self.error_budget_remaining(),
        }

    def report(self) -> str:
        """Dashboard-style plain-text summary."""
        lines = [
            f"requests={self.requests}  blocked={self.blocked}"
            f" ({100 * self.block_rate:.1f}%)  errors={sum(self.errors.values())}",
        ]
        for name, histogram in (
            ("sampling", self.sampling),
            ("features", self.features),
            ("prediction", self.prediction),
            ("total", self.total),
        ):
            s = histogram.summary()
            lines.append(
                f"  {name:<10} mean={s['mean_ms']:7.1f}ms  p50={s['p50_ms']:7.1f}ms"
                f"  p99={s['p99_ms']:7.1f}ms  p999={s['p999_ms']:7.1f}ms"
            )
        if self.subgraph_sizes:
            lines.append(
                f"  subgraph   mean={np.mean(self.subgraph_sizes):6.1f} nodes"
                f"  max={max(self.subgraph_sizes)}"
            )
        lines.append(
            f"  availability={100 * self.availability:.2f}%"
            f"  degraded={self.degraded_requests}"
            f" ({100 * self.degraded_rate:.1f}%)"
            f"  retries={self.retries}  failovers={self.failovers}"
        )
        if self.slo_target_ms is not None:
            lines.append(
                f"  slo target={self.slo_target_ms:.0f}ms"
                f" (degraded {self.degraded_slo_target_ms:.0f}ms)"
                f"  violations={self.slo_violations}"
                f"  error_budget_remaining={100 * self.error_budget_remaining():.1f}%"
            )
        for level, count in sorted(self.degraded.items()):
            if level != "full":
                lines.append(f"  degraded[{level}] = {count}")
        if self.errors:
            for kind, count in self.errors.most_common():
                lines.append(f"  error[{kind}] = {count}")
        return "\n".join(lines)
