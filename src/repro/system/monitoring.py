"""Operational telemetry for the online system.

Production risk systems live and die by their dashboards; this module
collects the counters and latency histograms behind Fig. 8-style monitoring:
request counts, per-module latency distributions, block rate, cache hit
rates and error counts, with percentile queries and a plain-text report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from .latency import LatencyBreakdown

__all__ = ["LatencyHistogram", "SystemMonitor"]


class LatencyHistogram:
    """Reservoir of latency samples with percentile queries (seconds in/ms out)."""

    def __init__(self, max_samples: int = 100_000) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (seconds)."""
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        self.total += seconds
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.total / self.count if self.count else 0.0

    def percentile_ms(self, percentile: float) -> float:
        """Latency percentile in milliseconds over the retained samples."""
        if not self._samples:
            return 0.0
        return float(1000.0 * np.percentile(self._samples, percentile))

    def summary(self) -> dict[str, float]:
        """Count, mean and tail percentiles in milliseconds."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
            "p999_ms": self.percentile_ms(99.9),
        }


@dataclass
class SystemMonitor:
    """Aggregates request-level telemetry across the Turbo pipeline."""

    sampling: LatencyHistogram = field(default_factory=LatencyHistogram)
    features: LatencyHistogram = field(default_factory=LatencyHistogram)
    prediction: LatencyHistogram = field(default_factory=LatencyHistogram)
    total: LatencyHistogram = field(default_factory=LatencyHistogram)
    requests: int = 0
    blocked: int = 0
    errors: Counter = field(default_factory=Counter)
    subgraph_sizes: list[int] = field(default_factory=list)

    def record_request(
        self, breakdown: LatencyBreakdown, blocked: bool, subgraph_size: int
    ) -> None:
        """Record one served request's latency, outcome and subgraph size."""
        self.requests += 1
        if blocked:
            self.blocked += 1
        self.sampling.observe(breakdown.sampling)
        self.features.observe(breakdown.features)
        self.prediction.observe(breakdown.prediction)
        self.total.observe(breakdown.total)
        self.subgraph_sizes.append(subgraph_size)

    def record_error(self, kind: str) -> None:
        """Count one error of the given kind."""
        self.errors[kind] += 1

    @property
    def block_rate(self) -> float:
        return self.blocked / self.requests if self.requests else 0.0

    def report(self) -> str:
        """Dashboard-style plain-text summary."""
        lines = [
            f"requests={self.requests}  blocked={self.blocked}"
            f" ({100 * self.block_rate:.1f}%)  errors={sum(self.errors.values())}",
        ]
        for name, histogram in (
            ("sampling", self.sampling),
            ("features", self.features),
            ("prediction", self.prediction),
            ("total", self.total),
        ):
            s = histogram.summary()
            lines.append(
                f"  {name:<10} mean={s['mean_ms']:7.1f}ms  p50={s['p50_ms']:7.1f}ms"
                f"  p99={s['p99_ms']:7.1f}ms  p999={s['p999_ms']:7.1f}ms"
            )
        if self.subgraph_sizes:
            lines.append(
                f"  subgraph   mean={np.mean(self.subgraph_sizes):6.1f} nodes"
                f"  max={max(self.subgraph_sizes)}"
            )
        if self.errors:
            for kind, count in self.errors.most_common():
                lines.append(f"  error[{kind}] = {count}")
        return "\n".join(lines)
