"""The Turbo orchestrator: the online anti-fraud pipeline of Fig. 2.

A prediction request for application ``tau`` of user ``u``:

1. the prediction server asks the BN server to sample ``u``'s computation
   subgraph;
2. the feature management module assembles features for every subgraph node;
3. HAG scores the target; the client gets the probability plus the decision
   at the configured threshold (0.85 in the deployed system).

Each step's latency is charged against the latency model and reported in the
response, which is what the Fig. 8a / Section V benchmarks aggregate.

Observability (PR 3, ``docs/OBSERVABILITY.md``): every request produces one
closed trace — a span tree ``request -> bn_sample / feature_fetch /
inference`` (plus ``fallback`` when degraded) whose durations are the
charged seconds of each :class:`~repro.system.latency.LatencyBreakdown`
slot, bit-for-bit.  The :class:`~repro.system.monitoring.SystemMonitor` is
a view over a :class:`~repro.obs.metrics.MetricsRegistry` exposed as
:attr:`Turbo.metrics`.  The four servers share the
:class:`~repro.system.service.Service` protocol (:attr:`Turbo.services`).

Resilience (Section V's production claims, ``docs/RESILIENCE.md``): the
graph path runs under a bounded :class:`~repro.system.faults.RetryPolicy`
and a :class:`~repro.system.faults.CircuitBreaker`, with an optional
per-request latency budget.  When the graph path is down, over budget, or
short-circuited, the request degrades to the pre-Turbo production models
(scorecard, then block-list, then reject) via
:class:`~repro.baselines.fallback.FallbackStack` — :meth:`Turbo.predict`
never raises on component failure, and every response is tagged with the
degradation level that served it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..baselines.blocklist import Blocklist
from ..baselines.fallback import FallbackStack
from ..baselines.scorecard import default_scorecard
from ..core.hag import HAG, prepare_aggregators
from ..core.trainer import TrainConfig, train_node_classifier
from ..datagen.entities import Dataset, Transaction
from ..eval.runner import ExperimentData, prepare_experiment
from ..features.pipeline import StandardScaler
from ..obs.metrics import MetricsRegistry
from ..obs.profiling import TrainProfiler
from ..obs.tracing import Span, Tracer, use_span
from .bn_server import BNServer
from .clock import SimulatedClock
from .config import TurboConfig
from .faults import BudgetExceeded, CircuitBreaker, FaultInjector, RetryPolicy
from .feature_server import FeatureServer
from .lambda_layer import DeltaSampler, LambdaLayer
from .latency import LatencyBreakdown, LatencyModel
from .model_management import ModelManager
from .monitoring import SystemMonitor
from .prediction_server import PredictionServer
from .service import PredictRequest, RequestContext, Service
from .storage import InMemoryCache, LocalDatabase, ReplicatedStore, StorageError

__all__ = ["TurboResponse", "Turbo", "deploy_turbo"]

#: (span name, breakdown slot) of the graph-path pipeline stages, in order.
_PIPELINE_STAGES = (
    ("bn_sample", "sampling"),
    ("feature_fetch", "features"),
    ("inference", "prediction"),
)

#: Legacy entry points that already warned this process (PR 3 deprecation
#: endgame: each shim warns once, not per call).
_LEGACY_WARNED: set[str] = set()


def _warn_legacy(key: str, message: str, stacklevel: int) -> None:
    """Emit one :class:`DeprecationWarning` per legacy entry point."""
    if key in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def _reset_legacy_warnings() -> None:
    """Re-arm the once-per-process legacy warnings (test helper)."""
    _LEGACY_WARNED.clear()


def _coerce_legacy_predict(args: tuple, kwargs: dict) -> PredictRequest:
    """The one legacy shim behind ``Turbo.predict``'s positional shapes.

    Handles both deprecated call shapes — ``predict(txn, now=...)`` and
    ``predict(uid, txn, now=...)`` — with a single once-per-process
    :class:`DeprecationWarning`.  ``PredictRequest`` / ``handle_request``
    are the documented entry points.
    """
    _warn_legacy(
        "predict",
        "positional Turbo.predict(...) shapes are deprecated; pass a "
        "PredictRequest (or call Turbo.handle_request)",
        stacklevel=5,
    )
    kwargs = dict(kwargs)
    uid = None
    if args and isinstance(args[0], (int, np.integer)):
        uid = int(args[0])
        args = args[1:]
    txn = args[0] if args else kwargs.pop("txn")
    now = args[1] if len(args) > 1 else kwargs.pop("now", None)
    if len(args) > 2 or kwargs:
        extra = sorted(kwargs) if kwargs else list(args[2:])
        raise TypeError(f"unexpected predict() arguments: {extra}")
    return PredictRequest(txn=txn, uid=uid, now=now)


@dataclass(slots=True)
class TurboResponse:
    """Result of one real-time detection request."""

    uid: int
    txn_id: int
    probability: float
    blocked: bool
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    subgraph_size: int = 0
    timestamp: float = 0.0
    #: which rung of the ladder served this request: "full" (HAG graph
    #: path), "partial" (HAG, but the subgraph was sampled with one or more
    #: BN shards down), "scorecard", "blocklist" or "reject".
    degradation: str = "full"
    #: why the graph path was abandoned ("" on the full path).
    degradation_reason: str = ""
    #: storage/server retries spent before the graph path succeeded.
    retries: int = 0
    #: closed root span of this request's trace (see repro.obs.tracing).
    span: Span | None = None
    #: which serving tier answered: "sampled" (fresh subgraph + HAG
    #: forward — including degraded attempts at it) or "lambda" (the speed
    #: layer's cached batch-pass score).
    tier: str = "sampled"
    #: delta edge touches the cached score carried (0 on the sampled tier).
    staleness: int = 0

    @property
    def degraded(self) -> bool:
        """Was this request served by a fallback instead of HAG?"""
        return self.degradation != "full"

    @property
    def trace_id(self) -> str:
        """Trace identifier of this request ("" when untraced)."""
        return self.span.trace_id if self.span is not None else ""


class Turbo:
    """Wires the BN server, feature module and prediction server together."""

    def __init__(
        self,
        bn_server: BNServer,
        feature_server: FeatureServer,
        prediction_server: PredictionServer,
        clock: SimulatedClock,
        threshold: float = 0.85,
        allowed_nodes: set[int] | None = None,
        hops: int = 2,
        fanout: int | None = 10,
        fallbacks: FallbackStack | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        request_budget: float | None = 15.0,
        faults: FaultInjector | None = None,
        seed: int = 0,
        model_manager: ModelManager | None = None,
        tracer: Tracer | None = None,
        lambda_layer: LambdaLayer | None = None,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if request_budget is not None and request_budget <= 0:
            raise ValueError("request_budget must be positive (or None)")
        self.bn_server = bn_server
        self.feature_server = feature_server
        self.prediction_server = prediction_server
        self.model_manager = model_manager
        self.clock = clock
        self.threshold = threshold
        self.allowed_nodes = allowed_nodes
        self.hops = hops
        self.fanout = fanout
        self.fallbacks = fallbacks
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.request_budget = request_budget
        self.faults = faults
        self._retry_rng = np.random.default_rng(seed)
        self.lambda_layer = lambda_layer
        self.responses: list[TurboResponse] = []
        self.monitor = SystemMonitor()
        self.tracer = tracer if tracer is not None else Tracer()
        # Let BN maintenance publish its bn.ingest.* series into the same
        # registry the monitor reads (unless the caller wired its own).
        if getattr(self.bn_server, "metrics", None) is None:
            self.bn_server.metrics = self.monitor.registry
        if self.lambda_layer is not None and self.lambda_layer.metrics is None:
            self.lambda_layer.metrics = self.monitor.registry

    @property
    def metrics(self) -> MetricsRegistry:
        """The deployment's metrics registry (backs :attr:`monitor`)."""
        return self.monitor.registry

    # ------------------------------------------------------------------
    # Service directory
    # ------------------------------------------------------------------
    @property
    def services(self) -> dict[str, Service]:
        """Every deployed :class:`~repro.system.service.Service`, by name."""
        servers: dict[str, Service] = {
            self.bn_server.name: self.bn_server,
            self.feature_server.name: self.feature_server,
            self.prediction_server.name: self.prediction_server,
        }
        if self.model_manager is not None:
            servers[self.model_manager.name] = self.model_manager
        return servers

    def ping_all(self) -> dict[str, bool]:
        """Probe every service; True = the service answered its ping."""
        health: dict[str, bool] = {}
        for name, service in self.services.items():
            try:
                service.ping()
            except Exception:
                health[name] = False
            else:
                health[name] = True
        return health

    def service_stats(self) -> dict[str, dict[str, float]]:
        """Every service's :meth:`~repro.system.service.Service.stats`."""
        return {name: service.stats() for name, service in self.services.items()}

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict(self, *args: Any, **kwargs: Any) -> TurboResponse:
        """Serve one detection request (Fig. 2's numbered flow).

        Canonical call: ``predict(PredictRequest(txn=txn, now=...))``.  The
        legacy positional shapes ``predict(txn, now=...)`` and
        ``predict(uid, txn, now=...)`` still work (identical responses) but
        emit a :class:`DeprecationWarning`; use :meth:`handle_request` for
        a warning-free transaction-first entry point.

        Never raises on component failure: the graph path runs under the
        retry policy, circuit breaker and latency budget, and falls back to
        the scorecard/blocklist ladder when it cannot answer.
        """
        return self._serve(self._coerce_request(args, kwargs))

    def handle_request(self, txn: Transaction, now: float | None = None) -> TurboResponse:
        """Transaction-first alias of :meth:`predict` (no deprecation noise)."""
        return self._serve(PredictRequest(txn=txn, now=now))

    def predict_batch(self, requests: Sequence[PredictRequest]) -> list[TurboResponse]:
        """Serve a micro-batch of requests against one pinned BN version.

        Results are bit-for-bit what sequential :meth:`predict` calls
        return — same probabilities, same decisions, same degradation tags
        (pinned by ``tests/test_system/test_batch_serving.py``) — but each
        stage runs once for the whole batch: the BN server coalesces the
        union sampling frontier, the feature module assembles all unique
        rows columnar, and HAG runs one packed forward.  Shared work is
        charged to the first request that touches it, which is where the
        batched path's latency win comes from.

        Tracing: the batch opens one ``batch`` root whose children are the
        three *coalesced* stage spans; every request still closes its own
        ``request`` root (parented under the batch unless the request
        carries an upstream trace) whose stage children reconcile with its
        :class:`~repro.system.latency.LatencyBreakdown` exactly as in
        scalar mode.

        Resilience: the circuit breaker is consulted per request, faults
        poison individual requests (one poisoned request degrades via the
        fallback ladder without failing the batch), and per-request latency
        budgets are enforced after every stage.  The batched path does not
        retry — a transient storage fault degrades the request instead of
        replaying it (``retries`` is always 0 in batched responses).

        The simulated clock advances once, by the slowest request's total
        (the batch's wall time), instead of by the per-request sum.
        """
        for request in requests:
            if not isinstance(request, PredictRequest):
                raise TypeError(
                    "predict_batch takes PredictRequest instances, got "
                    f"{type(request).__name__}"
                )
        if not requests:
            return []
        n = len(requests)
        nows = [self.clock.now() if r.now is None else r.now for r in requests]
        budgets = [
            self.request_budget if r.budget is None else r.budget for r in requests
        ]
        breakdowns = [LatencyBreakdown() for _ in range(n)]
        batch = self.tracer.start_trace("batch", at=min(nows), size=n)
        roots = [
            self.tracer.start_trace(
                "request",
                at=nows[i],
                parent=requests[i].trace or batch.context(),
                uid=requests[i].uid,
                txn_id=requests[i].txn.txn_id,
            )
            for i in range(n)
        ]
        reasons = [""] * n
        probabilities: list[float | None] = [None] * n
        sizes = [0] * n
        subgraphs: list[Any] = [None] * n
        features: list[np.ndarray | None] = [None] * n
        tiers = ["sampled"] * n
        stalenesses = [0] * n

        def fail(i: int, span: Span, charged: float, error: str, reason: str) -> None:
            """Close a failed stage span the way the scalar path does."""
            span.annotate("error", error)
            span.finish(charged)
            reasons[i] = reason
            self.breaker.record_failure()

        def stage_start(indices: list[int]) -> float:
            return min(nows[i] + breakdowns[i].total for i in indices)

        if self.lambda_layer is not None:
            self.lambda_layer.maybe_refresh(min(nows))
        alive: list[int] = []
        for i in range(n):
            if self.lambda_layer is not None:
                # Speed-layer pre-scan: cache hits are served before the
                # pipeline runs, so they never reach the sampling stage —
                # everything the sampler sees below is fallthrough work.
                hit = self.lambda_layer.lookup(
                    requests[i].uid, requests[i].txn.txn_id, nows[i]
                )
                if hit is not None:
                    span = roots[i].child("lambda_delta", at=nows[i])
                    charge = self.prediction_server.latency.charge_cache_get()
                    breakdowns[i].prediction += charge
                    span.annotate("staleness", hit.staleness)
                    span.annotate("probability", hit.score)
                    span.finish(charge)
                    probabilities[i] = hit.score
                    tiers[i] = "lambda"
                    stalenesses[i] = hit.staleness
                    continue
            if self.breaker.allow():
                alive.append(i)
            else:
                reasons[i] = "circuit_open"
                roots[i].add_event("breaker.open", at=nows[i])

        sample_stats = feature_stats = None
        shard_partial: set[int] = set()
        registry = self.metrics
        # --- stage 1: coalesced bn_sample --------------------------------
        if alive:
            stage_span = batch.child("bn_sample", at=stage_start(alive))
            spans = {
                i: roots[i].child("bn_sample", at=nows[i] + breakdowns[i].total)
                for i in alive
            }
            with use_span(stage_span):
                sampled, stage_seconds, stage_errors, sample_stats = (
                    self.bn_server.sample_batch(
                        [requests[i].uid for i in alive],
                        [nows[i] for i in alive],
                        hops=self.hops,
                        fanout=self.fanout,
                        allowed=self.allowed_nodes,
                    )
                )
            # Requests sampled while a BN shard was down: still served by
            # HAG below, but tagged "partial" at finalize.
            shard_partial = {alive[k] for k in sample_stats.partial}
            still: list[int] = []
            for k, i in enumerate(alive):
                span = spans[i]
                error = stage_errors[k]
                if error is not None:
                    self.monitor.record_error(type(error).__name__)
                    fail(i, span, 0.0, type(error).__name__, "graph_path_down")
                    continue
                span.annotate("subgraph_size", sampled[k].num_nodes)
                breakdowns[i].sampling += stage_seconds[k]
                if budgets[i] is not None and breakdowns[i].total > budgets[i]:
                    fail(i, span, stage_seconds[k], "BudgetExceeded", "over_budget")
                    continue
                subgraphs[i] = sampled[k]
                span.finish(stage_seconds[k])
                still.append(i)
            stage_span.annotate("requests", len(alive))
            stage_span.annotate("coalescing", sample_stats.coalescing)
            stage_span.finish(sum(stage_seconds))
            alive = still

        # --- stage 2: columnar feature_fetch -----------------------------
        if alive:
            stage_span = batch.child("feature_fetch", at=stage_start(alive))
            spans = {
                i: roots[i].child("feature_fetch", at=nows[i] + breakdowns[i].total)
                for i in alive
            }
            with use_span(stage_span):
                matrices, stage_seconds, stage_errors, feature_stats = (
                    self.feature_server.features_for_batch(
                        [subgraphs[i].nodes for i in alive],
                        [requests[i].txn for i in alive],
                        [nows[i] for i in alive],
                    )
                )
            still = []
            for k, i in enumerate(alive):
                span = spans[i]
                error = stage_errors[k]
                if error is not None:
                    self.monitor.record_error(type(error).__name__)
                    fail(i, span, 0.0, type(error).__name__, "graph_path_down")
                    continue
                span.annotate("feature_rows", int(matrices[k].shape[0]))
                breakdowns[i].features += stage_seconds[k]
                if budgets[i] is not None and breakdowns[i].total > budgets[i]:
                    fail(i, span, stage_seconds[k], "BudgetExceeded", "over_budget")
                    continue
                features[i] = matrices[k]
                span.finish(stage_seconds[k])
                still.append(i)
            stage_span.annotate("requests", len(alive))
            stage_span.annotate("coalescing", feature_stats.coalescing)
            stage_span.finish(sum(stage_seconds))
            alive = still

        # --- stage 3: packed inference -----------------------------------
        if alive:
            stage_span = batch.child("inference", at=stage_start(alive))
            spans = {
                i: roots[i].child("inference", at=nows[i] + breakdowns[i].total)
                for i in alive
            }
            gate_extras: list[float] = []
            survivors: list[int] = []
            for i in alive:
                # The per-request fault gate the scalar ``predict`` runs
                # inside the server; batched, the orchestrator runs it so a
                # poisoned request drops out before the packed forward.
                try:
                    with use_span(spans[i]):
                        extra = self.prediction_server.ping()
                except StorageError as exc:
                    self.monitor.record_error(type(exc).__name__)
                    fail(i, spans[i], 0.0, type(exc).__name__, "graph_path_down")
                    continue
                gate_extras.append(extra)
                survivors.append(i)
            stage_seconds = []
            if survivors:
                with use_span(stage_span):
                    stage_probs, stage_seconds = self.prediction_server.predict_batch(
                        [subgraphs[i] for i in survivors],
                        [features[i] for i in survivors],
                        gate_extras,
                    )
                for k, i in enumerate(survivors):
                    span = spans[i]
                    span.annotate("probability", stage_probs[k])
                    breakdowns[i].prediction += stage_seconds[k]
                    if budgets[i] is not None and breakdowns[i].total > budgets[i]:
                        fail(i, span, stage_seconds[k], "BudgetExceeded", "over_budget")
                        continue
                    probabilities[i] = stage_probs[k]
                    sizes[i] = subgraphs[i].num_nodes
                    span.finish(stage_seconds[k])
                    self.breaker.record_success()
            stage_span.annotate("requests", len(alive))
            stage_span.finish(sum(stage_seconds))

        # --- finalize: degrade failures, close traces, record telemetry --
        responses: list[TurboResponse] = []
        for i in range(n):
            breakdown = breakdowns[i]
            probability = probabilities[i]
            degradation = "full"
            if probability is None:
                degradation, probability, blocked = self._degrade(
                    requests[i].txn, breakdown, root=roots[i], now=nows[i]
                )
            else:
                blocked = probability >= self.threshold
                if i in shard_partial:
                    degradation = "partial"
                    reasons[i] = "shard_down"
            root = roots[i]
            root.annotate("probability", probability)
            root.annotate("blocked", blocked)
            root.annotate("retries", 0)
            root.annotate("degradation", degradation)
            root.annotate("tier", tiers[i])
            if degradation != "full":
                root.annotate_tree("degradation", degradation)
                root.annotate_tree("degradation_reason", reasons[i])
            responses.append(
                TurboResponse(
                    uid=requests[i].uid,
                    txn_id=requests[i].txn.txn_id,
                    probability=probability,
                    blocked=blocked,
                    breakdown=breakdown,
                    subgraph_size=sizes[i],
                    timestamp=nows[i],
                    degradation=degradation,
                    degradation_reason=reasons[i],
                    retries=0,
                    span=root,
                    tier=tiers[i],
                    staleness=stalenesses[i],
                )
            )

        wall = max(breakdown.total for breakdown in breakdowns)
        self.clock.advance(wall)
        for i, response in enumerate(responses):
            self.tracer.finish_trace(response.span, breakdowns[i].total)
            self.responses.append(response)
            self.monitor.record_request(
                breakdowns[i],
                blocked=response.blocked,
                subgraph_size=response.subgraph_size,
                degradation=response.degradation,
                retries=0,
            )
            registry.histogram("turbo.batch.latency.sampling").observe(
                breakdowns[i].sampling
            )
            registry.histogram("turbo.batch.latency.features").observe(
                breakdowns[i].features
            )
            registry.histogram("turbo.batch.latency.prediction").observe(
                breakdowns[i].prediction
            )
        registry.counter("turbo.batch.batches").inc()
        registry.counter("turbo.batch.requests").inc(n)
        registry.histogram("turbo.batch.size").observe(float(n))
        batch.annotate("wall", wall)
        if sample_stats is not None:
            registry.histogram("turbo.batch.coalescing").observe(
                sample_stats.coalescing
            )
            batch.annotate("sample_coalescing", sample_stats.coalescing)
        if feature_stats is not None:
            registry.histogram("turbo.batch.feature_coalescing").observe(
                feature_stats.coalescing
            )
            batch.annotate("feature_coalescing", feature_stats.coalescing)
        self.tracer.finish_trace(batch, wall)
        return responses

    def _coerce_request(self, args: tuple, kwargs: dict) -> PredictRequest:
        """Normalize ``predict`` input: the canonical request, or the shim.

        ``predict(request)`` / ``predict(request=...)`` are canonical;
        everything else is routed through the single legacy shim
        (:func:`_coerce_legacy_predict`), which warns once per process.
        """
        if "request" in kwargs:
            if args or len(kwargs) > 1:
                raise TypeError("predict(request=...) takes no other arguments")
            return kwargs["request"]
        if args and isinstance(args[0], PredictRequest):
            if len(args) > 1 or kwargs:
                raise TypeError("predict(request) takes no other arguments")
            return args[0]
        return _coerce_legacy_predict(args, kwargs)

    def _serve(self, request: PredictRequest) -> TurboResponse:
        """Serve one normalized request and close its trace."""
        txn = request.txn
        now = self.clock.now() if request.now is None else request.now
        budget = self.request_budget if request.budget is None else request.budget
        breakdown = LatencyBreakdown()
        root = self.tracer.start_trace(
            "request", at=now, parent=request.trace, uid=request.uid, txn_id=txn.txn_id
        )
        ctx = RequestContext(
            request=request,
            now=now,
            hops=self.hops,
            fanout=self.fanout,
            allowed=self.allowed_nodes,
        )
        retries = 0
        degradation = "full"
        reason = ""
        probability: float | None = None
        blocked = False
        subgraph_size = 0
        tier = "sampled"
        staleness = 0

        hit = None
        if self.lambda_layer is not None:
            self.lambda_layer.maybe_refresh(now)
            hit = self.lambda_layer.lookup(request.uid, txn.txn_id, now)
        if hit is not None:
            # Speed layer: the cached batch-pass score covers this exact
            # (txn, now) within the staleness budget — serve it for one
            # in-memory read, no graph path at all.  The breaker guards the
            # graph path, so an open breaker does not block cached serving.
            tier = "lambda"
            staleness = hit.staleness
            span = root.child("lambda_delta", at=now)
            charge = self.prediction_server.latency.charge_cache_get()
            breakdown.prediction += charge
            span.annotate("staleness", staleness)
            span.annotate("probability", hit.score)
            span.finish(charge)
            probability = hit.score
            blocked = probability >= self.threshold
        elif self.breaker.allow():
            try:
                for stage_name, slot in _PIPELINE_STAGES:
                    retries += self._traced_stage(
                        root, breakdown, stage_name, slot, ctx, budget
                    )
                probability = ctx.probability
                subgraph_size = ctx.subgraph.num_nodes
                blocked = probability >= self.threshold
                self.breaker.record_success()
            except BudgetExceeded:
                self.breaker.record_failure()
                probability = None
                reason = "over_budget"
            except StorageError:
                self.breaker.record_failure()
                probability = None
                reason = "graph_path_down"
        else:
            reason = "circuit_open"
            root.add_event("breaker.open", at=now)

        if probability is None:
            degradation, probability, blocked = self._degrade(
                txn, breakdown, root=root, now=now
            )
        elif ctx.attributes.get("shard_partial"):
            # Served by HAG, but the subgraph was sampled with a BN shard
            # down — surviving-frontier answer, tagged not degraded-away.
            degradation = "partial"
            reason = "shard_down"

        root.annotate("probability", probability)
        root.annotate("blocked", blocked)
        root.annotate("retries", retries)
        root.annotate("degradation", degradation)
        root.annotate("tier", tier)
        if degradation != "full":
            # Satellite contract: every span of a degraded request carries
            # the level and reason, so any subtree slice explains itself.
            root.annotate_tree("degradation", degradation)
            root.annotate_tree("degradation_reason", reason)

        self.clock.advance(breakdown.total)
        self.tracer.finish_trace(root, breakdown.total)
        response = TurboResponse(
            uid=request.uid,
            txn_id=txn.txn_id,
            probability=probability,
            blocked=blocked,
            breakdown=breakdown,
            subgraph_size=subgraph_size,
            timestamp=now,
            degradation=degradation,
            degradation_reason=reason,
            retries=retries,
            span=root,
            tier=tier,
            staleness=staleness,
        )
        self.responses.append(response)
        self.monitor.record_request(
            breakdown,
            blocked=blocked,
            subgraph_size=subgraph_size,
            degradation=degradation,
            retries=retries,
        )
        return response

    def _stage_service(self, stage_name: str) -> Service:
        """The service that owns a pipeline stage's span name."""
        return {
            "bn_sample": self.bn_server,
            "feature_fetch": self.feature_server,
            "inference": self.prediction_server,
        }[stage_name]

    def _traced_stage(
        self,
        root: Span,
        breakdown: LatencyBreakdown,
        stage_name: str,
        slot: str,
        ctx: RequestContext,
        budget: float | None,
    ) -> int:
        """Run one pipeline stage inside its own child span.

        The span's duration is the breakdown slot's delta across the stage
        (charged seconds including retry backoff), which keeps exported
        span tables bit-for-bit equal to the breakdown-derived tables.  The
        span stays *active* (``use_span``) for the stage so storage ops and
        injected faults stamp themselves onto it.  Failed stages are closed
        with whatever they charged and annotated with the error before the
        exception propagates.
        """
        service = self._stage_service(stage_name)
        span = root.child(stage_name, at=ctx.now + breakdown.total)
        before = getattr(breakdown, slot)
        try:
            with use_span(span):
                _value, stage_retries = self._run_stage(
                    breakdown,
                    slot,
                    lambda: service.handle(ctx, span),
                    budget=budget,
                )
        except (BudgetExceeded, StorageError) as exc:
            span.annotate("error", type(exc).__name__)
            span.finish(getattr(breakdown, slot) - before)
            raise
        if stage_retries:
            span.annotate("retries", stage_retries)
        span.finish(getattr(breakdown, slot) - before)
        return stage_retries

    def _run_stage(
        self,
        breakdown: LatencyBreakdown,
        stage: str,
        call: Callable[[], tuple],
        budget: float | None = None,
    ):
        """Run one pipeline stage under the retry policy and latency budget.

        Successful seconds and retry backoff are both charged to the
        stage's slot in ``breakdown``; each caught storage fault is counted
        in the monitor.  ``budget`` is the effective per-request budget
        (``None`` falls back to the deployment default).  Raises the final
        :class:`StorageError` once retries are exhausted, or
        :class:`BudgetExceeded` when the accumulated request latency
        (including a pending backoff) blows the budget.
        """
        if budget is None:
            budget = self.request_budget
        policy = self.retry_policy
        retries = 0
        attempt = 0
        while True:
            attempt += 1
            try:
                value, seconds = call()
            except StorageError as exc:
                self.monitor.record_error(type(exc).__name__)
                if attempt >= policy.max_attempts:
                    raise
                pause = policy.backoff(attempt, self._retry_rng)
                if budget is not None and breakdown.total + pause > budget:
                    raise BudgetExceeded(
                        f"{stage} retry backoff would exceed the "
                        f"{budget:.2f}s request budget"
                    ) from exc
                setattr(breakdown, stage, getattr(breakdown, stage) + pause)
                retries += 1
                continue
            setattr(breakdown, stage, getattr(breakdown, stage) + seconds)
            if budget is not None and breakdown.total > budget:
                raise BudgetExceeded(
                    f"request latency {breakdown.total:.2f}s exceeds the "
                    f"{budget:.2f}s budget after {stage}"
                )
            return value, retries

    def _degrade(
        self,
        txn: Transaction,
        breakdown: LatencyBreakdown,
        root: Span | None = None,
        now: float = 0.0,
    ) -> tuple[str, float, bool]:
        """Serve the request from the fallback ladder; returns (level, p, blocked).

        The fallback charge is captured before it is added to the
        prediction slot so the ``fallback`` span's duration is exactly the
        charged seconds (bit-for-bit table reproduction).
        """
        span = root.child("fallback", at=now + breakdown.total) if root is not None else None
        charge = self.prediction_server.latency.charge_fallback()
        breakdown.prediction += charge
        if self.fallbacks is None:
            # No fallback stack deployed: the conservative last resort.
            level, probability, blocked = "reject", 1.0, True
        else:
            decision = self.fallbacks.decide(txn)
            level, probability, blocked = (
                decision.level,
                decision.probability,
                decision.blocked,
            )
        if span is not None:
            span.annotate("level", level)
            span.finish(charge)
        return level, probability, blocked

    # ------------------------------------------------------------------
    # Serving front
    # ------------------------------------------------------------------
    def frontend(self, config: "Any | None" = None, pool: "Any | None" = None):
        """A queue/admission serving front over this deployment.

        Returns a :class:`~repro.system.queue.QueueFrontend` — priority
        queueing, deadline-aware admission control, batch-until-deadline
        dispatch into :meth:`predict_batch` and a simulated autoscaler —
        wired to this deployment's tracer, metrics registry and fallback
        ladder.  ``config`` is a :class:`~repro.system.queue.QueueConfig`
        (defaults applied when None); ``pool`` overrides the worker pool.
        """
        from .queue import QueueFrontend  # local import avoids a module cycle

        return QueueFrontend(self, config=config, pool=pool)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def recover(self) -> None:
        """Operator action after an outage: bring storage back, close the breaker.

        Recovers every database/cache behind the BN and feature servers
        (scheduled fault plans on ``self.faults`` are *not* cleared — an
        active crash window keeps the component down until it ends).
        """
        stores = {id(self.bn_server.database): self.bn_server.database}
        stores[id(self.feature_server.database)] = self.feature_server.database
        for store in stores.values():
            store.recover()
        for cache in {id(self.bn_server.cache): self.bn_server.cache,
                      id(self.feature_server.cache): self.feature_server.cache}.values():
            if cache is not None:
                cache.recover()
        self.breaker.reset()
        router = getattr(self.bn_server, "router", None)
        if router is not None:
            for shard_breaker in router.breakers.values():
                shard_breaker.reset()


def deploy_turbo(
    dataset: Dataset,
    config: TurboConfig | None = None,
    *,
    data: ExperimentData | None = None,
    **legacy_kwargs: Any,
) -> tuple[Turbo, ExperimentData]:
    """Train HAG on ``dataset`` and stand up the full online system.

    Canonical call: ``deploy_turbo(dataset, TurboConfig(...))``.  The
    legacy keyword style (``deploy_turbo(dataset, threshold=..., ...)``)
    still works — the keywords are collected into a
    :class:`~repro.system.config.TurboConfig`; mixing both styles is an
    error.

    Returns ``(turbo, experiment_data)`` — the experiment bundle is exposed
    so benchmarks can score the same split online and offline.  The deployed
    configuration includes the behavior statistics ``X_s`` in the node
    features (Section V).

    Resilience wiring: every deployment carries a
    :class:`~repro.system.faults.FaultInjector` (pass one in, or an empty
    no-op plan is created on the deployment clock), the retry policy and
    circuit breaker around the graph path, and — unless
    ``config.with_fallbacks`` is off — a scorecard + block-list fallback
    stack fitted on the training labels.  ``config.replicated=True`` puts
    the database behind a primary/replica
    :class:`~repro.system.storage.ReplicatedStore` (Section V's disaster
    backup).
    """
    if config is not None and legacy_kwargs:
        raise TypeError(
            "pass either a TurboConfig or legacy keyword arguments, not both"
        )
    if config is None:
        if legacy_kwargs:
            _warn_legacy(
                "deploy",
                "deploy_turbo(**kwargs) is deprecated; pass a TurboConfig",
                stacklevel=3,
            )
        config = TurboConfig(**legacy_kwargs)

    if data is None:
        data = prepare_experiment(
            dataset, windows=config.windows, seed=config.seed, include_stats=True
        )
    rng = np.random.default_rng(config.seed)
    model = HAG(
        data.features.shape[1],
        n_types=len(data.edge_types),
        rng=rng,
        hidden=config.hidden,
        att_dim=32,
        cfo_att_dim=32,
        cfo_out_dim=8,
        mlp_hidden=(16,),
    )
    aggregators = prepare_aggregators([data.adjacencies[t] for t in data.edge_types])
    # The tracer is created before training so the profiler can emit
    # ``train_epoch`` spans into the same trace buffer the serving spans
    # use; metric totals are replayed into the registry (created with the
    # Turbo system below) via mirror_into under the ``turbo.`` prefix.
    tracer = Tracer(max_traces=config.trace_max)
    train_profiler = TrainProfiler(tracer=tracer)
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregators),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        TrainConfig(
            epochs=config.train_epochs,
            lr=5e-3,
            patience=15,
            min_epochs=10,
            seed=config.seed,
            pos_weight=data.pos_weight(),
        ),
        profiler=train_profiler,
    )

    latency = config.latency or LatencyModel(seed=config.seed)
    clock = SimulatedClock(start=dataset.end_time)
    faults = config.faults or FaultInjector(seed=config.seed, clock=clock)
    if config.replicated:
        database = ReplicatedStore(
            LocalDatabase(latency, faults=faults, component="database"),
            LocalDatabase(latency, faults=faults, component="db_replica"),
            latency,
        )
    else:
        database = LocalDatabase(latency, faults=faults, component="database")
    cache = InMemoryCache(latency, faults=faults) if config.use_cache else None

    scaler = StandardScaler().fit(data.features_raw[data.train_idx])
    manager = ModelManager(
        lambda: HAG(
            data.features.shape[1],
            n_types=len(data.edge_types),
            rng=np.random.default_rng(config.seed),
            hidden=config.hidden,
            att_dim=32,
            cfo_att_dim=32,
            cfo_out_dim=8,
            mlp_hidden=(16,),
        )
    )
    manager.register(model.state_dict(), trained_at=clock.now())

    from ..network.builder import BNBuilder  # local import avoids cycle at module load

    builder = BNBuilder(windows=config.windows, edge_types=data.edge_types)
    bn_server = BNServer(
        builder,
        latency,
        database=database,
        cache=cache,
        faults=faults,
        shards=config.shards,
    )
    # Bootstrap the server with the offline-built BN (production would have
    # replayed the log history through the window jobs).  A sharded
    # deployment partitions it pair-order-preserving, so the served
    # subgraphs stay bit-exact against the single-network deployment.
    if config.shards > 1:
        from ..network.sharding import ShardedBehaviorNetwork

        bn_server.bn = ShardedBehaviorNetwork.from_network(data.bn, config.shards)
    else:
        bn_server.bn = data.bn
    feature_server = FeatureServer(
        data.feature_manager, latency, database=database, cache=cache, faults=faults
    )
    prediction_server = PredictionServer(
        manager.materialize_active(), scaler, data.edge_types, latency, faults=faults
    )
    fallbacks = None
    if config.with_fallbacks:
        # The block-list only knows fraudsters labeled *before* deployment —
        # the train+val split, never the held-out test labels.
        known_fraud = {
            int(data.nodes[i]) for i in data.fit_idx if data.labels[i] == 1
        }
        blocklist = Blocklist().fit(dataset.logs, known_fraud)
        fallbacks = FallbackStack(
            dataset.user_by_id(),
            scorecard=default_scorecard(),
            blocklist=blocklist,
            logs=dataset.logs,
        )
    lambda_layer = None
    if config.lambda_tier:
        # Two-tier serving: the batch layer's state is checkpointed to the
        # deployment database and (on sharded deployments) published into
        # the router's snapshot store next to the shard index; the speed
        # layer's DeltaSampler becomes the server's sampling tier so every
        # batch it sees is, by construction, delta-budget fallthrough.
        router = bn_server.router
        lambda_layer = LambdaLayer(
            bn_server,
            feature_server,
            prediction_server,
            database,
            tracer,
            hops=config.hops,
            fanout=config.fanout,
            allowed=set(data.nodes),
            refresh_period=config.lambda_refresh_period,
            staleness_budget=config.lambda_staleness_budget,
            store=router.store if router is not None else None,
            full_graph=(
                True if config.lambda_full_graph is None else config.lambda_full_graph
            ),
            incremental=(
                True
                if config.lambda_incremental is None
                else config.lambda_incremental
            ),
        )
        bn_server.set_sampler(DeltaSampler(lambda_layer, bn_server.sampler))
    turbo = Turbo(
        bn_server,
        feature_server,
        prediction_server,
        clock,
        threshold=config.threshold,
        allowed_nodes=set(data.nodes),
        hops=config.hops,
        fanout=config.fanout,
        fallbacks=fallbacks,
        retry_policy=config.retry_policy,
        breaker=config.breaker,
        request_budget=config.request_budget,
        faults=faults,
        seed=config.seed,
        model_manager=manager,
        tracer=tracer,
        lambda_layer=lambda_layer,
    )
    train_profiler.mirror_into(turbo.metrics, prefix="turbo.")
    if lambda_layer is not None:
        lambda_layer.run_batch_pass(clock.now())
    return turbo, data
