"""The Turbo orchestrator: the online anti-fraud pipeline of Fig. 2.

A prediction request for application ``tau`` of user ``u``:

1. the prediction server asks the BN server to sample ``u``'s computation
   subgraph;
2. the feature management module assembles features for every subgraph node;
3. HAG scores the target; the client gets the probability plus the decision
   at the configured threshold (0.85 in the deployed system).

Each step's latency is charged against the latency model and reported in the
response, which is what the Fig. 8a / Section V benchmarks aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.hag import HAG, prepare_aggregators
from ..core.trainer import TrainConfig, train_node_classifier
from ..datagen.entities import Dataset, Transaction
from ..eval.runner import ExperimentData, prepare_experiment
from ..features.pipeline import StandardScaler
from ..network.windows import FAST_WINDOWS
from .bn_server import BNServer
from .clock import SimulatedClock
from .feature_server import FeatureServer
from .latency import LatencyBreakdown, LatencyModel
from .model_management import ModelManager
from .monitoring import SystemMonitor
from .prediction_server import PredictionServer
from .storage import InMemoryCache, LocalDatabase

__all__ = ["TurboResponse", "Turbo", "deploy_turbo"]


@dataclass(slots=True)
class TurboResponse:
    """Result of one real-time detection request."""

    uid: int
    txn_id: int
    probability: float
    blocked: bool
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    subgraph_size: int = 0
    timestamp: float = 0.0


class Turbo:
    """Wires the BN server, feature module and prediction server together."""

    def __init__(
        self,
        bn_server: BNServer,
        feature_server: FeatureServer,
        prediction_server: PredictionServer,
        clock: SimulatedClock,
        threshold: float = 0.85,
        allowed_nodes: set[int] | None = None,
        hops: int = 2,
        fanout: int | None = 10,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.bn_server = bn_server
        self.feature_server = feature_server
        self.prediction_server = prediction_server
        self.clock = clock
        self.threshold = threshold
        self.allowed_nodes = allowed_nodes
        self.hops = hops
        self.fanout = fanout
        self.responses: list[TurboResponse] = []
        self.monitor = SystemMonitor()

    def handle_request(
        self, txn: Transaction, now: float | None = None
    ) -> TurboResponse:
        """Serve one detection request (Fig. 2's numbered flow)."""
        now = self.clock.now() if now is None else now
        breakdown = LatencyBreakdown()

        subgraph, breakdown.sampling = self.bn_server.sample(
            txn.uid, now=now, hops=self.hops, fanout=self.fanout, allowed=self.allowed_nodes
        )
        features, breakdown.features = self.feature_server.features_for(
            subgraph.nodes, txn, now
        )
        probability, breakdown.prediction = self.prediction_server.predict(
            subgraph, features
        )
        self.clock.advance(breakdown.total)
        response = TurboResponse(
            uid=txn.uid,
            txn_id=txn.txn_id,
            probability=probability,
            blocked=probability >= self.threshold,
            breakdown=breakdown,
            subgraph_size=subgraph.num_nodes,
            timestamp=now,
        )
        self.responses.append(response)
        self.monitor.record_request(
            breakdown, blocked=response.blocked, subgraph_size=subgraph.num_nodes
        )
        return response


def deploy_turbo(
    dataset: Dataset,
    windows: Sequence[float] = FAST_WINDOWS,
    use_cache: bool = True,
    threshold: float = 0.85,
    hidden: Sequence[int] = (64, 32),
    train_epochs: int = 60,
    seed: int = 0,
    latency: LatencyModel | None = None,
    data: ExperimentData | None = None,
) -> tuple[Turbo, ExperimentData]:
    """Train HAG on ``dataset`` and stand up the full online system.

    Returns ``(turbo, experiment_data)`` — the experiment bundle is exposed
    so benchmarks can score the same split online and offline.  The deployed
    configuration includes the behavior statistics ``X_s`` in the node
    features (Section V).
    """
    if data is None:
        data = prepare_experiment(dataset, windows=windows, seed=seed, include_stats=True)
    rng = np.random.default_rng(seed)
    model = HAG(
        data.features.shape[1],
        n_types=len(data.edge_types),
        rng=rng,
        hidden=hidden,
        att_dim=32,
        cfo_att_dim=32,
        cfo_out_dim=8,
        mlp_hidden=(16,),
    )
    aggregators = prepare_aggregators([data.adjacencies[t] for t in data.edge_types])
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregators),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        TrainConfig(
            epochs=train_epochs,
            lr=5e-3,
            patience=15,
            min_epochs=10,
            seed=seed,
            pos_weight=data.pos_weight(),
        ),
    )

    latency = latency or LatencyModel(seed=seed)
    clock = SimulatedClock(start=dataset.end_time)
    database = LocalDatabase(latency)
    cache = InMemoryCache(latency) if use_cache else None

    scaler = StandardScaler().fit(data.features_raw[data.train_idx])
    manager = ModelManager(
        lambda: HAG(
            data.features.shape[1],
            n_types=len(data.edge_types),
            rng=np.random.default_rng(seed),
            hidden=hidden,
            att_dim=32,
            cfo_att_dim=32,
            cfo_out_dim=8,
            mlp_hidden=(16,),
        )
    )
    manager.register(model.state_dict(), trained_at=clock.now())

    from ..network.builder import BNBuilder  # local import avoids cycle at module load

    builder = BNBuilder(windows=windows, edge_types=data.edge_types)
    bn_server = BNServer(builder, latency, database=database, cache=cache)
    # Bootstrap the server with the offline-built BN (production would have
    # replayed the log history through the window jobs).
    bn_server.bn = data.bn
    feature_server = FeatureServer(
        data.feature_manager, latency, database=database, cache=cache
    )
    prediction_server = PredictionServer(
        manager.materialize_active(), scaler, data.edge_types, latency
    )
    turbo = Turbo(
        bn_server,
        feature_server,
        prediction_server,
        clock,
        threshold=threshold,
        allowed_nodes=set(data.nodes),
    )
    return turbo, data
