"""The Turbo orchestrator: the online anti-fraud pipeline of Fig. 2.

A prediction request for application ``tau`` of user ``u``:

1. the prediction server asks the BN server to sample ``u``'s computation
   subgraph;
2. the feature management module assembles features for every subgraph node;
3. HAG scores the target; the client gets the probability plus the decision
   at the configured threshold (0.85 in the deployed system).

Each step's latency is charged against the latency model and reported in the
response, which is what the Fig. 8a / Section V benchmarks aggregate.

Resilience (Section V's production claims, ``docs/RESILIENCE.md``): the
graph path runs under a bounded :class:`~repro.system.faults.RetryPolicy`
and a :class:`~repro.system.faults.CircuitBreaker`, with an optional
per-request latency budget.  When the graph path is down, over budget, or
short-circuited, the request degrades to the pre-Turbo production models
(scorecard, then block-list, then reject) via
:class:`~repro.baselines.fallback.FallbackStack` — :meth:`Turbo.predict`
never raises on component failure, and every response is tagged with the
degradation level that served it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines.blocklist import Blocklist
from ..baselines.fallback import FallbackStack
from ..baselines.scorecard import default_scorecard
from ..core.hag import HAG, prepare_aggregators
from ..core.trainer import TrainConfig, train_node_classifier
from ..datagen.entities import Dataset, Transaction
from ..eval.runner import ExperimentData, prepare_experiment
from ..features.pipeline import StandardScaler
from ..network.windows import FAST_WINDOWS
from .bn_server import BNServer
from .clock import SimulatedClock
from .faults import BudgetExceeded, CircuitBreaker, FaultInjector, RetryPolicy
from .feature_server import FeatureServer
from .latency import LatencyBreakdown, LatencyModel
from .model_management import ModelManager
from .monitoring import SystemMonitor
from .prediction_server import PredictionServer
from .storage import InMemoryCache, LocalDatabase, ReplicatedStore, StorageError

__all__ = ["TurboResponse", "Turbo", "deploy_turbo"]


@dataclass(slots=True)
class TurboResponse:
    """Result of one real-time detection request."""

    uid: int
    txn_id: int
    probability: float
    blocked: bool
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    subgraph_size: int = 0
    timestamp: float = 0.0
    #: which rung of the ladder served this request: "full" (HAG graph
    #: path), "scorecard", "blocklist" or "reject".
    degradation: str = "full"
    #: why the graph path was abandoned ("" on the full path).
    degradation_reason: str = ""
    #: storage/server retries spent before the graph path succeeded.
    retries: int = 0

    @property
    def degraded(self) -> bool:
        """Was this request served by a fallback instead of HAG?"""
        return self.degradation != "full"


class Turbo:
    """Wires the BN server, feature module and prediction server together."""

    def __init__(
        self,
        bn_server: BNServer,
        feature_server: FeatureServer,
        prediction_server: PredictionServer,
        clock: SimulatedClock,
        threshold: float = 0.85,
        allowed_nodes: set[int] | None = None,
        hops: int = 2,
        fanout: int | None = 10,
        fallbacks: FallbackStack | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        request_budget: float | None = 15.0,
        faults: FaultInjector | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if request_budget is not None and request_budget <= 0:
            raise ValueError("request_budget must be positive (or None)")
        self.bn_server = bn_server
        self.feature_server = feature_server
        self.prediction_server = prediction_server
        self.clock = clock
        self.threshold = threshold
        self.allowed_nodes = allowed_nodes
        self.hops = hops
        self.fanout = fanout
        self.fallbacks = fallbacks
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.request_budget = request_budget
        self.faults = faults
        self._retry_rng = np.random.default_rng(seed)
        self.responses: list[TurboResponse] = []
        self.monitor = SystemMonitor()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict(self, txn: Transaction, now: float | None = None) -> TurboResponse:
        """Serve one detection request (Fig. 2's numbered flow).

        Never raises on component failure: the graph path runs under the
        retry policy, circuit breaker and latency budget, and falls back to
        the scorecard/blocklist ladder when it cannot answer.
        """
        now = self.clock.now() if now is None else now
        breakdown = LatencyBreakdown()
        retries = 0
        degradation = "full"
        reason = ""
        probability: float | None = None
        blocked = False
        subgraph_size = 0

        if self.breaker.allow():
            try:
                subgraph, r = self._run_stage(
                    breakdown,
                    "sampling",
                    lambda: self.bn_server.sample(
                        txn.uid,
                        now=now,
                        hops=self.hops,
                        fanout=self.fanout,
                        allowed=self.allowed_nodes,
                    ),
                )
                retries += r
                features, r = self._run_stage(
                    breakdown,
                    "features",
                    lambda: self.feature_server.features_for(subgraph.nodes, txn, now),
                )
                retries += r
                probability, r = self._run_stage(
                    breakdown,
                    "prediction",
                    lambda: self.prediction_server.predict(subgraph, features),
                )
                retries += r
                subgraph_size = subgraph.num_nodes
                blocked = probability >= self.threshold
                self.breaker.record_success()
            except BudgetExceeded:
                self.breaker.record_failure()
                probability = None
                reason = "over_budget"
            except StorageError:
                self.breaker.record_failure()
                probability = None
                reason = "graph_path_down"
        else:
            reason = "circuit_open"

        if probability is None:
            degradation, probability, blocked = self._degrade(txn, breakdown)

        self.clock.advance(breakdown.total)
        response = TurboResponse(
            uid=txn.uid,
            txn_id=txn.txn_id,
            probability=probability,
            blocked=blocked,
            breakdown=breakdown,
            subgraph_size=subgraph_size,
            timestamp=now,
            degradation=degradation,
            degradation_reason=reason,
            retries=retries,
        )
        self.responses.append(response)
        self.monitor.record_request(
            breakdown,
            blocked=blocked,
            subgraph_size=subgraph_size,
            degradation=degradation,
            retries=retries,
        )
        return response

    def handle_request(self, txn: Transaction, now: float | None = None) -> TurboResponse:
        """Alias of :meth:`predict` (the historical entry-point name)."""
        return self.predict(txn, now=now)

    def _run_stage(
        self,
        breakdown: LatencyBreakdown,
        stage: str,
        call: Callable[[], tuple],
    ):
        """Run one pipeline stage under the retry policy and latency budget.

        Successful seconds and retry backoff are both charged to the
        stage's slot in ``breakdown``; each caught storage fault is counted
        in the monitor.  Raises the final :class:`StorageError` once retries
        are exhausted, or :class:`BudgetExceeded` when the accumulated
        request latency (including a pending backoff) blows the budget.
        """
        policy = self.retry_policy
        retries = 0
        attempt = 0
        while True:
            attempt += 1
            try:
                value, seconds = call()
            except StorageError as exc:
                self.monitor.record_error(type(exc).__name__)
                if attempt >= policy.max_attempts:
                    raise
                pause = policy.backoff(attempt, self._retry_rng)
                if (
                    self.request_budget is not None
                    and breakdown.total + pause > self.request_budget
                ):
                    raise BudgetExceeded(
                        f"{stage} retry backoff would exceed the "
                        f"{self.request_budget:.2f}s request budget"
                    ) from exc
                setattr(breakdown, stage, getattr(breakdown, stage) + pause)
                retries += 1
                continue
            setattr(breakdown, stage, getattr(breakdown, stage) + seconds)
            if self.request_budget is not None and breakdown.total > self.request_budget:
                raise BudgetExceeded(
                    f"request latency {breakdown.total:.2f}s exceeds the "
                    f"{self.request_budget:.2f}s budget after {stage}"
                )
            return value, retries

    def _degrade(
        self, txn: Transaction, breakdown: LatencyBreakdown
    ) -> tuple[str, float, bool]:
        """Serve the request from the fallback ladder; returns (level, p, blocked)."""
        breakdown.prediction += self.prediction_server.latency.charge_fallback()
        if self.fallbacks is None:
            # No fallback stack deployed: the conservative last resort.
            return "reject", 1.0, True
        decision = self.fallbacks.decide(txn)
        return decision.level, decision.probability, decision.blocked

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def recover(self) -> None:
        """Operator action after an outage: bring storage back, close the breaker.

        Recovers every database/cache behind the BN and feature servers
        (scheduled fault plans on ``self.faults`` are *not* cleared — an
        active crash window keeps the component down until it ends).
        """
        stores = {id(self.bn_server.database): self.bn_server.database}
        stores[id(self.feature_server.database)] = self.feature_server.database
        for store in stores.values():
            store.recover()
        for cache in {id(self.bn_server.cache): self.bn_server.cache,
                      id(self.feature_server.cache): self.feature_server.cache}.values():
            if cache is not None:
                cache.recover()
        self.breaker.reset()


def deploy_turbo(
    dataset: Dataset,
    windows: Sequence[float] = FAST_WINDOWS,
    use_cache: bool = True,
    threshold: float = 0.85,
    hidden: Sequence[int] = (64, 32),
    train_epochs: int = 60,
    seed: int = 0,
    latency: LatencyModel | None = None,
    data: ExperimentData | None = None,
    replicated: bool = False,
    faults: FaultInjector | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    request_budget: float | None = 15.0,
    with_fallbacks: bool = True,
) -> tuple[Turbo, ExperimentData]:
    """Train HAG on ``dataset`` and stand up the full online system.

    Returns ``(turbo, experiment_data)`` — the experiment bundle is exposed
    so benchmarks can score the same split online and offline.  The deployed
    configuration includes the behavior statistics ``X_s`` in the node
    features (Section V).

    Resilience wiring: every deployment carries a
    :class:`~repro.system.faults.FaultInjector` (pass one in, or an empty
    no-op plan is created on the deployment clock), the retry policy and
    circuit breaker around the graph path, and — unless ``with_fallbacks``
    is off — a scorecard + block-list fallback stack fitted on the training
    labels.  ``replicated=True`` puts the database behind a primary/replica
    :class:`~repro.system.storage.ReplicatedStore` (Section V's disaster
    backup).
    """
    if data is None:
        data = prepare_experiment(dataset, windows=windows, seed=seed, include_stats=True)
    rng = np.random.default_rng(seed)
    model = HAG(
        data.features.shape[1],
        n_types=len(data.edge_types),
        rng=rng,
        hidden=hidden,
        att_dim=32,
        cfo_att_dim=32,
        cfo_out_dim=8,
        mlp_hidden=(16,),
    )
    aggregators = prepare_aggregators([data.adjacencies[t] for t in data.edge_types])
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregators),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        TrainConfig(
            epochs=train_epochs,
            lr=5e-3,
            patience=15,
            min_epochs=10,
            seed=seed,
            pos_weight=data.pos_weight(),
        ),
    )

    latency = latency or LatencyModel(seed=seed)
    clock = SimulatedClock(start=dataset.end_time)
    faults = faults or FaultInjector(seed=seed, clock=clock)
    if replicated:
        database = ReplicatedStore(
            LocalDatabase(latency, faults=faults, component="database"),
            LocalDatabase(latency, faults=faults, component="db_replica"),
            latency,
        )
    else:
        database = LocalDatabase(latency, faults=faults, component="database")
    cache = InMemoryCache(latency, faults=faults) if use_cache else None

    scaler = StandardScaler().fit(data.features_raw[data.train_idx])
    manager = ModelManager(
        lambda: HAG(
            data.features.shape[1],
            n_types=len(data.edge_types),
            rng=np.random.default_rng(seed),
            hidden=hidden,
            att_dim=32,
            cfo_att_dim=32,
            cfo_out_dim=8,
            mlp_hidden=(16,),
        )
    )
    manager.register(model.state_dict(), trained_at=clock.now())

    from ..network.builder import BNBuilder  # local import avoids cycle at module load

    builder = BNBuilder(windows=windows, edge_types=data.edge_types)
    bn_server = BNServer(builder, latency, database=database, cache=cache, faults=faults)
    # Bootstrap the server with the offline-built BN (production would have
    # replayed the log history through the window jobs).
    bn_server.bn = data.bn
    feature_server = FeatureServer(
        data.feature_manager, latency, database=database, cache=cache, faults=faults
    )
    prediction_server = PredictionServer(
        manager.materialize_active(), scaler, data.edge_types, latency, faults=faults
    )
    fallbacks = None
    if with_fallbacks:
        # The block-list only knows fraudsters labeled *before* deployment —
        # the train+val split, never the held-out test labels.
        known_fraud = {
            int(data.nodes[i]) for i in data.fit_idx if data.labels[i] == 1
        }
        blocklist = Blocklist().fit(dataset.logs, known_fraud)
        fallbacks = FallbackStack(
            dataset.user_by_id(),
            scorecard=default_scorecard(),
            blocklist=blocklist,
            logs=dataset.logs,
        )
    turbo = Turbo(
        bn_server,
        feature_server,
        prediction_server,
        clock,
        threshold=threshold,
        allowed_nodes=set(data.nodes),
        fallbacks=fallbacks,
        retry_policy=retry_policy,
        breaker=breaker,
        request_budget=request_budget,
        faults=faults,
        seed=seed,
    )
    return turbo, data
