"""BN server: real-time graph maintenance + computation-subgraph sampling.

Mirrors Section V: behavior logs stream in and are persisted; a periodic job
per time window builds the edges of each just-closed epoch (jobs with shorter
windows run more frequently); a TTL sweep prevents unbounded growth; and
detection requests are served by sampling the target's k-hop computation
subgraph.  All storage access is charged through the latency model.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..datagen.entities import DAY, BehaviorLog
from ..network.bn import BehaviorNetwork
from ..network.builder import BNBuilder
from ..network.sampling import (
    BatchSampleStats,
    ComputationSubgraph,
    computation_subgraph,
    computation_subgraphs_batch,
)
from ..network.sharding import ShardedBehaviorNetwork
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Span, current_span
from .latency import LatencyModel
from .shard_router import ShardRouter
from .storage import InMemoryCache, LocalDatabase, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .faults import FaultInjector
    from .service import RequestContext, Sampler

__all__ = ["BNServer", "LocalSampler"]


class LocalSampler:
    """The single-network sampling tier (the unsharded default).

    One of the three :class:`~repro.system.service.Sampler` conformers —
    alongside :class:`~repro.system.shard_router.ShardRouter` and
    :class:`~repro.system.lambda_layer.DeltaSampler` — so the serving
    paths can run ``self.sampler.sample_batch(...)`` uniformly instead of
    branching on the deployment shape inline.  Samples straight off the
    in-process network with the shared union-frontier batch sampler; no
    probes, so the batch-level gate cost is always zero.
    """

    tier = "local"

    def __init__(self, server: "BNServer") -> None:
        self._server = server

    def sample_batch(
        self,
        targets: Sequence[int],
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
        selection_cache: dict | None = None,
        now: float = 0.0,
    ) -> tuple[list[ComputationSubgraph], BatchSampleStats, float]:
        """Batch-sample every target's ``G_v``; ``(subgraphs, stats, 0.0)``."""
        subgraphs, stats = computation_subgraphs_batch(
            self._server.bn,
            list(targets),
            hops=hops,
            fanout=fanout,
            allowed=allowed,
            selection_cache=selection_cache,
        )
        return subgraphs, stats, 0.0


class BNServer:
    """Maintains BN from streaming logs and serves subgraph samples.

    Satisfies the :class:`~repro.system.service.Service` protocol:
    :attr:`name`, :meth:`ping`, :meth:`stats` and :meth:`handle` (the
    ``bn_sample`` stage of a prediction request).
    """

    def __init__(
        self,
        builder: BNBuilder,
        latency: LatencyModel,
        database: LocalDatabase | None = None,
        cache: InMemoryCache | None = None,
        ttl_sweep_interval: float = DAY,
        faults: "FaultInjector | None" = None,
        component: str = "bn_server",
        metrics: MetricsRegistry | None = None,
        shards: int = 1,
        use_shm: bool = True,
    ) -> None:
        self.builder = builder
        self.latency = latency
        self.database = database or LocalDatabase(latency)
        self.cache = cache
        self.faults = faults
        self.component = component
        # Wired to the deployment registry by the Turbo orchestrator (or
        # directly by tests/benchmarks); ``bn.ingest.*`` series stay silent
        # when left unset.
        self.metrics = metrics
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.bn: BehaviorNetwork | ShardedBehaviorNetwork = (
            ShardedBehaviorNetwork(shards, ttl=builder.ttl)
            if shards > 1
            else BehaviorNetwork(ttl=builder.ttl)
        )
        self._use_shm = use_shm
        self._router: ShardRouter | None = None
        self._local_sampler: LocalSampler | None = None
        # Explicit tier override (e.g. the lambda layer's DeltaSampler);
        # None means pick by deployment shape (router when sharded).
        self._sampler: "Sampler | None" = None
        self.ttl_sweep_interval = ttl_sweep_interval
        self._logs: list[BehaviorLog] = []
        self._log_times: list[float] = []
        self._next_epoch: dict[float, int] = {w: 0 for w in builder.windows}
        self._last_ttl_sweep = 0.0
        self.jobs_run = 0
        # Per-(node, type) neighbour rankings carried across micro-batches;
        # only valid for one (bn.version, fanout) pair, dropped on change.
        self._selection_cache: dict = {}
        self._selection_state: tuple[int, int | None] | None = None
        # Whether the most recent scalar sample was served from a frontier
        # missing a downed shard (handle() copies it onto the context).
        self._last_sample_partial = False

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """Whether the server maintains a hash-partitioned BN."""
        return isinstance(self.bn, ShardedBehaviorNetwork)

    @property
    def router(self) -> ShardRouter | None:
        """The shard router fronting :attr:`bn` (``None`` when unsharded).

        Built lazily against the *current* ``bn`` object so the bootstrap
        idiom (``server.bn = ShardedBehaviorNetwork.from_network(...)``)
        re-points it, with one circuit breaker per shard; the metrics
        registry is re-synced on every access because the Turbo
        orchestrator wires :attr:`metrics` after construction.
        """
        bn = self.bn
        if not isinstance(bn, ShardedBehaviorNetwork):
            return None
        router = self._router
        if router is None or router.sharded is not bn:
            if router is not None:
                router.close()
            from .faults import CircuitBreaker  # runtime import avoids a cycle

            router = ShardRouter(
                bn,
                faults=self.faults,
                metrics=self.metrics,
                breakers={s: CircuitBreaker() for s in range(bn.n_shards)},
                use_shm=self._use_shm,
            )
            self._router = router
        router.metrics = self.metrics
        return router

    @property
    def sampler(self) -> "Sampler":
        """The active sampling tier (PR 8's unified ``Sampler`` surface).

        An explicit override (:meth:`set_sampler` — how a lambda
        deployment installs its :class:`~repro.system.lambda_layer.DeltaSampler`)
        wins; otherwise the tier follows the deployment shape — the shard
        router when the BN is partitioned, the in-process
        :class:`LocalSampler` otherwise.
        """
        if self._sampler is not None:
            return self._sampler
        router = self.router
        if router is not None:
            return router
        local = self._local_sampler
        if local is None:
            local = LocalSampler(self)
            self._local_sampler = local
        return local

    def set_sampler(self, sampler: "Sampler | None") -> None:
        """Install an explicit sampling tier (``None`` restores the default)."""
        self._sampler = sampler

    # ------------------------------------------------------------------
    # Ingestion & maintenance
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int) -> None:
        """Bump a ``bn.ingest.*`` counter and stamp the ambient span (if any)."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)
        span = current_span()
        if span is not None:
            span.incr(name, amount)

    def _observe(self, name: str, value: float) -> None:
        """Record one maintenance-cost sample (if a registry is wired)."""
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def ingest(self, logs: Sequence[BehaviorLog]) -> float:
        """Receive new logs (must be non-decreasing in time across calls).

        The order check is vectorized and all-or-nothing: one out-of-order
        log rejects the whole batch before anything is buffered or
        persisted.
        """
        seconds = 0.0
        if not logs:
            return seconds
        times = np.fromiter(
            (log.timestamp for log in logs), dtype=np.float64, count=len(logs)
        )
        if (self._log_times and times[0] < self._log_times[-1]) or np.any(
            times[1:] < times[:-1]
        ):
            raise ValueError("logs must arrive in timestamp order")
        self._logs.extend(logs)
        self._log_times.extend(times.tolist())
        seconds += self.database.insert_many(
            "logs", ((log.uid, log) for log in logs)
        )
        self._count("bn.ingest.logs", len(logs))
        return seconds

    def run_due_jobs(self, now: float) -> tuple[int, float]:
        """Run every window job whose epoch has closed by ``now``.

        Returns ``(jobs_run, seconds_charged)``.  Mirrors the production
        scheduler: the 1-hour window's job runs hourly, the 1-day window's
        daily, etc.  These jobs run in parallel to request serving, so their
        cost is *not* part of prediction latency — it is still charged so the
        scalability study (Fig. 8b) can report it.
        """
        jobs = 0
        seconds = 0.0
        contributions_total = 0
        for window in self.builder.windows:
            epoch = self._next_epoch[window]
            while self.builder.origin + (epoch + 1) * window <= now:
                job_end = self.builder.origin + (epoch + 1) * window
                lo = bisect_left(self._log_times, job_end - window)
                hi = bisect_right(self._log_times, job_end)
                contributions = self.builder.run_window_job(
                    self.bn, self._logs[lo:hi], window, job_end
                )
                contributions_total += contributions
                seconds += self.latency.charge_db_write(max(1, contributions))
                jobs += 1
                epoch += 1
            self._next_epoch[window] = epoch
        self.jobs_run += jobs
        if jobs:
            self._count("bn.ingest.jobs", jobs)
            self._count("bn.ingest.contributions", contributions_total)
            if self.sharded:
                self._count("bn.shard.ingest.jobs", jobs)
                self._count("bn.shard.ingest.contributions", contributions_total)

        if now - self._last_ttl_sweep >= self.ttl_sweep_interval:
            removed = self.bn.expire_edges(now)
            seconds += self.latency.charge_db_write(max(1, removed))
            self._last_ttl_sweep = now
            if removed:
                self._count("bn.ingest.expired_edges", removed)
                if self.sharded:
                    self._count("bn.shard.ingest.expired_edges", removed)

        if self.sharded:
            # Mirror the routing economics of the window jobs just applied:
            # batches are the cross-shard version barriers (one bump per
            # mutation batch regardless of how many shards it touched).
            routed = self.bn.drain_route_stats()
            if routed["batches"] or routed["rows"]:
                self._count("bn.shard.ingest.barriers", routed["batches"])
                self._count("bn.shard.ingest.rows", routed["rows"])
                self._count("bn.shard.ingest.cross_shard", routed["cross_shard"])
                for s, shard_rows in enumerate(routed["shard_rows"]):
                    if shard_rows:
                        self._count(f"bn.shard.ingest.shard{s}.rows", shard_rows)

        self._prune_logs(now)
        self._observe("bn.ingest.maintenance_seconds", seconds)
        return jobs, seconds

    def _prune_logs(self, now: float) -> None:
        """Drop buffered logs no future window job can read.

        Every pending job for window ``w`` has ``job_end > now`` and reads
        ``(job_end - w, job_end]``, so logs at or before ``now - max(W)``
        can never contribute again; keeping them would grow the in-memory
        buffer without bound (the persisted copy lives in the database).
        """
        cutoff = now - max(self.builder.windows)
        drop = bisect_right(self._log_times, cutoff)
        if drop:
            del self._logs[:drop]
            del self._log_times[:drop]

    # ------------------------------------------------------------------
    # Service surface (see repro.system.service.Service)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name (also the fault-injector address)."""
        return self.component

    def ping(self) -> float:
        """Liveness probe; raises through the fault gate when down."""
        return self.faults.before_call(self.component) if self.faults else 0.0

    def stats(self) -> dict[str, float]:
        """BN maintenance counters (jobs, buffered logs, graph size)."""
        out = {
            "jobs_run": float(self.jobs_run),
            "logs_buffered": float(len(self._logs)),
            "bn_nodes": float(self.bn.num_nodes()),
            "bn_edges": float(self.bn.num_edges()),
        }
        if self.sharded:
            out["shards"] = float(self.bn.n_shards)
            for s, shard in enumerate(self.bn.shards):
                out[f"shard{s}_nodes"] = float(shard.num_nodes())
        return out

    def handle(
        self, request: "RequestContext", span: Span | None = None
    ) -> tuple[ComputationSubgraph, float]:
        """Serve the ``bn_sample`` stage: sample the target's subgraph.

        Reads the sampling policy (hops/fanout/allowed) from the request
        context, stores the sampled subgraph back on it for the feature
        stage, and annotates ``span`` with the subgraph size.
        """
        subgraph, seconds = self.sample(
            request.request.uid,
            now=request.now,
            hops=request.hops,
            fanout=request.fanout,
            allowed=request.allowed,
        )
        request.subgraph = subgraph
        if self._last_sample_partial:
            request.attributes["shard_partial"] = True
        if span is not None:
            span.annotate("subgraph_size", subgraph.num_nodes)
        return subgraph, seconds

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _batch_selection_cache(self, fanout: int | None) -> dict:
        """The per-(node, type) ranking cache for the current BN version."""
        selection_state = (self.bn.version, fanout)
        if self._selection_state != selection_state:
            self._selection_state = selection_state
            self._selection_cache = {}
        return self._selection_cache

    def sample(
        self,
        uid: int,
        now: float = 0.0,
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> tuple[ComputationSubgraph, float]:
        """Sample ``G_uid``; returns ``(subgraph, seconds)``.

        With a cache, each visited node's adjacency is a cache lookup (the
        production 87 ms path); without one, every hop reads the edge list
        from the local database.

        Failure contract: raises :class:`~repro.system.storage.StorageError`
        (or an injected fault) when the server, the cache mid-lookup, or the
        database behind a cold cache cannot serve — the Turbo orchestrator
        owns the retry/degrade decision.  On a sharded server the
        deterministic (``rng=None``) path runs through the shard router: a
        downed *shard* does not raise but serves the surviving frontier and
        latches :attr:`_last_sample_partial` for :meth:`handle`.
        """
        seconds = self.faults.before_call(self.component) if self.faults else 0.0
        self._last_sample_partial = False
        if uid not in self.bn:
            self.bn.add_node(uid)
        if rng is not None:
            # Weighted sampling is a research-only path; it bypasses the
            # tier machinery and samples the in-process network directly.
            subgraph = computation_subgraph(
                self.bn, uid, hops=hops, fanout=fanout, allowed=allowed, rng=rng
            )
        else:
            sampled, batch_stats, gate_seconds = self.sampler.sample_batch(
                [uid],
                hops=hops,
                fanout=fanout,
                allowed=allowed,
                selection_cache=self._batch_selection_cache(fanout),
                now=now,
            )
            subgraph = sampled[0]
            seconds += gate_seconds
            self._last_sample_partial = bool(batch_stats.partial)
        seconds += self.latency.charge_network()
        use_cache = self.cache is not None and self.cache.available
        if not use_cache:
            # The degraded (no-cache) path reads edge lists straight from
            # the database — a dead database must surface here, not charge
            # phantom latency for reads that could never have happened.
            seconds += self.database.ping()
        for node in subgraph.nodes:
            if use_cache:
                _value, hit, cost = self.cache.get(("adj", node), now)
                seconds += cost + self.latency.charge_sample_node()
                if not hit:
                    _rows, query_cost = self.database.query("edges", node)
                    seconds += query_cost
                    seconds += self.cache.set(("adj", node), True, now)
            else:
                degree = self.bn.degree(node)
                seconds += self.latency.charge_db_query(max(1, degree))
        return subgraph, seconds

    def sample_batch(
        self,
        uids: Sequence[int],
        nows: Sequence[float],
        hops: int = 2,
        fanout: int | None = 25,
        allowed: set[int] | None = None,
    ) -> tuple[
        list[ComputationSubgraph | None],
        list[float],
        list[Exception | None],
        BatchSampleStats,
    ]:
        """Coalesced ``bn_sample`` for a micro-batch of requests.

        Subgraphs are bit-for-bit what per-request :meth:`sample` calls
        produce (missing targets are registered up front; the batch then
        runs against one pinned snapshot version).  Adjacency lookups are
        charged once per *unique* node in the batch, attributed to the
        first request that touches it — the coalescing economics the union
        sampler makes real.

        Failure contract: faults poison individual requests — the fault
        gate runs once per request and a storage error while charging a
        request's nodes marks only that request failed (its error is
        returned, not raised), so one poisoned request degrades without
        failing the batch.  Weighted (rng) sampling is not offered; the
        batched path is deterministic top-k only.
        """
        n = len(uids)
        subgraphs: list[ComputationSubgraph | None] = [None] * n
        seconds = [0.0] * n
        errors: list[Exception | None] = [None] * n
        gates = [0.0] * n
        alive: list[int] = []
        for i, uid in enumerate(uids):
            try:
                gates[i] = self.faults.before_call(self.component) if self.faults else 0.0
            except StorageError as exc:
                errors[i] = exc
                continue
            if uid not in self.bn:
                self.bn.add_node(uid)
            alive.append(i)
        selection_cache = self._batch_selection_cache(fanout)
        sampled, stats, gate_seconds = self.sampler.sample_batch(
            [uids[i] for i in alive],
            hops=hops,
            fanout=fanout,
            allowed=allowed,
            selection_cache=selection_cache,
            now=max(nows, default=0.0),
        )
        # Tier indices are relative to the alive sublist; callers see batch
        # positions.  Batch-level gate cost (shard probes) is charged to the
        # first alive request (the first-toucher rule the unique-node
        # charging below already follows).
        if stats.partial:
            stats = replace(stats, partial=tuple(alive[j] for j in stats.partial))
        if alive and gate_seconds:
            gates[alive[0]] += gate_seconds
        charged: set[int] = set()
        for k, i in enumerate(alive):
            subgraph = sampled[k]
            charge = gates[i]
            try:
                charge += self.latency.charge_network()
                use_cache = self.cache is not None and self.cache.available
                if not use_cache:
                    charge += self.database.ping()
                for node in subgraph.nodes:
                    if node in charged:
                        continue
                    charged.add(node)
                    if use_cache:
                        _value, hit, cost = self.cache.get(("adj", node), nows[i])
                        charge += cost + self.latency.charge_sample_node()
                        if not hit:
                            _rows, query_cost = self.database.query("edges", node)
                            charge += query_cost
                            charge += self.cache.set(("adj", node), True, nows[i])
                    else:
                        degree = self.bn.degree(node)
                        charge += self.latency.charge_db_query(max(1, degree))
            except StorageError as exc:
                errors[i] = exc
                continue
            subgraphs[i] = subgraph
            seconds[i] = charge
        return subgraphs, seconds, errors, stats
