"""Model management: versioned registry with activation and rollback.

The paper retrains HAG offline on a daily basis and swaps it into the
prediction server; this module provides the registry that makes the swap
(and an emergency rollback) an O(1) pointer move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.hag import HAG

__all__ = ["ModelVersion", "ModelManager"]


@dataclass(slots=True)
class ModelVersion:
    """One registered model snapshot."""

    version: int
    state: dict[str, np.ndarray]
    trained_at: float
    metrics: dict[str, float] = field(default_factory=dict)


class ModelManager:
    """Keeps model snapshots; materializes the active one on demand."""

    def __init__(self, model_factory: Callable[[], HAG]) -> None:
        self._factory = model_factory
        self._versions: dict[int, ModelVersion] = {}
        self._active: int | None = None
        self._previous: int | None = None
        self._next_version = 1

    def register(
        self,
        state: dict[str, np.ndarray],
        trained_at: float,
        metrics: dict[str, float] | None = None,
        activate: bool = True,
    ) -> int:
        """Store a trained state dict; optionally make it the active model."""
        version = self._next_version
        self._next_version += 1
        self._versions[version] = ModelVersion(
            version=version,
            state={k: v.copy() for k, v in state.items()},
            trained_at=trained_at,
            metrics=dict(metrics or {}),
        )
        if activate:
            self.activate(version)
        return version

    def activate(self, version: int) -> None:
        """Make ``version`` the serving model (remembers the previous one)."""
        if version not in self._versions:
            raise KeyError(f"unknown model version {version}")
        if self._active is not None and self._active != version:
            self._previous = self._active
        self._active = version

    def rollback(self) -> int:
        """Re-activate the previously active version."""
        if self._previous is None:
            raise RuntimeError("no previous version to roll back to")
        self._active, self._previous = self._previous, self._active
        return self._active

    @property
    def active_version(self) -> int | None:
        return self._active

    def versions(self) -> list[ModelVersion]:
        """All registered versions, oldest first."""
        return sorted(self._versions.values(), key=lambda v: v.version)

    def materialize_active(self) -> HAG:
        """Build a model instance loaded with the active version's weights."""
        if self._active is None:
            raise RuntimeError("no active model version")
        model = self._factory()
        model.load_state_dict(self._versions[self._active].state)
        model.eval()
        return model
