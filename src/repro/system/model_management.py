"""Model management: versioned registry with activation and rollback.

The paper retrains HAG offline on a daily basis and swaps it into the
prediction server; this module provides the registry that makes the swap
(and an emergency rollback) an O(1) pointer move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.hag import HAG
from ..obs.tracing import Span

__all__ = ["ModelVersion", "ModelManager"]


@dataclass(slots=True)
class ModelVersion:
    """One registered model snapshot."""

    version: int
    state: dict[str, np.ndarray]
    trained_at: float
    metrics: dict[str, float] = field(default_factory=dict)


class ModelManager:
    """Keeps model snapshots; materializes the active one on demand.

    Satisfies the :class:`~repro.system.service.Service` protocol:
    :attr:`name`, :meth:`ping`, :meth:`stats` and :meth:`handle`
    (control-plane commands such as rollback, rather than a latency
    stage of the prediction pipeline).
    """

    def __init__(self, model_factory: Callable[[], HAG]) -> None:
        self._factory = model_factory
        self._versions: dict[int, ModelVersion] = {}
        self._active: int | None = None
        self._previous: int | None = None
        self._next_version = 1

    # ------------------------------------------------------------------
    # Service surface (see repro.system.service.Service)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name."""
        return "model_manager"

    def ping(self) -> float:
        """Liveness probe; raises when no model version is active."""
        if self._active is None:
            raise RuntimeError("no active model version")
        return 0.0

    def stats(self) -> dict[str, float]:
        """Registry counters (versions held, active/previous pointers)."""
        return {
            "versions": float(len(self._versions)),
            "active_version": float(self._active if self._active is not None else -1),
            "previous_version": float(
                self._previous if self._previous is not None else -1
            ),
        }

    def handle(
        self, request: dict[str, Any], span: Span | None = None
    ) -> tuple[Any, float]:
        """Execute one control-plane command; returns ``(result, seconds)``.

        ``request`` is a dict with an ``op`` key: ``{"op": "activate",
        "version": n}``, ``{"op": "rollback"}``, ``{"op": "active_version"}``
        or ``{"op": "materialize"}``.  Control-plane moves are O(1)
        pointer swaps, so the charged time is always ``0.0``.
        """
        op = request.get("op")
        if op == "activate":
            self.activate(int(request["version"]))
            result: Any = self._active
        elif op == "rollback":
            result = self.rollback()
        elif op == "active_version":
            result = self._active
        elif op == "materialize":
            result = self.materialize_active()
        else:
            raise ValueError(f"unknown model-manager op: {op!r}")
        if span is not None:
            span.add_event(f"model_manager.{op}", at=None, version=self._active)
        return result, 0.0

    def register(
        self,
        state: dict[str, np.ndarray],
        trained_at: float,
        metrics: dict[str, float] | None = None,
        activate: bool = True,
    ) -> int:
        """Store a trained state dict; optionally make it the active model."""
        version = self._next_version
        self._next_version += 1
        self._versions[version] = ModelVersion(
            version=version,
            state={k: v.copy() for k, v in state.items()},
            trained_at=trained_at,
            metrics=dict(metrics or {}),
        )
        if activate:
            self.activate(version)
        return version

    def activate(self, version: int) -> None:
        """Make ``version`` the serving model (remembers the previous one)."""
        if version not in self._versions:
            raise KeyError(f"unknown model version {version}")
        if self._active is not None and self._active != version:
            self._previous = self._active
        self._active = version

    def rollback(self) -> int:
        """Re-activate the previously active version."""
        if self._previous is None:
            raise RuntimeError("no previous version to roll back to")
        self._active, self._previous = self._previous, self._active
        return self._active

    @property
    def active_version(self) -> int | None:
        return self._active

    def versions(self) -> list[ModelVersion]:
        """All registered versions, oldest first."""
        return sorted(self._versions.values(), key=lambda v: v.version)

    def materialize_active(self) -> HAG:
        """Build a model instance loaded with the active version's weights."""
        if self._active is None:
            raise RuntimeError("no active model version")
        model = self._factory()
        model.load_state_dict(self._versions[self._active].state)
        model.eval()
        return model
