"""The serving front: admission control, priority queueing, dynamic
batching and simulated autoscaling in front of :class:`Turbo`.

Closed-loop benchmarks drive :meth:`Turbo.predict` directly; under
open-loop traffic (:mod:`repro.system.loadgen`) requests arrive whether
or not the system is keeping up, so production puts a queue in front.
:class:`QueueFrontend` is that queue, as a discrete-event loop on the
simulated clock:

* **admission control** — arrivals are rejected up front when the queue
  is at capacity or the estimated queueing delay already blows the
  request's deadline; rejected requests are served by the existing
  :class:`~repro.baselines.fallback.FallbackStack` ladder (bit-exact
  decisions, tagged ``degradation``/``degradation_reason``) — no request
  ever raises;
* **priority classes** — the queue is a priority heap on the arrival's
  class rank (FIFO within a class); interactive traffic overtakes batch
  traffic;
* **deadline shedding** — requests whose deadline passed while queued are
  shed to the fallback ladder at dispatch time instead of wasting a
  worker;
* **dynamic batch formation** — dispatch coalesces queued requests into
  one :meth:`Turbo.predict_batch` micro-batch, waiting up to
  ``batch_wait`` for the batch to fill but never past the point where the
  head request could still meet its deadline (*batch-until-deadline*);
* **simulated autoscaling** — an :class:`Autoscaler` adds/removes
  prediction workers from queue-depth watermarks with a cooldown, over
  any pool exposing ``scale_to`` (the in-process
  :class:`SimulatedWorkerPool` here, or the forked
  :class:`~repro.system.shard_router.ShardWorkerPool` — both satisfy the
  :class:`~repro.system.service.Service` protocol).

Everything is traced and metered: each arrival opens a ``queued_request``
root whose ``queue_wait`` child measures time in queue, served requests
join that trace (their ``request`` root parents under it via
``TraceContext``), shed requests close with a ``fallback`` child, and the
``turbo.queue.*`` metric series (see ``docs/OBSERVABILITY.md``) counts
every enqueued, batched, shed and autoscaled event.
``benchmarks/bench_loadtest.py`` sweeps offered QPS through this module.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Span
from .latency import LatencyBreakdown
from .loadgen import Arrival
from .service import PredictRequest
from .storage import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .turbo import Turbo, TurboResponse

__all__ = [
    "QueueConfig",
    "QueueRecord",
    "RequestQueue",
    "SimulatedWorkerPool",
    "Autoscaler",
    "QueueFrontend",
]


@dataclass(slots=True)
class QueueConfig:
    """Validated knobs of the serving front (mirrors ``TurboConfig`` style)."""

    #: admission cap: arrivals beyond this queue depth are shed immediately.
    max_depth: int = 128
    #: target micro-batch size for ``predict_batch``.
    batch_size: int = 16
    #: max seconds the head request waits for its batch to fill.
    batch_wait: float = 0.25
    #: shed at admission when the estimated delay blows the deadline.
    admission_deadline_aware: bool = True
    #: per-batch service-time prior (seconds) until the EWMA learns better.
    initial_service_estimate: float = 1.0
    #: EWMA weight of the latest observed batch wall time.
    service_ewma: float = 0.3
    min_workers: int = 1
    max_workers: int = 4
    #: simulated seconds before a newly added worker accepts work.
    worker_startup: float = 1.0
    #: scale up above this queue depth per worker ...
    scale_high: float = 3.0
    #: ... and down below this queue depth per worker.
    scale_low: float = 0.5
    #: min simulated seconds between autoscaling actions (hysteresis).
    scale_cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_wait < 0:
            raise ValueError("batch_wait cannot be negative")
        if self.initial_service_estimate <= 0:
            raise ValueError("initial_service_estimate must be positive")
        if not 0.0 < self.service_ewma <= 1.0:
            raise ValueError("service_ewma must be in (0, 1]")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.worker_startup < 0:
            raise ValueError("worker_startup cannot be negative")
        if self.scale_low >= self.scale_high:
            raise ValueError("scale_low must be < scale_high")
        if self.scale_cooldown < 0:
            raise ValueError("scale_cooldown cannot be negative")


@dataclass(slots=True)
class _QueuedItem:
    """One admitted arrival waiting for dispatch."""

    arrival: Arrival
    enqueued_at: float
    root: Span
    wait_span: Span


@dataclass(slots=True)
class QueueRecord:
    """Outcome of one arrival through the serving front."""

    arrival: Arrival
    #: "served" | "shed_admission" | "shed_deadline"
    outcome: str
    queue_wait: float
    completed_at: float
    response: "TurboResponse"
    #: the closed ``queued_request`` root of this arrival's trace.
    root: Span
    #: pool worker slot that served the batch (-1 when shed).
    worker: int = -1

    @property
    def served(self) -> bool:
        """Did this arrival reach the prediction path (vs. being shed)?"""
        return self.outcome == "served"


class RequestQueue:
    """Priority heap of admitted requests (class rank, then FIFO)."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, _QueuedItem]] = []
        self._seq = 0

    @property
    def depth(self) -> int:
        """Requests currently queued."""
        return len(self._heap)

    def push(self, item: _QueuedItem) -> None:
        """Enqueue one admitted request."""
        heapq.heappush(self._heap, (item.arrival.priority_rank, self._seq, item))
        self._seq += 1

    def peek(self) -> _QueuedItem:
        """The next request to dispatch (highest priority, oldest first)."""
        return self._heap[0][2]

    def pop_batch(
        self, now: float, limit: int
    ) -> tuple[list[_QueuedItem], list[_QueuedItem]]:
        """Pop up to ``limit`` dispatchable requests at time ``now``.

        Returns ``(batch, expired)`` — requests whose deadline has already
        passed are popped but routed to ``expired`` (deadline shedding) and
        do not consume batch slots.
        """
        batch: list[_QueuedItem] = []
        expired: list[_QueuedItem] = []
        while self._heap and len(batch) < limit:
            _, _, item = heapq.heappop(self._heap)
            if now >= item.arrival.deadline:
                expired.append(item)
            else:
                batch.append(item)
        return batch, expired


class SimulatedWorkerPool:
    """An autoscalable pool of prediction workers on the simulated clock.

    Each worker is a ``busy_until`` timestamp; dispatching a micro-batch
    runs :meth:`Turbo.predict_batch` and occupies the least-loaded worker
    for the batch's charged wall time.  Satisfies the
    :class:`~repro.system.service.Service` protocol so health checks and
    the :class:`Autoscaler` see the same surface as the real servers (and
    as the forked :class:`~repro.system.shard_router.ShardWorkerPool`).
    """

    def __init__(
        self, turbo: "Turbo", n_workers: int = 1, startup: float = 1.0
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if startup < 0:
            raise ValueError("startup cannot be negative")
        self.turbo = turbo
        self.startup = startup
        self._busy: list[float] = [0.0] * n_workers
        self._dispatched = 0
        self._batches = 0
        self._scale_ups = 0
        self._scale_downs = 0
        self.peak_size = n_workers

    # ------------------------------------------------------------------
    # Service protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Stable component name (``Service`` protocol)."""
        return "worker_pool"

    def ping(self) -> float:
        """Liveness probe; raises when no worker can serve."""
        if not self._busy:
            raise StorageError("no prediction workers in the pool")
        return 0.0

    def stats(self) -> dict[str, float]:
        """Flat dict of pool counters (dashboard snapshot)."""
        return {
            "workers": float(self.size),
            "peak_workers": float(self.peak_size),
            "batches": float(self._batches),
            "dispatched": float(self._dispatched),
            "scale_ups": float(self._scale_ups),
            "scale_downs": float(self._scale_downs),
        }

    def handle(self, request, span: Span | None = None):
        """Serve one micro-batch; ``request`` is ``(predict_requests, at)``."""
        requests, at = request
        responses, wall, _worker = self.dispatch(requests, at)
        return responses, wall

    # ------------------------------------------------------------------
    # Dispatch & scaling
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Workers currently in the pool."""
        return len(self._busy)

    def next_free(self) -> float:
        """Earliest simulated time any worker is free."""
        if not self._busy:
            raise StorageError("no prediction workers in the pool")
        return min(self._busy)

    def dispatch(
        self, requests: Sequence[PredictRequest], at: float
    ) -> tuple[list["TurboResponse"], float, int]:
        """Run one micro-batch on the least-loaded worker starting at ``at``.

        Returns ``(responses, wall_seconds, worker_index)``.  The
        deployment clock is pulled forward to ``at`` first so charged
        span timestamps stay on the open-loop timeline.
        """
        if not self._busy:
            raise StorageError("no prediction workers in the pool")
        worker = min(range(len(self._busy)), key=self._busy.__getitem__)
        self.turbo.clock.advance_to(at)
        responses = self.turbo.predict_batch(list(requests))
        wall = max((r.breakdown.total for r in responses), default=0.0)
        self._busy[worker] = max(self._busy[worker], at) + wall
        self._dispatched += len(responses)
        self._batches += 1
        return responses, wall, worker

    def scale_to(self, n: int, now: float = 0.0) -> int:
        """Grow/shrink the pool to ``n`` workers; returns the new size.

        New workers come online after :attr:`startup` simulated seconds;
        shrinking retires the most-idle workers first (their in-flight
        batch, if any, has already been charged).
        """
        if n < 1:
            raise ValueError("cannot scale below one worker")
        while len(self._busy) < n:
            self._busy.append(now + self.startup)
            self._scale_ups += 1
        self.peak_size = max(self.peak_size, len(self._busy))
        if len(self._busy) > n:
            self._busy.sort(reverse=True)  # retire the most-idle (earliest free)
            retired = len(self._busy) - n
            del self._busy[n:]
            self._scale_downs += retired
        return len(self._busy)


class Autoscaler:
    """Adds/removes workers from queue-depth watermarks with hysteresis.

    Depth above ``scale_high`` per worker grows the pool by one; depth
    below ``scale_low`` per worker shrinks it by one; actions are at
    least ``scale_cooldown`` simulated seconds apart, and the pool stays
    inside ``[min_workers, max_workers]``.  Every action is counted in
    ``turbo.queue.scale_up`` / ``turbo.queue.scale_down`` and reflected
    in the ``turbo.queue.workers`` gauge.
    """

    def __init__(self, pool, config: QueueConfig, registry: MetricsRegistry) -> None:
        self.pool = pool
        self.config = config
        self._workers = registry.gauge("turbo.queue.workers")
        self._ups = registry.counter("turbo.queue.scale_up")
        self._downs = registry.counter("turbo.queue.scale_down")
        self._last_action = -math.inf
        self._workers.set(float(pool.size))

    def observe(self, depth: int, now: float) -> int:
        """React to the current queue depth; returns the pool size after."""
        cfg = self.config
        size = self.pool.size
        if now - self._last_action < cfg.scale_cooldown:
            return size
        target = size
        if depth > cfg.scale_high * size and size < cfg.max_workers:
            target = size + 1
        elif depth < cfg.scale_low * size and size > cfg.min_workers:
            target = size - 1
        if target == size:
            return size
        self.pool.scale_to(target, now=now)
        (self._ups if target > size else self._downs).inc()
        self._workers.set(float(target))
        self._last_action = now
        return target


class QueueFrontend:
    """Discrete-event serving front: one pass over an open-loop arrival trace.

    Construct via :meth:`Turbo.frontend`; :meth:`run` replays a
    time-ordered arrival sequence and returns one :class:`QueueRecord`
    per arrival — every record carries a closed trace and a total
    :class:`~repro.system.turbo.TurboResponse` (shed requests answer from
    the fallback ladder; nothing raises).
    """

    def __init__(
        self,
        turbo: "Turbo",
        config: QueueConfig | None = None,
        pool: SimulatedWorkerPool | None = None,
    ) -> None:
        self.turbo = turbo
        self.config = config or QueueConfig()
        self.pool = pool or SimulatedWorkerPool(
            turbo,
            n_workers=self.config.min_workers,
            startup=self.config.worker_startup,
        )
        self.queue = RequestQueue()
        registry = turbo.metrics
        self.autoscaler = Autoscaler(self.pool, self.config, registry)
        self.records: list[QueueRecord] = []
        self.peak_depth = 0
        self._service_est = self.config.initial_service_estimate
        #: monotonic event cursor: dispatches never happen before an
        #: already-processed arrival (a scale-up can free a worker *earlier*
        #: than arrivals the loop has already admitted; without the cursor
        #: the next batch would dispatch in their past).
        self._now = -math.inf
        self._offered = registry.counter("turbo.queue.offered")
        self._admitted = registry.counter("turbo.queue.admitted")
        self._shed = registry.counter("turbo.queue.shed")
        self._shed_admission = registry.counter("turbo.queue.shed.admission")
        self._shed_deadline = registry.counter("turbo.queue.shed.deadline")
        self._depth = registry.histogram("turbo.queue.depth")
        self._wait = registry.histogram("turbo.queue.wait")
        self._e2e = registry.histogram("turbo.queue.e2e")
        self._batches = registry.counter("turbo.queue.batches")
        self._batch_size = registry.histogram("turbo.queue.batch_size")
        self._deadline_misses = registry.counter("turbo.queue.deadline_misses")

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, arrivals: Sequence[Arrival]) -> list[QueueRecord]:
        """Replay ``arrivals`` (time-ordered) through the serving front.

        Interleaves arrival events with dispatch events in simulated-time
        order, then drains the queue; returns this run's records in
        completion order (also appended to :attr:`records`).
        """
        for earlier, later in zip(arrivals, arrivals[1:]):
            if later.at < earlier.at:
                raise ValueError("arrivals must be nondecreasing in time")
        first = len(self.records)
        i, n = 0, len(arrivals)
        while i < n or self.queue.depth:
            if self.queue.depth == 0:
                self._on_arrival(arrivals[i])
                i += 1
                continue
            at = max(self._next_dispatch_time(draining=i >= n), self._now)
            if i < n and arrivals[i].at < at:
                self._on_arrival(arrivals[i])
                i += 1
                continue
            self._dispatch(at)
        return self.records[first:]

    def responses(self) -> list["TurboResponse"]:
        """Every response produced so far (served and shed alike)."""
        return [record.response for record in self.records]

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _on_arrival(self, arrival: Arrival) -> None:
        self._now = max(self._now, arrival.at)
        self._offered.inc()
        depth = self.queue.depth
        self._depth.observe(float(depth))
        self.peak_depth = max(self.peak_depth, depth)
        root = self.turbo.tracer.start_trace(
            "queued_request",
            at=arrival.at,
            uid=arrival.uid,
            txn_id=arrival.txn.txn_id,
            priority=arrival.priority,
            deadline=arrival.deadline,
        )
        if arrival.burst:
            root.annotate("burst", arrival.burst)
        wait_span = root.child("queue_wait", at=arrival.at)
        item = _QueuedItem(
            arrival=arrival, enqueued_at=arrival.at, root=root, wait_span=wait_span
        )
        if depth >= self.config.max_depth:
            self._finish_shed(item, arrival.at, "shed_admission")
        elif (
            self.config.admission_deadline_aware
            and arrival.at + self._estimated_delay(depth) > arrival.deadline
        ):
            self._finish_shed(item, arrival.at, "shed_admission")
        else:
            self.queue.push(item)
            self._admitted.inc()
        self.autoscaler.observe(self.queue.depth, arrival.at)

    def _estimated_delay(self, depth: int) -> float:
        """Rough time-to-completion for a request joining at ``depth``."""
        batches_ahead = math.ceil((depth + 1) / self.config.batch_size)
        return batches_ahead * self._service_est / max(1, self.pool.size)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _next_dispatch_time(self, draining: bool) -> float:
        """When the next micro-batch should start (batch-until-deadline).

        Never before a worker is free or the head request was enqueued; a
        full batch goes immediately; otherwise hold for ``batch_wait`` to
        let the batch fill — but no later than the head request's last
        feasible start (deadline minus the estimated service time), and
        not at all once the arrival stream is exhausted (nothing more to
        batch with).
        """
        head = self.queue.peek()
        base = max(self.pool.next_free(), head.enqueued_at)
        if draining or self.queue.depth >= self.config.batch_size:
            return base
        latest_start = head.arrival.deadline - self._service_est
        return max(base, min(head.enqueued_at + self.config.batch_wait, latest_start))

    def _dispatch(self, at: float) -> None:
        self._now = max(self._now, at)
        batch, expired = self.queue.pop_batch(at, self.config.batch_size)
        for item in expired:
            self._finish_shed(item, at, "shed_deadline")
        if not batch:
            return
        requests = [
            PredictRequest(txn=item.arrival.txn, now=at, trace=item.root.context())
            for item in batch
        ]
        responses, wall, worker = self.pool.dispatch(requests, at)
        if responses:
            alpha = self.config.service_ewma
            self._service_est = (1.0 - alpha) * self._service_est + alpha * wall
        self._batches.inc()
        self._batch_size.observe(float(len(batch)))
        for item, response in zip(batch, responses):
            wait = at - item.enqueued_at
            item.wait_span.finish(wait)
            completed_at = at + response.breakdown.total
            e2e = wait + response.breakdown.total
            root = item.root
            root.annotate("outcome", "served")
            root.annotate("queue_wait", wait)
            root.annotate("worker", worker)
            if completed_at > item.arrival.deadline:
                self._deadline_misses.inc()
                root.annotate("deadline_missed", True)
            if response.degraded:
                root.annotate_tree("degradation", response.degradation)
                root.annotate_tree("degradation_reason", response.degradation_reason)
            self.turbo.tracer.finish_trace(root, e2e)
            self._wait.observe(wait)
            self._e2e.observe(e2e)
            self.records.append(
                QueueRecord(
                    arrival=item.arrival,
                    outcome="served",
                    queue_wait=wait,
                    completed_at=completed_at,
                    response=response,
                    root=root,
                    worker=worker,
                )
            )
        self.autoscaler.observe(self.queue.depth, at)

    # ------------------------------------------------------------------
    # Shedding
    # ------------------------------------------------------------------
    def _finish_shed(self, item: _QueuedItem, now: float, outcome: str) -> None:
        """Answer a shed request from the fallback ladder and close its trace.

        The decision is bit-for-bit what :meth:`FallbackStack.decide`
        returns for the transaction (pinned by
        ``tests/test_system/test_queue_degradation.py``); the charge is
        the same ``charge_fallback`` the degraded in-pipeline path pays.
        """
        from .turbo import TurboResponse  # local import avoids a module cycle

        turbo = self.turbo
        wait = now - item.enqueued_at
        item.wait_span.finish(wait)
        fallback_span = item.root.child("fallback", at=now)
        charge = turbo.prediction_server.latency.charge_fallback()
        breakdown = LatencyBreakdown(prediction=charge)
        if turbo.fallbacks is None:
            level, probability, blocked = "reject", 1.0, True
        else:
            decision = turbo.fallbacks.decide(item.arrival.txn)
            level, probability, blocked = (
                decision.level,
                decision.probability,
                decision.blocked,
            )
        fallback_span.annotate("level", level)
        fallback_span.finish(charge)
        root = item.root
        root.annotate("outcome", outcome)
        root.annotate("queue_wait", wait)
        root.annotate("probability", probability)
        root.annotate("blocked", blocked)
        root.annotate_tree("degradation", level)
        root.annotate_tree("degradation_reason", outcome)
        turbo.tracer.finish_trace(root, wait + charge)
        response = TurboResponse(
            uid=item.arrival.uid,
            txn_id=item.arrival.txn.txn_id,
            probability=probability,
            blocked=blocked,
            breakdown=breakdown,
            subgraph_size=0,
            timestamp=item.arrival.at,
            degradation=level,
            degradation_reason=outcome,
            retries=0,
            span=root,
        )
        turbo.responses.append(response)
        turbo.monitor.record_request(
            breakdown, blocked=blocked, subgraph_size=0, degradation=level, retries=0
        )
        self._shed.inc()
        (self._shed_admission if outcome == "shed_admission" else self._shed_deadline).inc()
        self.records.append(
            QueueRecord(
                arrival=item.arrival,
                outcome=outcome,
                queue_wait=wait,
                completed_at=now + charge,
                response=response,
                root=root,
            )
        )
