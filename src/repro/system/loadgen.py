"""Seeded open-loop workload generation on the simulated clock.

Every benchmark before PR 7 was *closed-loop*: issue a request, wait for
the answer, issue the next.  Closed-loop measurement can never observe
queueing delay — the dominant latency term at saturation — because the
client self-throttles to the server's pace.  This module generates
*open-loop* traffic: arrival times are drawn from a nonhomogeneous
Poisson process that does not care how fast the server answers, which is
what lets ``benchmarks/bench_loadtest.py`` map the latency-vs-offered-QPS
frontier.

The rate function composes three production-shaped terms:

* a **base rate** in requests per simulated second;
* a **diurnal cycle** — a sinusoid over the day, because leasing
  applications follow human activity;
* **fraud bursts** — multiplicative spikes aligned with the attack waves
  of a :mod:`repro.datagen.drift` scenario (``fraud_burst_schedule``),
  during which sampled traffic is biased toward fraudulent users.

Arrivals are drawn by Poisson thinning (Lewis & Shedler): candidate gaps
are exponential at the pattern's peak rate and each candidate is kept
with probability ``rate_at(t) / peak``, which samples the exact
nonhomogeneous process.  Everything is seeded — the same generator
produces bit-identical arrival traces (``tests/test_system/test_loadgen.py``
pins this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..datagen.drift import FraudBurst
from ..datagen.entities import Transaction

__all__ = [
    "BurstWindow",
    "PriorityClass",
    "DEFAULT_PRIORITY_CLASSES",
    "TrafficPattern",
    "Arrival",
    "OpenLoopLoadGenerator",
    "bursts_from_drift",
]


@dataclass(frozen=True, slots=True)
class BurstWindow:
    """One traffic spike: a half-open window with a rate boost.

    While active, the offered rate is multiplied by ``boost`` and each
    arrival is drawn from the fraud user pool with probability
    ``fraud_bias`` (when the generator knows any fraud users).
    """

    start: float
    end: float
    boost: float = 2.0
    fraud_bias: float = 0.0
    label: str = "burst"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("burst window must have end > start")
        if self.boost < 1.0:
            raise ValueError("burst boost must be >= 1")
        if not 0.0 <= self.fraud_bias <= 1.0:
            raise ValueError("fraud_bias must be in [0, 1]")

    def active(self, t: float) -> bool:
        """Is simulated time ``t`` inside this window (half-open)?"""
        return self.start <= t < self.end


@dataclass(frozen=True, slots=True)
class PriorityClass:
    """One request class: queue rank, deadline slack and traffic share.

    Lower ``rank`` is served first; ``deadline`` is the relative slack in
    simulated seconds from arrival to required completion; ``weight`` is
    the class's share of generated traffic (normalized across classes).
    """

    name: str
    rank: int
    deadline: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("class deadline must be positive")
        if self.weight <= 0:
            raise ValueError("class weight must be positive")


#: production-shaped default mix: half the traffic is an applicant waiting
#: at checkout, a batch tail tolerates a minute.
DEFAULT_PRIORITY_CLASSES = (
    PriorityClass("interactive", rank=0, deadline=6.0, weight=0.5),
    PriorityClass("standard", rank=1, deadline=15.0, weight=0.35),
    PriorityClass("batch", rank=2, deadline=60.0, weight=0.15),
)


@dataclass(frozen=True, slots=True)
class TrafficPattern:
    """The offered-rate function: base QPS x diurnal cycle x fraud bursts."""

    base_qps: float
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 86400.0
    diurnal_phase: float = 0.0
    bursts: tuple[BurstWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.base_qps <= 0:
            raise ValueError("base_qps must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        object.__setattr__(self, "bursts", tuple(self.bursts))

    def burst_at(self, t: float) -> BurstWindow | None:
        """The first burst window active at ``t`` (None outside all bursts)."""
        for burst in self.bursts:
            if burst.active(t):
                return burst
        return None

    def rate_at(self, t: float) -> float:
        """Offered rate in requests per simulated second at time ``t``."""
        rate = self.base_qps
        if self.diurnal_amplitude:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * (t - self.diurnal_phase) / self.diurnal_period
            )
        for burst in self.bursts:
            if burst.active(t):
                rate *= burst.boost
        return rate

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` (the thinning envelope).

        Overlapping bursts multiply, so the product of every boost times
        the diurnal crest is always a valid (if conservative) bound.
        """
        peak = self.base_qps * (1.0 + self.diurnal_amplitude)
        for burst in self.bursts:
            peak *= burst.boost
        return peak


@dataclass(frozen=True, slots=True)
class Arrival:
    """One generated request arrival on the simulated clock."""

    at: float
    txn: Transaction
    uid: int
    priority: str
    priority_rank: int
    #: absolute completion deadline on the simulated clock.
    deadline: float
    #: label of the burst window this arrival landed in ("" outside bursts).
    burst: str = ""


def bursts_from_drift(
    schedule: Iterable[FraudBurst],
    fraud_bias: float = 0.6,
) -> tuple[BurstWindow, ...]:
    """Convert a ``datagen.drift.fraud_burst_schedule`` into burst windows.

    The drift period's intensity becomes the rate boost and the window is
    labeled ``drift-<period>``, so a load-test trace can be joined back to
    the exact drift period that caused each spike.  ``fraud_bias`` scales
    with drift level too: more evolved campaigns concentrate more of the
    burst traffic on fraud accounts.
    """
    if not 0.0 <= fraud_bias <= 1.0:
        raise ValueError("fraud_bias must be in [0, 1]")
    return tuple(
        BurstWindow(
            start=burst.start,
            end=burst.end,
            boost=burst.intensity,
            fraud_bias=fraud_bias * burst.drift_level,
            label=f"drift-{burst.period_index}",
        )
        for burst in schedule
    )


@dataclass(slots=True)
class OpenLoopLoadGenerator:
    """Draws seeded Poisson arrival traces over a transaction pool.

    ``transactions`` is the population requests are drawn from (uniformly,
    except inside burst windows where the draw is biased toward
    ``fraud_uids``); each arrival is assigned a :class:`PriorityClass` by
    its traffic weight and stamped with the class's absolute deadline.

    :meth:`generate` re-seeds its own generator on every call, so calling
    it twice — or constructing two generators with the same seed — yields
    bit-identical traces.
    """

    pattern: TrafficPattern
    transactions: Sequence[Transaction]
    fraud_uids: frozenset[int] = frozenset()
    classes: tuple[PriorityClass, ...] = DEFAULT_PRIORITY_CLASSES
    seed: int = 0
    _fraud_pool: tuple[Transaction, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.transactions:
            raise ValueError("need a non-empty transaction pool")
        if not self.classes:
            raise ValueError("need at least one priority class")
        self.transactions = tuple(self.transactions)
        self.fraud_uids = frozenset(int(u) for u in self.fraud_uids)
        self.classes = tuple(self.classes)
        self._fraud_pool = tuple(
            txn for txn in self.transactions if int(txn.uid) in self.fraud_uids
        )

    def generate(self, start: float, horizon: float) -> list[Arrival]:
        """All arrivals in ``[start, start + horizon)``, nondecreasing in time."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(self.seed)
        pattern = self.pattern
        peak = pattern.peak_rate()
        weights = np.asarray([c.weight for c in self.classes], dtype=float)
        weights /= weights.sum()
        n_pool = len(self.transactions)
        n_fraud = len(self._fraud_pool)
        arrivals: list[Arrival] = []
        end = start + horizon
        t = start
        while True:
            # Thinning: candidates at the peak rate, kept w.p. rate/peak.
            t += float(rng.exponential(1.0 / peak))
            if t >= end:
                break
            if float(rng.random()) * peak > pattern.rate_at(t):
                continue
            burst = pattern.burst_at(t)
            bias = burst.fraud_bias if burst is not None else 0.0
            if n_fraud and bias and float(rng.random()) < bias:
                txn = self._fraud_pool[int(rng.integers(n_fraud))]
            else:
                txn = self.transactions[int(rng.integers(n_pool))]
            cls = self.classes[int(rng.choice(len(self.classes), p=weights))]
            arrivals.append(
                Arrival(
                    at=t,
                    txn=txn,
                    uid=int(txn.uid),
                    priority=cls.name,
                    priority_rank=cls.rank,
                    deadline=t + cls.deadline,
                    burst=burst.label if burst is not None else "",
                )
            )
        return arrivals
