"""BLP baseline — Behavior Language Processing (Min et al.).

Constructs an offline user–entity bipartite graph from the behavior logs,
runs a *homophily test* to decide which behavior types carry label-coherent
co-occurrence (types failing the test are excluded from the graph), extracts
structural graph features (degrees, clustering coefficient, quadrangle
counts) on the user–user projection, and feeds them — concatenated with the
original handcrafted features — to a GBDT classifier (LightGBM in the
paper, our GBDT here).

Note the method is *offline/transductive*: the bipartite graph covers the
full log history including the users under evaluation, which is exactly the
deployment limitation the paper contrasts Turbo's inductive serving against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datagen.behavior_types import EDGE_TYPES, BehaviorType
from ..datagen.entities import BehaviorLog
from .gbdt import GradientBoostingClassifier

__all__ = ["BLPFeatureExtractor", "BLPClassifier", "BLP_FEATURE_NAMES"]

BLP_FEATURE_NAMES: tuple[str, ...] = (
    "entity_count",
    "shared_entity_count",
    "projected_degree",
    "projected_weighted_degree",
    "clustering_coefficient",
    "quadrangle_count",
    "max_entity_size",
)


class BLPFeatureExtractor:
    """Structural features from the (homophily-tested) bipartite graph."""

    def __init__(
        self,
        edge_types: Sequence[BehaviorType] = EDGE_TYPES,
        max_entity_degree: int = 80,
        homophily_threshold: float = 0.6,
    ) -> None:
        self.edge_types = tuple(edge_types)
        self.max_entity_degree = max_entity_degree
        self.homophily_threshold = homophily_threshold
        self._user_entities: dict[int, set[int]] = {}
        self._entity_users: list[list[int]] = []
        self.kept_types: set[BehaviorType] = set()

    def fit(
        self,
        logs: Sequence[BehaviorLog],
        train_labels: dict[int, int],
    ) -> "BLPFeatureExtractor":
        """Run the homophily test per behavior type, then build the graph.

        A type passes when, among labeled-train user pairs co-occurring on
        its entities, the same-label fraction exceeds the threshold — i.e.
        its co-occurrence relation is label-coherent enough that structural
        features over it are meaningful.
        """
        wanted = set(self.edge_types)
        per_type_entities: dict[BehaviorType, dict[str, set[int]]] = {
            t: {} for t in wanted
        }
        for log in logs:
            if log.btype in wanted:
                per_type_entities[log.btype].setdefault(log.value, set()).add(log.uid)

        self.kept_types = set()
        for btype, entities in per_type_entities.items():
            same = different = 0
            for members in entities.values():
                labeled = [train_labels[u] for u in members if u in train_labels]
                if len(labeled) < 2 or len(members) > self.max_entity_degree:
                    continue
                positives = sum(labeled)
                negatives = len(labeled) - positives
                same += positives * (positives - 1) // 2
                same += negatives * (negatives - 1) // 2
                different += positives * negatives
            total = same + different
            if total > 0 and same / total >= self.homophily_threshold:
                self.kept_types.add(btype)

        # Build the bipartite graph over the types that passed the test.
        entity_users: list[list[int]] = []
        user_entities: dict[int, set[int]] = {}
        for btype in self.kept_types:
            for members in per_type_entities[btype].values():
                if len(members) < 2:
                    continue
                eid = len(entity_users)
                entity_users.append(sorted(members))
                for uid in members:
                    user_entities.setdefault(uid, set()).add(eid)
        self._entity_users = entity_users
        self._user_entities = user_entities
        return self

    def features(self, uid: int) -> np.ndarray:
        """Structural feature vector for one user (zeros for unseen users)."""
        entities = self._user_entities.get(uid)
        if not entities:
            return np.zeros(len(BLP_FEATURE_NAMES))

        shared = [
            e for e in entities if len(self._entity_users[e]) <= self.max_entity_degree
        ]
        neighbor_weights: dict[int, int] = {}
        for e in shared:
            for v in self._entity_users[e]:
                if v != uid:
                    neighbor_weights[v] = neighbor_weights.get(v, 0) + 1
        degree = len(neighbor_weights)
        weighted_degree = float(sum(neighbor_weights.values()))
        # Quadrangles u-e-v-e'-u: pairs of entities shared with a neighbour.
        quadrangles = sum(w * (w - 1) // 2 for w in neighbor_weights.values())
        clustering = self._clustering(uid, list(neighbor_weights))
        max_size = max((len(self._entity_users[e]) for e in entities), default=0)
        return np.asarray(
            [
                float(len(entities)),
                float(len(shared)),
                float(degree),
                weighted_degree,
                clustering,
                float(quadrangles),
                float(max_size),
            ]
        )

    def _clustering(self, uid: int, neighbors: list[int], cap: int = 30) -> float:
        """Local clustering coefficient on the projection (capped for cost)."""
        if len(neighbors) < 2:
            return 0.0
        neighbors = neighbors[:cap]
        neighbor_set = set(neighbors)
        links = 0
        for v in neighbors:
            v_entities = self._user_entities.get(v, set())
            peers: set[int] = set()
            for e in v_entities:
                if len(self._entity_users[e]) <= self.max_entity_degree:
                    peers.update(self._entity_users[e])
            links += len((peers & neighbor_set) - {v})
        k = len(neighbors)
        return links / (k * (k - 1))

    def matrix(self, uids: Sequence[int]) -> np.ndarray:
        """Stack the per-user graph feature vectors."""
        return np.stack([self.features(u) for u in uids])


class BLPClassifier:
    """BLP end-to-end: graph features (+ original features) -> GBDT."""

    def __init__(
        self,
        use_original_features: bool = True,
        gbdt_params: dict | None = None,
        extractor: BLPFeatureExtractor | None = None,
    ) -> None:
        self.use_original_features = use_original_features
        self.extractor = extractor or BLPFeatureExtractor()
        self.classifier = GradientBoostingClassifier(**(gbdt_params or {}))
        self._fitted = False

    def fit(
        self,
        logs: Sequence[BehaviorLog],
        train_uids: Sequence[int],
        train_labels: np.ndarray,
        train_features: np.ndarray | None = None,
    ) -> "BLPClassifier":
        """Fit the homophily test, graph features and the GBDT."""
        label_map = {u: int(l) for u, l in zip(train_uids, train_labels)}
        self.extractor.fit(logs, label_map)
        graph_features = self.extractor.matrix(train_uids)
        design = self._design(graph_features, train_features)
        self.classifier.fit(design, np.asarray(train_labels))
        self._fitted = True
        return self

    def predict_proba(
        self, uids: Sequence[int], features: np.ndarray | None = None
    ) -> np.ndarray:
        """Fraud probabilities for ``uids`` from the fitted pipeline."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        graph_features = self.extractor.matrix(uids)
        return self.classifier.predict_proba(self._design(graph_features, features))

    def _design(
        self, graph_features: np.ndarray, original: np.ndarray | None
    ) -> np.ndarray:
        if self.use_original_features:
            if original is None:
                raise ValueError("original features required but not supplied")
            return np.hstack([graph_features, original])
        return graph_features
