"""Regression tree with second-order (XGBoost-style) split gain.

The building block of the GBDT baseline, which stands in for LightGBM in the
GBDT / BLP / DTX experiments.  Splits are found by exact greedy search over
sorted feature values using gradient/hessian prefix sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegressionTree", "TreeNode"]


@dataclass(slots=True)
class TreeNode:
    """A binary tree node; leaves carry the additive weight."""

    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    weight: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Fit a regression tree to gradients/hessians of a differentiable loss.

    Leaf weights are the Newton step ``-G / (H + reg_lambda)``.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        min_gain: float = 1e-6,
        reg_lambda: float = 1.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.reg_lambda = reg_lambda
        self.root: TreeNode | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        feature_indices: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Grow the tree on per-row gradients and hessians."""
        features = np.asarray(features, dtype=np.float64)
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if feature_indices is None:
            feature_indices = np.arange(features.shape[1])
        rows = np.arange(features.shape[0])
        self.root = self._grow(features, gradients, hessians, rows, feature_indices, 0)
        return self

    def _leaf(self, gradients: np.ndarray, hessians: np.ndarray, rows: np.ndarray) -> TreeNode:
        g = gradients[rows].sum()
        h = hessians[rows].sum()
        return TreeNode(weight=-g / (h + self.reg_lambda))

    def _grow(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        rows: np.ndarray,
        feature_indices: np.ndarray,
        depth: int,
    ) -> TreeNode:
        if depth >= self.max_depth or len(rows) < 2 * self.min_samples_leaf:
            return self._leaf(gradients, hessians, rows)

        best_gain = self.min_gain
        best_feature = -1
        best_threshold = 0.0
        g_total = gradients[rows].sum()
        h_total = hessians[rows].sum()
        parent_score = g_total**2 / (h_total + self.reg_lambda)

        for feature in feature_indices:
            column = features[rows, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            g_cum = np.cumsum(gradients[rows][order])
            h_cum = np.cumsum(hessians[rows][order])
            # Candidate boundaries: positions where the value changes, with
            # min_samples_leaf on each side.
            idx = np.arange(1, len(rows))
            valid = sorted_vals[1:] != sorted_vals[:-1]
            valid &= (idx >= self.min_samples_leaf) & (
                idx <= len(rows) - self.min_samples_leaf
            )
            if not valid.any():
                continue
            positions = idx[valid]
            g_left = g_cum[positions - 1]
            h_left = h_cum[positions - 1]
            g_right = g_total - g_left
            h_right = h_total - h_left
            gains = (
                g_left**2 / (h_left + self.reg_lambda)
                + g_right**2 / (h_right + self.reg_lambda)
                - parent_score
            )
            local_best = int(np.argmax(gains))
            if gains[local_best] > best_gain:
                best_gain = float(gains[local_best])
                best_feature = int(feature)
                pos = positions[local_best]
                best_threshold = float(
                    0.5 * (sorted_vals[pos - 1] + sorted_vals[pos])
                )

        if best_feature < 0:
            return self._leaf(gradients, hessians, rows)

        mask = features[rows, best_feature] <= best_threshold
        left_rows = rows[mask]
        right_rows = rows[~mask]
        if len(left_rows) < self.min_samples_leaf or len(right_rows) < self.min_samples_leaf:
            return self._leaf(gradients, hessians, rows)
        return TreeNode(
            feature=best_feature,
            threshold=best_threshold,
            left=self._grow(features, gradients, hessians, left_rows, feature_indices, depth + 1),
            right=self._grow(features, gradients, hessians, right_rows, feature_indices, depth + 1),
        )

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Leaf weights for every row (vectorized routing)."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(features.shape[0])
        # Iterative routing: vectorized per node via index partitions.
        stack: list[tuple[TreeNode, np.ndarray]] = [
            (self.root, np.arange(features.shape[0]))
        ]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                out[rows] = node.weight
                continue
            mask = features[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a stump)."""
        def _depth(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root)
