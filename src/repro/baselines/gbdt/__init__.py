"""Gradient boosted trees (stand-in for LightGBM)."""

from .boosting import GradientBoostingClassifier
from .tree import RegressionTree, TreeNode

__all__ = ["GradientBoostingClassifier", "RegressionTree", "TreeNode"]
