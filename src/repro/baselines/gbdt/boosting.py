"""Gradient Boosted Decision Trees with logistic loss (LightGBM stand-in)."""

from __future__ import annotations

import numpy as np

from .tree import RegressionTree

__all__ = ["GradientBoostingClassifier"]


class GradientBoostingClassifier:
    """Binary GBDT: additive regression trees on the logistic loss.

    Second-order boosting (gradients ``p - y``, hessians ``p (1 - p)``),
    shrinkage, row subsampling and column subsampling — the algorithmic core
    shared with LightGBM, which the paper uses as the classifier for the
    GBDT, BLP and DTX baselines.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        subsample: float = 0.9,
        colsample: float = 0.9,
        reg_lambda: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0 or not 0.0 < colsample <= 1.0:
            raise ValueError("subsample/colsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.colsample = colsample
        self.reg_lambda = reg_lambda
        self.seed = seed
        self.trees_: list[RegressionTree] = []
        self.base_score_: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostingClassifier":
        """Fit the boosted ensemble on binary labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels disagree on row count")
        rng = np.random.default_rng(self.seed)
        n, d = features.shape

        positive_rate = float(np.clip(labels.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(positive_rate / (1.0 - positive_rate)))
        margin = np.full(n, self.base_score_)
        self.trees_ = []

        for _ in range(self.n_estimators):
            p = 1.0 / (1.0 + np.exp(-margin))
            gradients = p - labels
            hessians = np.maximum(p * (1.0 - p), 1e-6)

            if self.subsample < 1.0:
                rows = rng.random(n) < self.subsample
                if not rows.any():
                    rows[rng.integers(n)] = True
            else:
                rows = np.ones(n, dtype=bool)
            if self.colsample < 1.0:
                k = max(1, int(round(d * self.colsample)))
                cols = rng.choice(d, size=k, replace=False)
            else:
                cols = np.arange(d)

            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            tree.fit(features[rows], gradients[rows], hessians[rows], cols)
            update = tree.predict(features)
            margin += self.learning_rate * update
            self.trees_.append(tree)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Additive margin (log-odds) of the ensemble."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        margin = np.full(features.shape[0], self.base_score_)
        for tree in self.trees_:
            margin += self.learning_rate * tree.predict(features)
        return margin

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraud probabilities via the sigmoid of the additive margin."""
        return 1.0 / (1.0 + np.exp(-self.decision_function(features)))

    def staged_train_loss(
        self, features: np.ndarray, labels: np.ndarray
    ) -> list[float]:
        """Log-loss after each boosting stage (for monotonicity tests)."""
        labels = np.asarray(labels, dtype=np.float64)
        margin = np.full(features.shape[0], self.base_score_)
        losses = []
        for tree in self.trees_:
            margin += self.learning_rate * tree.predict(features)
            p = np.clip(1.0 / (1.0 + np.exp(-margin)), 1e-12, 1 - 1e-12)
            losses.append(float(-np.mean(labels * np.log(p) + (1 - labels) * np.log(1 - p))))
        return losses
