"""Linear Support Vector Machine baseline (Table III)."""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVM"]


class LinearSVM:
    """Linear SVM trained by SGD on the regularized hinge loss.

    ``predict_proba`` squashes the margin through a sigmoid whose scale is
    calibrated on the training margins (a lightweight Platt scaling), so the
    0.5 threshold corresponds to the decision boundary.
    """

    def __init__(
        self,
        c: float = 1.0,
        epochs: int = 200,
        lr: float = 0.01,
        batch_size: int = 64,
        class_weight: float | None = None,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError("C must be positive")
        self.c = c
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        #: multiplier on the positive class's hinge gradient; ``None``
        #: derives sqrt(n_neg / n_pos) from the training labels.
        self.class_weight = class_weight
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._margin_scale: float = 1.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Fit by SGD on the class-weighted hinge loss."""
        features = np.asarray(features, dtype=np.float64)
        signs = np.where(np.asarray(labels) > 0.5, 1.0, -1.0)
        n, d = features.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        lam = 1.0 / (self.c * n)
        n_pos = max(1.0, float((signs > 0).sum()))
        if self.class_weight is not None:
            pos_weight = self.class_weight
        else:
            pos_weight = float(np.sqrt(max(1.0, (n - n_pos) / n_pos)))
        example_weights = np.where(signs > 0, pos_weight, 1.0)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            lr = self.lr / (1.0 + 0.01 * epoch)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                y = signs[batch]
                ew = example_weights[batch]
                margins = y * (x @ w + b)
                active = margins < 1.0
                grad_w = lam * w * len(batch)
                if active.any():
                    wy = (ew * y)[active]
                    grad_w = grad_w - (wy[:, None] * x[active]).sum(axis=0) / len(batch)
                    grad_b = -float(wy.sum()) / len(batch)
                else:
                    grad_b = 0.0
                w -= lr * grad_w
                b -= lr * grad_b
        self.coef_ = w
        self.intercept_ = b
        # Calibrate the sigmoid scale so typical margins map away from 0.5.
        margins = features @ w + b
        spread = float(np.std(margins))
        self._margin_scale = 1.0 / spread if spread > 1e-9 else 1.0
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margins ``X w + b``."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(features) @ self.coef_ + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Pseudo-probabilities from the calibrated margin sigmoid."""
        z = self.decision_function(features) * self._margin_scale * 4.0
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
