"""Uniform method registry: every Table III competitor behind one signature.

Each entry is a callable ``(data: ExperimentData, seed: int) -> scores`` that
trains on ``data.train_idx`` (+ ``data.val_idx`` for early stopping) and
returns a fraud score for *every* node, so the runner can evaluate any subset.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.hag import HAG, prepare_aggregators
from ..core.trainer import TrainConfig, train_node_classifier
from ..eval.runner import ExperimentData
from .blp import BLPClassifier
from .deeptrax import DeepTraxEmbedder
from .dnn import DNNClassifier
from .gat import GAT, gat_edges
from .gbdt import GradientBoostingClassifier
from .gcn import GCN, gcn_aggregator
from .graphsage import GraphSAGE, sage_aggregator
from .logistic import LogisticRegression
from .svm import LinearSVM

__all__ = ["METHODS", "GNN_SIZES", "method_names", "get_method", "hag_method"]

#: Shared GNN architecture settings.  ``paper`` matches Section VI-A
#: (hidden 128/64, MLP 32, attention 64); ``small`` is the default used by
#: the benchmarks to keep end-to-end runs fast at laptop scale.
GNN_SIZES: dict[str, dict] = {
    "paper": {"hidden": (128, 64), "mlp_hidden": (32,), "att_dim": 64},
    "small": {"hidden": (64, 32), "mlp_hidden": (16,), "att_dim": 32},
}

_SIZE = "small"
_EPOCHS = 200
_LR = 5e-3


def _gnn_kwargs() -> dict:
    return dict(GNN_SIZES[_SIZE])


def _train_config(data: ExperimentData, seed: int) -> TrainConfig:
    # All GNN-family methods share the same protocol: Adam, full-ratio
    # positive re-weighting (the paper's D1 is heavily imbalanced), and
    # validation-based early stopping.
    return TrainConfig(
        epochs=_EPOCHS,
        lr=_LR,
        patience=30,
        min_epochs=30,
        seed=seed,
        pos_weight=data.pos_weight() ** 2,
    )


# ----------------------------------------------------------------------
# Handcrafted-feature methods
# ----------------------------------------------------------------------
def lr_method(data: ExperimentData, seed: int) -> np.ndarray:
    model = LogisticRegression()
    idx = data.fit_idx
    model.fit(data.features[idx], data.labels[idx])
    return model.predict_proba(data.features)


def svm_method(data: ExperimentData, seed: int) -> np.ndarray:
    model = LinearSVM(seed=seed)
    idx = data.fit_idx
    model.fit(data.features[idx], data.labels[idx])
    return model.predict_proba(data.features)


def gbdt_method(data: ExperimentData, seed: int) -> np.ndarray:
    model = GradientBoostingClassifier(seed=seed)
    idx = data.fit_idx
    model.fit(data.features_raw[idx], data.labels[idx])
    return model.predict_proba(data.features_raw)


def dnn_method(data: ExperimentData, seed: int) -> np.ndarray:
    model = DNNClassifier(seed=seed)
    model.fit(
        data.features[data.train_idx],
        data.labels[data.train_idx],
        data.features[data.val_idx],
        data.labels[data.val_idx],
    )
    return model.predict_proba(data.features)


# ----------------------------------------------------------------------
# Homogeneous GNNs
# ----------------------------------------------------------------------
def gcn_method(data: ExperimentData, seed: int) -> np.ndarray:
    kwargs = _gnn_kwargs()
    kwargs.pop("att_dim")
    model = GCN(data.features.shape[1], np.random.default_rng(seed), **kwargs)
    aggregator = gcn_aggregator(data.merged)
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregator),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        _train_config(data, seed),
    )
    return model.predict_proba(data.features, aggregator)


def graphsage_method(data: ExperimentData, seed: int) -> np.ndarray:
    kwargs = _gnn_kwargs()
    kwargs.pop("att_dim")
    model = GraphSAGE(data.features.shape[1], np.random.default_rng(seed), **kwargs)
    aggregator = sage_aggregator(data.merged)
    train_node_classifier(
        model,
        lambda x: model.forward(x, aggregator),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        _train_config(data, seed),
    )
    return model.predict_proba(data.features, aggregator)


def gat_method(data: ExperimentData, seed: int) -> np.ndarray:
    kwargs = _gnn_kwargs()
    kwargs.pop("att_dim")
    model = GAT(data.features.shape[1], np.random.default_rng(seed), **kwargs)
    edges = gat_edges(data.merged)
    train_node_classifier(
        model,
        lambda x: model.forward(x, edges),
        data.features,
        data.labels,
        data.train_idx,
        data.val_idx,
        _train_config(data, seed),
    )
    return model.predict_proba(data.features, edges)


# ----------------------------------------------------------------------
# Graph-based fraud detection baselines
# ----------------------------------------------------------------------
def blp_method(data: ExperimentData, seed: int) -> np.ndarray:
    idx = data.fit_idx
    uids = [data.nodes[i] for i in idx]
    model = BLPClassifier(gbdt_params={"seed": seed})
    model.fit(data.dataset.logs, uids, data.labels[idx], data.features_raw[idx])
    return model.predict_proba(data.nodes, data.features_raw)


def _dtx_scores(data: ExperimentData, seed: int, with_features: bool) -> np.ndarray:
    embedder = DeepTraxEmbedder(seed=seed)
    embeddings = embedder.fit_transform(data.dataset.logs, data.nodes, data.edge_types)
    design = (
        np.hstack([embeddings, data.features_raw]) if with_features else embeddings
    )
    idx = data.fit_idx
    classifier = GradientBoostingClassifier(seed=seed)
    classifier.fit(design[idx], data.labels[idx])
    return classifier.predict_proba(design)


def dtx1_method(data: ExperimentData, seed: int) -> np.ndarray:
    return _dtx_scores(data, seed, with_features=False)


def dtx2_method(data: ExperimentData, seed: int) -> np.ndarray:
    return _dtx_scores(data, seed, with_features=True)


# ----------------------------------------------------------------------
# HAG and its Table V ablations
# ----------------------------------------------------------------------
def hag_method(
    use_sao: bool = True,
    use_cfo: bool = True,
    masked_types: Sequence = (),
) -> Callable[[ExperimentData, int], np.ndarray]:
    """Build a HAG method closure; ``masked_types`` supports Fig. 7."""

    def method(data: ExperimentData, seed: int) -> np.ndarray:
        masked = set(masked_types)
        types = [t for t in data.edge_types if t not in masked]
        kwargs = _gnn_kwargs()
        model = HAG(
            data.features.shape[1],
            n_types=len(types),
            rng=np.random.default_rng(seed),
            hidden=kwargs["hidden"],
            att_dim=kwargs["att_dim"],
            cfo_att_dim=kwargs["att_dim"],
            cfo_out_dim=8,
            mlp_hidden=kwargs["mlp_hidden"],
            use_sao=use_sao,
            use_cfo=use_cfo,
        )
        if use_cfo:
            adjacencies = [data.adjacencies[t] for t in types]
        else:
            merged = data.adjacencies[types[0]].copy()
            for t in types[1:]:
                merged = merged + data.adjacencies[t]
            adjacencies = [merged.tocsr()]
        aggregators = prepare_aggregators(adjacencies)
        train_node_classifier(
            model,
            lambda x: model.forward(x, aggregators),
            data.features,
            data.labels,
            data.train_idx,
            data.val_idx,
            _train_config(data, seed),
        )
        return model.predict_proba(data.features, aggregators)

    return method


#: Table III method table (name -> callable).
METHODS: dict[str, Callable[[ExperimentData, int], np.ndarray]] = {
    "LR": lr_method,
    "SVM": svm_method,
    "GBDT": gbdt_method,
    "DNN": dnn_method,
    "GCN": gcn_method,
    "GraphSAGE": graphsage_method,
    "GAT": gat_method,
    "BLP": blp_method,
    "DTX1": dtx1_method,
    "DTX2": dtx2_method,
    "HAG": hag_method(),
    "HAG-SAO(-)": hag_method(use_sao=False),
    "HAG-CFO(-)": hag_method(use_cfo=False),
    "HAG-Both(-)": hag_method(use_sao=False, use_cfo=False),
}


def method_names() -> list[str]:
    """Names of all registered detection methods."""
    return list(METHODS)


def get_method(name: str) -> Callable[[ExperimentData, int], np.ndarray]:
    """Look up a registered method by name (KeyError if unknown)."""
    try:
        return METHODS[name]
    except KeyError:
        raise KeyError(f"unknown method {name!r}; known: {sorted(METHODS)}") from None
