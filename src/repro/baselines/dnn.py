"""Deep Neural Network baseline (paper: a three-layer MLP, 128/64/32)."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.trainer import TrainConfig, train_node_classifier

__all__ = ["DNNClassifier"]


class DNNClassifier:
    """MLP on handcrafted features with the shared training loop."""

    def __init__(
        self,
        hidden: tuple[int, ...] = (128, 64, 32),
        lr: float = 5e-3,
        epochs: int = 200,
        patience: int = 25,
        dropout: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.lr = lr
        self.epochs = epochs
        self.patience = patience
        self.dropout = dropout
        self.seed = seed
        self.model: nn.MLP | None = None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        val_features: np.ndarray | None = None,
        val_labels: np.ndarray | None = None,
    ) -> "DNNClassifier":
        """Train the MLP (optionally early-stopping on a validation split)."""
        rng = np.random.default_rng(self.seed)
        self.model = nn.MLP(
            features.shape[1], list(self.hidden), 1, rng, dropout=self.dropout
        )
        if val_features is not None and val_labels is not None:
            stacked = np.vstack([features, val_features])
            all_labels = np.concatenate([labels, val_labels])
            train_idx = np.arange(len(labels))
            val_idx = np.arange(len(labels), len(all_labels))
        else:
            stacked, all_labels = features, labels
            train_idx = np.arange(len(labels))
            val_idx = None
        model = self.model
        train_node_classifier(
            model,
            lambda x: model(x).flatten(),
            stacked,
            all_labels,
            train_idx,
            val_idx,
            TrainConfig(
                epochs=self.epochs, lr=self.lr, patience=self.patience, seed=self.seed
            ),
        )
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraud probabilities from the trained MLP."""
        if self.model is None:
            raise RuntimeError("model is not fitted")
        self.model.eval()
        with nn.no_grad():
            logits = self.model(nn.Tensor(features)).flatten().numpy()
        return 1.0 / (1.0 + np.exp(-logits))
