"""DeepTrax (DTX) baseline — Bruss et al., Capital One.

Poses the behavior logs as a user–entity bipartite graph and applies a
simplified *two-hop* DeepWalk: a walk step goes user -> shared entity ->
user, so skip-gram pairs are co-occurring users.  The resulting user
embeddings feed a GBDT classifier: DTX1 classifies on the embedding alone,
DTX2 on the concatenation of embedding and original features — the paper
uses the gap between the two to show the value of the original features.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datagen.behavior_types import EDGE_TYPES, BehaviorType
from ..datagen.entities import BehaviorLog
from .deepwalk import SkipGramEmbedder

__all__ = ["DeepTraxEmbedder", "build_bipartite"]


def build_bipartite(
    logs: Sequence[BehaviorLog],
    users: Sequence[int],
    edge_types: Sequence[BehaviorType] = EDGE_TYPES,
    max_entity_degree: int = 100,
) -> dict[int, list[int]]:
    """Entity -> user-index adjacency for the bipartite co-occurrence graph.

    Entities shared by more than ``max_entity_degree`` users (public
    resources) are dropped: their co-occurrence signal is negligible and
    their quadratic pair volume is not.
    """
    user_index = {uid: i for i, uid in enumerate(users)}
    entity_users: dict[tuple[BehaviorType, str], set[int]] = {}
    wanted = set(edge_types)
    for log in logs:
        if log.btype not in wanted:
            continue
        idx = user_index.get(log.uid)
        if idx is None:
            continue
        entity_users.setdefault((log.btype, log.value), set()).add(idx)
    adjacency: dict[int, list[int]] = {}
    entity_id = 0
    for members in entity_users.values():
        if 2 <= len(members) <= max_entity_degree:
            adjacency[entity_id] = sorted(members)
            entity_id += 1
    return adjacency


class DeepTraxEmbedder:
    """Two-hop DeepWalk user embeddings from behavior logs."""

    def __init__(
        self,
        dim: int = 32,
        pairs_per_entity: int = 50,
        negatives: int = 5,
        epochs: int = 5,
        lr: float = 0.08,
        seed: int = 0,
        max_entity_degree: int = 100,
    ) -> None:
        self.dim = dim
        self.pairs_per_entity = pairs_per_entity
        self.negatives = negatives
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.max_entity_degree = max_entity_degree

    def fit_transform(
        self,
        logs: Sequence[BehaviorLog],
        users: Sequence[int],
        edge_types: Sequence[BehaviorType] = EDGE_TYPES,
    ) -> np.ndarray:
        """Return an ``(len(users), dim)`` embedding matrix (rows align)."""
        rng = np.random.default_rng(self.seed)
        entities = build_bipartite(logs, users, edge_types, self.max_entity_degree)

        centers: list[int] = []
        contexts: list[int] = []
        for members in entities.values():
            n = len(members)
            # Sample two-hop user pairs through this entity.
            k = min(self.pairs_per_entity, n * (n - 1))
            for _ in range(k):
                i, j = rng.integers(n), rng.integers(n)
                if i != j:
                    centers.append(members[i])
                    contexts.append(members[j])
        embedder = SkipGramEmbedder(
            len(users),
            dim=self.dim,
            negatives=self.negatives,
            lr=self.lr,
            epochs=self.epochs,
            seed=self.seed,
        )
        embedder.train(np.asarray(centers, dtype=np.int64), np.asarray(contexts, dtype=np.int64))
        return embedder.embedding()
