"""Degraded-mode scoring ladder: the pre-Turbo production models.

Section VI-E: before Turbo, "block-listing and rule-based scorecards were
still the major anti-fraud approaches used by the platform".  When the
online graph path is down or over its latency budget, :class:`FallbackStack`
serves the request with exactly those models, in order of fidelity:

``HAG (full) -> scorecard -> blocklist -> reject``

* **scorecard** — rule points over the applicant's profile; needs only the
  in-memory user table, no graph, no storage round-trips;
* **blocklist** — fraction of the user's watched deterministic values
  (device / IMEI / IMSI) that are block-listed; scores are precomputed at
  deployment time so the degraded path never touches the log store;
* **reject** — the conservative last resort when the user is unknown to
  every fallback: decline the application (probability 1.0).

Decisions are pure functions of deployment-time state, so a degraded
response is bit-for-bit reproducible — the failure-mode test suite pins
``TurboResponse.probability == scorecard.score(user, txn)`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..datagen.entities import BehaviorLog, Transaction, User
from .blocklist import Blocklist
from .scorecard import Scorecard

__all__ = ["FallbackDecision", "FallbackStack", "DEGRADATION_LADDER"]

#: fidelity order of the degradation ladder (most to least capable).
DEGRADATION_LADDER = ("full", "scorecard", "blocklist", "reject")


@dataclass(frozen=True, slots=True)
class FallbackDecision:
    """Outcome of degraded scoring: probability, decision and the level used."""

    probability: float
    blocked: bool
    level: str  # "scorecard" | "blocklist" | "reject"


class FallbackStack:
    """Orders the pre-Turbo production models into a degradation ladder."""

    def __init__(
        self,
        users: Mapping[int, User],
        scorecard: Scorecard | None = None,
        blocklist: Blocklist | None = None,
        logs: Sequence[BehaviorLog] = (),
    ) -> None:
        self.users = dict(users)
        self.scorecard = scorecard
        self.blocklist = blocklist
        # Precompute block-list scores once: the degraded path must not
        # re-scan the raw logs (the log store may be the thing that is down).
        self._blocklist_scores: dict[int, float] = {}
        if blocklist is not None and self.users:
            uids = sorted(self.users)
            scores = blocklist.predict_proba(logs, uids)
            self._blocklist_scores = {
                uid: float(score) for uid, score in zip(uids, scores)
            }

    def decide(self, txn: Transaction) -> FallbackDecision:
        """Score ``txn`` on the highest fallback level that can serve it."""
        user = self.users.get(txn.uid)
        if self.scorecard is not None and user is not None:
            probability = self.scorecard.score(user, txn)
            return FallbackDecision(
                probability=probability,
                blocked=probability >= self.scorecard.decision_threshold,
                level="scorecard",
            )
        if self.blocklist is not None:
            probability = self._blocklist_scores.get(txn.uid, 0.0)
            return FallbackDecision(
                probability=probability,
                blocked=probability > 0.0,
                level="blocklist",
            )
        return FallbackDecision(probability=1.0, blocked=True, level="reject")
