"""GCN baseline (Kipf & Welling) in its random-walk inductive variant.

The paper reimplements GCN "as a random walk-liked GCN ... to support the
inductive inference", i.e. aggregation with ``D^-1 A`` instead of the
symmetric normalization, with self-loops included (Eq. 1's
``\tilde N_v = {v} ∪ N_v``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..network.adjacency import row_normalize
from ..nn import Tensor

__all__ = ["GCN", "gcn_aggregator"]


def gcn_aggregator(adjacency: sp.spmatrix) -> nn.PreparedAggregator:
    """Random-walk aggregation matrix ``D^-1 (A + I)``, transpose-cached."""
    with_loops = nn.as_csr(adjacency) + sp.eye(adjacency.shape[0], format="csr")
    return nn.PreparedAggregator(row_normalize(with_loops))


class GCN(nn.Module):
    """Stacked GCN layers followed by an MLP head (paper's GNN protocol)."""

    def __init__(
        self,
        in_dim: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = (128, 64),
        mlp_hidden: Sequence[int] = (32,),
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        widths = [in_dim, *hidden]
        self.layers = nn.ModuleList(
            nn.Linear(a, b, rng) for a, b in zip(widths[:-1], widths[1:])
        )
        self.head = nn.MLP(widths[-1], mlp_hidden, 1, rng, dropout=dropout)

    def embeddings(self, x: Tensor, aggregator: sp.csr_matrix) -> Tensor:
        """Node representations before the MLP head."""
        h = x
        for layer in self.layers:
            h = layer(nn.spmm(aggregator, h)).relu()
        return h

    def forward(self, x: Tensor, aggregator: sp.csr_matrix) -> Tensor:
        return self.head(self.embeddings(x, aggregator)).flatten()

    def predict_proba(self, x: np.ndarray, aggregator: sp.csr_matrix) -> np.ndarray:
        """Fraud probabilities for every node (no autograd recording)."""
        self.eval()
        with nn.no_grad():
            logits = self.forward(Tensor(x), aggregator)
        return 1.0 / (1.0 + np.exp(-logits.numpy()))
