"""DeepWalk-style skip-gram embeddings with negative sampling.

Substrate for the DeepTrax baseline: random walks over an adjacency-list
graph feed a skip-gram model trained with SGNS (mini-batched numpy SGD).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["random_walks", "SkipGramEmbedder", "DeepWalk"]


def random_walks(
    adjacency: Mapping[int, Sequence[int]],
    walk_length: int,
    walks_per_node: int,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Uniform random walks from every node with at least one neighbour."""
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    walks: list[list[int]] = []
    nodes = [n for n in adjacency if len(adjacency[n]) > 0]
    for _ in range(walks_per_node):
        for start in nodes:
            walk = [start]
            current = start
            for _ in range(walk_length - 1):
                neighbors = adjacency.get(current)
                if not neighbors:
                    break
                current = neighbors[int(rng.integers(len(neighbors)))]
                walk.append(current)
            walks.append(walk)
    return walks


class SkipGramEmbedder:
    """Skip-gram with negative sampling over (center, context) index pairs."""

    def __init__(
        self,
        n_items: int,
        dim: int = 64,
        negatives: int = 5,
        lr: float = 0.05,
        epochs: int = 3,
        batch_size: int = 1024,
        seed: int = 0,
    ) -> None:
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        self.n_items = n_items
        self.dim = dim
        self.negatives = negatives
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        scale = 1.0 / dim
        self.in_vectors = self.rng.uniform(-scale, scale, size=(n_items, dim))
        self.out_vectors = np.zeros((n_items, dim))

    def train(self, centers: np.ndarray, contexts: np.ndarray) -> None:
        """SGNS over the pair corpus; vectorized mini-batches."""
        centers = np.asarray(centers, dtype=np.int64)
        contexts = np.asarray(contexts, dtype=np.int64)
        if centers.shape != contexts.shape:
            raise ValueError("centers and contexts must align")
        n = len(centers)
        if n == 0:
            return
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                self._step(centers[batch], contexts[batch])

    def _step(self, centers: np.ndarray, contexts: np.ndarray) -> None:
        b = len(centers)
        v_in = self.in_vectors[centers]  # (b, d)
        # Positive examples.
        v_pos = self.out_vectors[contexts]
        score_pos = 1.0 / (1.0 + np.exp(-np.sum(v_in * v_pos, axis=1)))
        coef_pos = (score_pos - 1.0)[:, None]  # d loss / d score
        grad_in = coef_pos * v_pos
        grad_pos = coef_pos * v_in
        # Negative examples.
        negs = self.rng.integers(self.n_items, size=(b, self.negatives))
        v_neg = self.out_vectors[negs]  # (b, k, d)
        score_neg = 1.0 / (1.0 + np.exp(-np.einsum("bd,bkd->bk", v_in, v_neg)))
        grad_in += np.einsum("bk,bkd->bd", score_neg, v_neg)
        grad_neg = score_neg[..., None] * v_in[:, None, :]

        self.in_vectors[centers] -= self.lr * grad_in
        np.add.at(self.out_vectors, contexts, -self.lr * grad_pos)
        np.add.at(
            self.out_vectors, negs.ravel(), -self.lr * grad_neg.reshape(-1, self.dim)
        )

    def embedding(self) -> np.ndarray:
        """The learned input-side embedding matrix."""
        return self.in_vectors


class DeepWalk:
    """Classic DeepWalk: walks + windowed skip-gram pairs + SGNS."""

    def __init__(
        self,
        dim: int = 64,
        walk_length: int = 8,
        walks_per_node: int = 5,
        window: int = 2,
        negatives: int = 5,
        epochs: int = 3,
        lr: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.lr = lr
        self.seed = seed

    def fit(self, adjacency: Mapping[int, Sequence[int]], n_items: int) -> np.ndarray:
        """Return an ``(n_items, dim)`` embedding matrix."""
        rng = np.random.default_rng(self.seed)
        walks = random_walks(adjacency, self.walk_length, self.walks_per_node, rng)
        centers: list[int] = []
        contexts: list[int] = []
        for walk in walks:
            for i, center in enumerate(walk):
                lo = max(0, i - self.window)
                hi = min(len(walk), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        centers.append(center)
                        contexts.append(walk[j])
        embedder = SkipGramEmbedder(
            n_items,
            dim=self.dim,
            negatives=self.negatives,
            lr=self.lr,
            epochs=self.epochs,
            seed=self.seed,
        )
        embedder.train(np.asarray(centers), np.asarray(contexts))
        return embedder.embedding()
