"""Block-listing — the other hard-coded production baseline.

Values of deterministic behavior types (device, IMEI, IMSI) observed on
confirmed fraudsters are block-listed; any later application touching a
listed value is flagged.  Its structural weakness — "at least one malicious
behavior has to be observed before the mechanism can block-list" — is what
motivates Turbo in the paper's introduction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datagen.behavior_types import DETERMINISTIC_TYPES, BehaviorType
from ..datagen.entities import BehaviorLog

__all__ = ["Blocklist"]


class Blocklist:
    """Value block-list learned from confirmed fraud labels."""

    def __init__(
        self, watched_types: Sequence[BehaviorType] = DETERMINISTIC_TYPES
    ) -> None:
        self.watched_types = tuple(watched_types)
        self._blocked: set[tuple[BehaviorType, str]] = set()

    def fit(
        self, logs: Sequence[BehaviorLog], fraud_uids: set[int]
    ) -> "Blocklist":
        """Block every watched value a known fraudster has used."""
        wanted = set(self.watched_types)
        for log in logs:
            if log.btype in wanted and log.uid in fraud_uids:
                self._blocked.add((log.btype, log.value))
        return self

    def add(self, btype: BehaviorType, value: str) -> None:
        """Manually block one value."""
        self._blocked.add((btype, value))

    def __len__(self) -> int:
        return len(self._blocked)

    def is_blocked(self, logs: Sequence[BehaviorLog], uid: int) -> bool:
        """Does ``uid`` touch any blocked value in ``logs``?"""
        for log in logs:
            if log.uid == uid and (log.btype, log.value) in self._blocked:
                return True
        return False

    def predict_proba(
        self, logs: Sequence[BehaviorLog], uids: Sequence[int]
    ) -> np.ndarray:
        """Score each uid by the fraction of its watched values blocked."""
        per_user: dict[int, set[tuple[BehaviorType, str]]] = {u: set() for u in uids}
        wanted = set(self.watched_types)
        for log in logs:
            if log.btype in wanted and log.uid in per_user:
                per_user[log.uid].add((log.btype, log.value))
        scores = []
        for uid in uids:
            touched = per_user[uid]
            if not touched:
                scores.append(0.0)
                continue
            hits = sum(1 for item in touched if item in self._blocked)
            scores.append(hits / len(touched))
        return np.asarray(scores)
