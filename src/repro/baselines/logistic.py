"""Logistic Regression baseline (Table III, handcrafted-feature family)."""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """L2-regularized logistic regression trained with full-batch Adam.

    Expects standardized features; predicts ``P(fraud)`` via the sigmoid.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        lr: float = 0.1,
        epochs: int = 300,
        tol: float = 1e-7,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.lr = lr
        self.epochs = epochs
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit weights by full-batch Adam on the regularized log-loss."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        n, d = features.shape
        w = np.zeros(d)
        b = 0.0
        m_w = np.zeros(d)
        v_w = np.zeros(d)
        m_b = v_b = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        previous_loss = np.inf
        for t in range(1, self.epochs + 1):
            z = features @ w + b
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
            grad_w = features.T @ (p - labels) / n + self.l2 * w
            grad_b = float(np.mean(p - labels))
            m_w = beta1 * m_w + (1 - beta1) * grad_w
            v_w = beta2 * v_w + (1 - beta2) * grad_w**2
            m_b = beta1 * m_b + (1 - beta1) * grad_b
            v_b = beta2 * v_b + (1 - beta2) * grad_b**2
            w -= self.lr * (m_w / (1 - beta1**t)) / (np.sqrt(v_w / (1 - beta2**t)) + eps)
            b -= self.lr * (m_b / (1 - beta1**t)) / (np.sqrt(v_b / (1 - beta2**t)) + eps)
            loss = float(
                -np.mean(labels * np.log(p + 1e-12) + (1 - labels) * np.log(1 - p + 1e-12))
                + 0.5 * self.l2 * w @ w
            )
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw linear scores ``X w + b``."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(features) @ self.coef_ + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraud probabilities via the sigmoid of the linear score."""
        z = self.decision_function(features)
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
