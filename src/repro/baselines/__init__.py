"""Every baseline of the paper's evaluation, plus the production rules."""

from .blocklist import Blocklist
from .blp import BLPClassifier, BLPFeatureExtractor
from .deeptrax import DeepTraxEmbedder, build_bipartite
from .deepwalk import DeepWalk, SkipGramEmbedder, random_walks
from .dnn import DNNClassifier
from .fallback import DEGRADATION_LADDER, FallbackDecision, FallbackStack
from .gat import GAT, GATLayer, gat_edges
from .gbdt import GradientBoostingClassifier, RegressionTree
from .gcn import GCN, gcn_aggregator
from .graphsage import GraphSAGE, SAGELayer, sage_aggregator
from .logistic import LogisticRegression
from .registry import GNN_SIZES, METHODS, get_method, hag_method, method_names
from .scorecard import Scorecard, ScorecardRule, default_scorecard
from .svm import LinearSVM

__all__ = [
    "LogisticRegression",
    "LinearSVM",
    "GradientBoostingClassifier",
    "RegressionTree",
    "DNNClassifier",
    "GCN",
    "gcn_aggregator",
    "GraphSAGE",
    "SAGELayer",
    "sage_aggregator",
    "GAT",
    "GATLayer",
    "gat_edges",
    "BLPClassifier",
    "BLPFeatureExtractor",
    "DeepTraxEmbedder",
    "build_bipartite",
    "DeepWalk",
    "SkipGramEmbedder",
    "random_walks",
    "Scorecard",
    "ScorecardRule",
    "default_scorecard",
    "Blocklist",
    "FallbackStack",
    "FallbackDecision",
    "DEGRADATION_LADDER",
    "METHODS",
    "GNN_SIZES",
    "method_names",
    "get_method",
    "hag_method",
]
