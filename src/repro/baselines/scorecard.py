"""Rule-based credit scorecard — Jimi's original risk management approach.

Section VI-E: before Turbo, "block-listing and rule-based scorecards were
still the major anti-fraud approaches used by the platform".  The scorecard
assigns points per profile attribute band; the online A/B benchmark uses it
as the baseline pipeline Turbo is layered on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..datagen.entities import Transaction, User

__all__ = ["ScorecardRule", "Scorecard", "default_scorecard"]


@dataclass(slots=True)
class ScorecardRule:
    """One scorecard entry: risk points awarded when the predicate holds."""

    name: str
    points: float
    predicate: Callable[[User, Transaction], bool]


@dataclass(slots=True)
class Scorecard:
    """Sum of rule points squashed into a pseudo-probability.

    ``decision_threshold`` is the operating point of the rule system: the
    fraction of maximum points above which an application is rejected.
    """

    rules: list[ScorecardRule] = field(default_factory=list)
    decision_threshold: float = 0.5

    def score(self, user: User, txn: Transaction) -> float:
        """Risk score in [0, 1]: awarded points / maximum points."""
        if not self.rules:
            raise ValueError("scorecard has no rules")
        awarded = sum(rule.points for rule in self.rules if rule.predicate(user, txn))
        maximum = sum(rule.points for rule in self.rules)
        return awarded / maximum

    def predict(self, user: User, txn: Transaction) -> bool:
        """True when the application should be rejected."""
        return self.score(user, txn) >= self.decision_threshold

    def scores(self, pairs: Sequence[tuple[User, Transaction]]) -> np.ndarray:
        """Vectorized scores for (user, transaction) pairs."""
        return np.asarray([self.score(u, t) for u, t in pairs])


def default_scorecard(decision_threshold: float = 0.5) -> Scorecard:
    """A domain-expert scorecard over the simulator's profile attributes."""
    rules = [
        ScorecardRule("very_low_credit", 3.0, lambda u, t: u.credit_score < 560),
        ScorecardRule("low_credit", 2.0, lambda u, t: 560 <= u.credit_score < 620),
        ScorecardRule("phone_unverified", 2.0, lambda u, t: not u.phone_verified),
        ScorecardRule("id_unverified", 2.5, lambda u, t: not u.id_verified),
        ScorecardRule("weak_third_party", 2.0, lambda u, t: u.third_party_score < 0.3),
        ScorecardRule("no_history", 1.0, lambda u, t: u.historical_leases == 0),
        ScorecardRule("young_applicant", 1.0, lambda u, t: u.age < 22),
        ScorecardRule("low_income", 1.5, lambda u, t: u.income_level < 1.5),
        ScorecardRule(
            "rent_burden", 1.5, lambda u, t: t.monthly_rent > 350.0 * max(u.income_level, 0.1)
        ),
        ScorecardRule("high_ticket", 1.0, lambda u, t: t.item_value > 6000.0),
        ScorecardRule(
            "fresh_account",
            1.5,
            lambda u, t: (t.created_at - u.registered_at) < 3 * 86400.0,
        ),
    ]
    return Scorecard(rules=rules, decision_threshold=decision_threshold)
