"""GAT baseline (Velickovic et al.): multi-head edge attention.

Attention coefficients are computed per edge with a LeakyReLU-scored
additive mechanism and normalized with a segment softmax over each node's
in-neighbourhood, implemented with the autograd gather/segment primitives.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..nn import Tensor
from ..nn.tensor import segment_sum

__all__ = ["GAT", "gat_edges"]


def gat_edges(
    adjacency: sp.spmatrix | nn.PreparedAggregator,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(rows, cols)`` edge endpoints including self-loops."""
    csr = nn.as_csr(adjacency)
    coo = (csr + sp.eye(csr.shape[0], format="csr")).tocoo()
    return coo.row.astype(np.int64), coo.col.astype(np.int64)


class GATLayer(nn.Module):
    """One multi-head GAT layer (head outputs concatenated)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        heads: int = 2,
        negative_slope: float = 0.2,
    ) -> None:
        super().__init__()
        if out_dim % heads != 0:
            raise ValueError("out_dim must be divisible by the head count")
        self.heads = heads
        self.head_dim = out_dim // heads
        self.negative_slope = negative_slope
        self.w = [nn.xavier_uniform((in_dim, self.head_dim), rng) for _ in range(heads)]
        self.a_src = [nn.normal((self.head_dim,), rng, std=0.1) for _ in range(heads)]
        self.a_dst = [nn.normal((self.head_dim,), rng, std=0.1) for _ in range(heads)]

    def forward(self, h: Tensor, rows: np.ndarray, cols: np.ndarray) -> Tensor:
        n = h.shape[0]
        outputs: list[Tensor] = []
        for k in range(self.heads):
            z = h @ self.w[k]
            scores = (
                z.index_select(rows) @ self.a_src[k]
                + z.index_select(cols) @ self.a_dst[k]
            ).leaky_relu(self.negative_slope)
            # Segment softmax over each row's incident edges; the per-segment
            # max is a constant shift for numerical stability.
            max_per_node = np.full(n, -np.inf)
            np.maximum.at(max_per_node, rows, scores.data)
            max_per_node[~np.isfinite(max_per_node)] = 0.0
            shifted = scores - Tensor(max_per_node[rows])
            exp_scores = shifted.exp()
            denom = segment_sum(exp_scores.reshape(-1, 1), rows, n)
            alpha = exp_scores / (denom.index_select(rows).flatten() + 1e-12)
            messages = z.index_select(cols) * alpha.reshape(-1, 1)
            outputs.append(segment_sum(messages, rows, n))
        return nn.concat(outputs, axis=1).relu()


class GAT(nn.Module):
    """Stacked GAT layers + MLP head, matching the paper's GNN protocol."""

    def __init__(
        self,
        in_dim: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = (128, 64),
        mlp_hidden: Sequence[int] = (32,),
        heads: int = 2,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        widths = [in_dim, *hidden]
        self.layers = nn.ModuleList(
            GATLayer(a, b, rng, heads=heads) for a, b in zip(widths[:-1], widths[1:])
        )
        self.head = nn.MLP(widths[-1], mlp_hidden, 1, rng, dropout=dropout)

    def embeddings(self, x: Tensor, edges: tuple[np.ndarray, np.ndarray]) -> Tensor:
        """Node representations before the MLP head."""
        rows, cols = edges
        h = x
        for layer in self.layers:
            h = layer(h, rows, cols)
        return h

    def forward(self, x: Tensor, edges: tuple[np.ndarray, np.ndarray]) -> Tensor:
        return self.head(self.embeddings(x, edges)).flatten()

    def predict_proba(
        self, x: np.ndarray, edges: tuple[np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """Fraud probabilities for every node (no autograd recording)."""
        self.eval()
        with nn.no_grad():
            logits = self.forward(Tensor(x), edges)
        return 1.0 / (1.0 + np.exp(-logits.numpy()))
