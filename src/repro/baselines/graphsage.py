"""GraphSAGE baseline (Hamilton et al.) with the mean aggregator (Eq. 2).

``h_v' = ReLU(W [h_v ; mean_{u in N(v)} h_u])`` — the skip-connection
paradigm the paper contrasts SAO against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..network.adjacency import row_normalize
from ..nn import Tensor

__all__ = ["GraphSAGE", "sage_aggregator"]


def sage_aggregator(adjacency: sp.spmatrix) -> nn.PreparedAggregator:
    """Neighbour-mean matrix ``D^-1 A`` (no self-loops: self goes via skip),
    wrapped so the backward transpose is built once and memoized."""
    return nn.PreparedAggregator(row_normalize(nn.as_csr(adjacency)))


class SAGELayer(nn.Module):
    """One mean-aggregator GraphSAGE layer."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.linear = nn.Linear(2 * in_dim, out_dim, rng)

    def forward(self, h: Tensor, aggregator: sp.csr_matrix) -> Tensor:
        neighbor = nn.spmm(aggregator, h)
        return self.linear(nn.concat([h, neighbor], axis=1)).relu()


class GraphSAGE(nn.Module):
    """Stacked SAGE layers + MLP head."""

    def __init__(
        self,
        in_dim: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = (128, 64),
        mlp_hidden: Sequence[int] = (32,),
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        widths = [in_dim, *hidden]
        self.layers = nn.ModuleList(
            SAGELayer(a, b, rng) for a, b in zip(widths[:-1], widths[1:])
        )
        self.head = nn.MLP(widths[-1], mlp_hidden, 1, rng, dropout=dropout)

    def embeddings(self, x: Tensor, aggregator: sp.csr_matrix) -> Tensor:
        """Node representations before the MLP head."""
        h = x
        for layer in self.layers:
            h = layer(h, aggregator)
        return h

    def forward(self, x: Tensor, aggregator: sp.csr_matrix) -> Tensor:
        return self.head(self.embeddings(x, aggregator)).flatten()

    def predict_proba(self, x: np.ndarray, aggregator: sp.csr_matrix) -> np.ndarray:
        """Fraud probabilities for every node (no autograd recording)."""
        self.eval()
        with nn.no_grad():
            logits = self.forward(Tensor(x), aggregator)
        return 1.0 / (1.0 + np.exp(-logits.numpy()))
