"""Feature management: profile (X_u), transaction (X_tau), behavior (X_s)."""

from .pipeline import FeatureManager, LabeledMatrix, StandardScaler
from .profile import N_OCCUPATIONS, PROFILE_FEATURE_NAMES, profile_features
from .statistical import (
    STAT_WINDOWS,
    UserLogIndex,
    statistical_feature_names,
    statistical_features,
)
from .streaming import StreamingAggregator, UserWindowState
from .transaction import TRANSACTION_FEATURE_NAMES, transaction_features

__all__ = [
    "FeatureManager",
    "LabeledMatrix",
    "StandardScaler",
    "profile_features",
    "PROFILE_FEATURE_NAMES",
    "N_OCCUPATIONS",
    "transaction_features",
    "TRANSACTION_FEATURE_NAMES",
    "statistical_features",
    "statistical_feature_names",
    "UserLogIndex",
    "STAT_WINDOWS",
    "StreamingAggregator",
    "UserWindowState",
]
