"""Transaction (application) features ``X_tau`` (Section II-B)."""

from __future__ import annotations

import numpy as np

from ..datagen.entities import DAY, HOUR, Transaction, User

__all__ = ["TRANSACTION_FEATURE_NAMES", "transaction_features"]

TRANSACTION_FEATURE_NAMES: tuple[str, ...] = (
    "log_item_value",
    "lease_term",
    "log_monthly_rent",
    "rent_to_income",
    "application_hour",
    "application_weekday",
)


def transaction_features(txn: Transaction, user: User) -> np.ndarray:
    """Vectorize ``X_tau`` for one application."""
    # income_level is in "thousands per month" units in the simulator; guard
    # against zero income to keep the ratio finite.
    income = max(user.income_level, 0.1) * 1000.0
    hour_of_day = (txn.created_at % DAY) / HOUR
    weekday = (txn.created_at // DAY) % 7
    return np.array(
        [
            np.log1p(txn.item_value),
            float(txn.lease_term),
            np.log1p(txn.monthly_rent),
            txn.monthly_rent / income,
            hour_of_day,
            float(weekday),
        ]
    )
