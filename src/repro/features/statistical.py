"""Behavior statistical features ``X_s`` (Section V).

Computed from a user's behavior logs up to the audit time: log counts and
distinct-entity counts over trailing windows ("the frequency of logins, the
number of associated devices in 1 hour, 6 hours, 1 day, etc.") plus
burstiness summaries that capture the time-burst pattern of Fig. 4a-b.

In production these would be maintained by a streaming framework; Turbo's
deployment computed them on-demand, which dominates its prediction latency
(the system benchmark models exactly that).
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..datagen.behavior_types import BehaviorType
from ..datagen.entities import DAY, HOUR, BehaviorLog

__all__ = [
    "STAT_WINDOWS",
    "statistical_feature_names",
    "statistical_features",
    "UserLogIndex",
]

#: Trailing windows over which activity is summarized.
STAT_WINDOWS: tuple[tuple[str, float], ...] = (
    ("1h", HOUR),
    ("6h", 6 * HOUR),
    ("1d", DAY),
    ("7d", 7 * DAY),
    ("30d", 30 * DAY),
)

_DISTINCT_TYPES: tuple[BehaviorType, ...] = (
    BehaviorType.DEVICE_ID,
    BehaviorType.IPV4,
    BehaviorType.GPS_100,
    BehaviorType.WIFI_MAC,
)


def statistical_feature_names() -> tuple[str, ...]:
    """Column names of the behavior-statistics feature block."""
    names: list[str] = []
    for label, _ in STAT_WINDOWS:
        names.append(f"logs_{label}")
        names.extend(f"distinct_{t.value}_{label}" for t in _DISTINCT_TYPES)
    names.extend(
        [
            "total_logs",
            "gap_mean_hours",
            "gap_burstiness",
            "night_fraction",
            "span_days",
        ]
    )
    return tuple(names)


class UserLogIndex:
    """Per-user time-sorted log index for fast trailing-window queries."""

    def __init__(self, logs: Sequence[BehaviorLog]) -> None:
        per_user: dict[int, list[BehaviorLog]] = {}
        for log in logs:
            per_user.setdefault(log.uid, []).append(log)
        self._logs: dict[int, list[BehaviorLog]] = {}
        self._times: dict[int, list[float]] = {}
        for uid, items in per_user.items():
            items.sort(key=lambda l: l.timestamp)
            self._logs[uid] = items
            self._times[uid] = [l.timestamp for l in items]

    def users(self) -> list[int]:
        """All user ids present in the index."""
        return list(self._logs)

    def logs_before(self, uid: int, as_of: float) -> list[BehaviorLog]:
        """All logs of ``uid`` with timestamp <= ``as_of``."""
        times = self._times.get(uid)
        if not times:
            return []
        end = bisect.bisect_right(times, as_of)
        return self._logs[uid][:end]

    def logs_in_window(self, uid: int, as_of: float, window: float) -> list[BehaviorLog]:
        """Logs of ``uid`` within ``(as_of - window, as_of]``."""
        times = self._times.get(uid)
        if not times:
            return []
        end = bisect.bisect_right(times, as_of)
        start = bisect.bisect_left(times, as_of - window, 0, end)
        return self._logs[uid][start:end]


def statistical_features(index: UserLogIndex, uid: int, as_of: float) -> np.ndarray:
    """Compute ``X_s`` for ``uid`` as observed at ``as_of``."""
    values: list[float] = []
    for _label, window in STAT_WINDOWS:
        window_logs = index.logs_in_window(uid, as_of, window)
        values.append(float(len(window_logs)))
        for btype in _DISTINCT_TYPES:
            distinct = {l.value for l in window_logs if l.btype == btype}
            values.append(float(len(distinct)))

    history = index.logs_before(uid, as_of)
    values.append(float(len(history)))
    times = np.asarray([l.timestamp for l in history])
    if len(times) >= 3:
        gaps = np.diff(times)
        gaps = gaps[gaps > 0]
        if len(gaps) >= 2:
            mean_gap = float(gaps.mean())
            values.append(mean_gap / HOUR)
            # Goh-Barabasi burstiness in [-1, 1]: 1 for extreme bursts,
            # 0 for Poisson, -1 for perfectly regular activity.
            std_gap = float(gaps.std())
            values.append((std_gap - mean_gap) / (std_gap + mean_gap))
        else:
            values.extend([0.0, 0.0])
    else:
        values.extend([0.0, 0.0])

    if len(times) > 0:
        hour_of_day = (times % DAY) / HOUR
        night = np.mean((hour_of_day < 6.0) | (hour_of_day >= 23.0))
        values.append(float(night))
        values.append(float((times[-1] - times[0]) / DAY))
    else:
        values.extend([0.0, 0.0])
    return np.asarray(values)
