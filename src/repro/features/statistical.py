"""Behavior statistical features ``X_s`` (Section V).

Computed from a user's behavior logs up to the audit time: log counts and
distinct-entity counts over trailing windows ("the frequency of logins, the
number of associated devices in 1 hour, 6 hours, 1 day, etc.") plus
burstiness summaries that capture the time-burst pattern of Fig. 4a-b.

In production these would be maintained by a streaming framework; Turbo's
deployment computed them on-demand, which dominates its prediction latency
(the system benchmark models exactly that).
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..datagen.behavior_types import BehaviorType
from ..datagen.entities import DAY, HOUR, BehaviorLog

__all__ = [
    "STAT_WINDOWS",
    "statistical_feature_names",
    "statistical_features",
    "statistical_features_batch",
    "UserLogIndex",
]

#: Trailing windows over which activity is summarized.
STAT_WINDOWS: tuple[tuple[str, float], ...] = (
    ("1h", HOUR),
    ("6h", 6 * HOUR),
    ("1d", DAY),
    ("7d", 7 * DAY),
    ("30d", 30 * DAY),
)

_DISTINCT_TYPES: tuple[BehaviorType, ...] = (
    BehaviorType.DEVICE_ID,
    BehaviorType.IPV4,
    BehaviorType.GPS_100,
    BehaviorType.WIFI_MAC,
)


def statistical_feature_names() -> tuple[str, ...]:
    """Column names of the behavior-statistics feature block."""
    names: list[str] = []
    for label, _ in STAT_WINDOWS:
        names.append(f"logs_{label}")
        names.extend(f"distinct_{t.value}_{label}" for t in _DISTINCT_TYPES)
    names.extend(
        [
            "total_logs",
            "gap_mean_hours",
            "gap_burstiness",
            "night_fraction",
            "span_days",
        ]
    )
    return tuple(names)


_DISTINCT_IDX: dict[BehaviorType, int] = {
    btype: i for i, btype in enumerate(_DISTINCT_TYPES)
}


class UserLogIndex:
    """Per-user time-sorted log index for fast trailing-window queries.

    Construction is columnar: one stable :func:`numpy.lexsort` over the
    ``(uid, timestamp)`` columns orders every log, and per-user slices are
    carved out of the sorted arrays — no per-user Python sorts.  The
    resulting dict-of-lists tables are byte-for-byte what the pinned
    reference construction (:meth:`reference_tables`) produces: lexsort is
    stable, so logs with equal timestamps keep their input order exactly
    like the reference's stable per-user ``list.sort``.
    """

    def __init__(self, logs: Sequence[BehaviorLog]) -> None:
        logs = list(logs)
        n = len(logs)
        self._logs: dict[int, list[BehaviorLog]] = {}
        self._times: dict[int, list[float]] = {}
        self._packed_cache: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        if not n:
            return
        uids = np.fromiter((log.uid for log in logs), count=n, dtype=np.int64)
        times = np.fromiter((log.timestamp for log in logs), count=n, dtype=np.float64)
        order = np.lexsort((times, uids))
        uids_sorted = uids[order]
        times_sorted = times[order]
        cuts = np.flatnonzero(uids_sorted[1:] != uids_sorted[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        # Insert users in first-appearance order so the observable dict
        # ordering matches the reference construction.
        _, first_pos = np.unique(uids, return_index=True)
        group_of_uid = {int(uids_sorted[s]): (int(s), int(e)) for s, e in zip(starts, ends)}
        appearance = uids[np.sort(first_pos)]
        for uid in appearance:
            uid = int(uid)
            s, e = group_of_uid[uid]
            idx = order[s:e]
            self._logs[uid] = [logs[i] for i in idx]
            self._times[uid] = times_sorted[s:e].tolist()
            # Build the packed columnar view now, while we already hold the
            # sorted slice: serving-time batch assembly then never pays the
            # per-log grouping pass (it was the warm-up cost of every first
            # batch touching a user).
            self._packed_cache[uid] = self._build_packed(
                self._logs[uid], times_sorted[s:e]
            )

    @staticmethod
    def reference_tables(
        logs: Sequence[BehaviorLog],
    ) -> tuple[dict[int, list[BehaviorLog]], dict[int, list[float]]]:
        """Pinned reference construction: per-user stable Python sorts.

        Returns the ``(logs, times)`` dict-of-lists tables the pre-vectorized
        constructor built; the parity suite asserts the lexsort constructor
        reproduces them exactly (keys, order and element identity).
        """
        per_user: dict[int, list[BehaviorLog]] = {}
        for log in logs:
            per_user.setdefault(log.uid, []).append(log)
        by_user: dict[int, list[BehaviorLog]] = {}
        by_time: dict[int, list[float]] = {}
        for uid, items in per_user.items():
            items.sort(key=lambda l: l.timestamp)
            by_user[uid] = items
            by_time[uid] = [l.timestamp for l in items]
        return by_user, by_time

    def users(self) -> list[int]:
        """All user ids present in the index."""
        return list(self._logs)

    def logs_before(self, uid: int, as_of: float) -> list[BehaviorLog]:
        """All logs of ``uid`` with timestamp <= ``as_of``."""
        times = self._times.get(uid)
        if not times:
            return []
        end = bisect.bisect_right(times, as_of)
        return self._logs[uid][:end]

    def count_before(self, uid: int, as_of: float) -> int:
        """``len(logs_before(uid, as_of))`` without materializing the slice."""
        times = self._times.get(uid)
        if not times:
            return 0
        return bisect.bisect_right(times, as_of)

    def packed(self, uid: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar view of a user's history for batched feature assembly.

        Returns ``(times, group_ids, group_btypes)``: the time-sorted
        timestamp array, a per-log id of the ``(btype, value)`` entity group
        (``-1`` for behavior types outside the distinct-count set) and, per
        group, the index of its type in the distinct-count type tuple.
        Built once at construction — the index is immutable — so serving
        never pays the grouping pass.
        """
        cached = self._packed_cache.get(uid)
        if cached is not None:
            return cached
        # Only unknown users miss the eagerly-built cache: empty history.
        packed = self._build_packed(
            self._logs.get(uid, []), np.asarray(self._times.get(uid, []))
        )
        self._packed_cache[uid] = packed
        return packed

    @staticmethod
    def _build_packed(
        items: Sequence[BehaviorLog], times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        times = np.ascontiguousarray(times, dtype=np.float64)
        group_ids = np.empty(len(items), dtype=np.int64)
        group_btypes: list[int] = []
        gid_of: dict[tuple[int, object], int] = {}
        for i, log in enumerate(items):
            btype_idx = _DISTINCT_IDX.get(log.btype, -1)
            if btype_idx < 0:
                group_ids[i] = -1
                continue
            key = (btype_idx, log.value)
            gid = gid_of.get(key)
            if gid is None:
                gid = len(group_btypes)
                gid_of[key] = gid
                group_btypes.append(btype_idx)
            group_ids[i] = gid
        return (times, group_ids, np.asarray(group_btypes, dtype=np.int64))

    def logs_in_window(self, uid: int, as_of: float, window: float) -> list[BehaviorLog]:
        """Logs of ``uid`` within ``(as_of - window, as_of]``."""
        times = self._times.get(uid)
        if not times:
            return []
        end = bisect.bisect_right(times, as_of)
        start = bisect.bisect_left(times, as_of - window, 0, end)
        return self._logs[uid][start:end]


def statistical_features(index: UserLogIndex, uid: int, as_of: float) -> np.ndarray:
    """Compute ``X_s`` for ``uid`` as observed at ``as_of``."""
    values: list[float] = []
    for _label, window in STAT_WINDOWS:
        window_logs = index.logs_in_window(uid, as_of, window)
        values.append(float(len(window_logs)))
        for btype in _DISTINCT_TYPES:
            distinct = {l.value for l in window_logs if l.btype == btype}
            values.append(float(len(distinct)))

    history = index.logs_before(uid, as_of)
    values.append(float(len(history)))
    times = np.asarray([l.timestamp for l in history])
    if len(times) >= 3:
        gaps = np.diff(times)
        gaps = gaps[gaps > 0]
        if len(gaps) >= 2:
            mean_gap = float(gaps.mean())
            values.append(mean_gap / HOUR)
            # Goh-Barabasi burstiness in [-1, 1]: 1 for extreme bursts,
            # 0 for Poisson, -1 for perfectly regular activity.
            std_gap = float(gaps.std())
            values.append((std_gap - mean_gap) / (std_gap + mean_gap))
        else:
            values.extend([0.0, 0.0])
    else:
        values.extend([0.0, 0.0])

    if len(times) > 0:
        hour_of_day = (times % DAY) / HOUR
        night = np.mean((hour_of_day < 6.0) | (hour_of_day >= 23.0))
        values.append(float(night))
        values.append(float((times[-1] - times[0]) / DAY))
    else:
        values.extend([0.0, 0.0])
    return np.asarray(values)


def statistical_features_batch(
    index: UserLogIndex, pairs: Sequence[tuple[int, float]]
) -> np.ndarray:
    """Columnar ``X_s`` for many ``(uid, as_of)`` pairs in one pass.

    Bit-for-bit equal to :func:`statistical_features` row by row, but
    assembled from the index's packed per-user arrays: window log counts are
    ``np.searchsorted`` differences instead of ``logs_in_window`` list
    slices, and distinct-entity counts come from one stable group sort of
    the 30-day slice — a ``(btype, value)`` entity is active in window ``w``
    exactly when its last occurrence at or before ``as_of`` falls inside
    ``[as_of - w, as_of]``, so one pass over group last-seen times yields
    all ``windows × types`` counts.  The burstiness/night/span tail runs the
    identical numpy expressions on the packed slice (same dtype, length and
    contiguity ⇒ same reduction order ⇒ same bits).
    """
    window_sizes = np.asarray([window for _label, window in STAT_WINDOWS])
    n_windows = len(window_sizes)
    n_types = len(_DISTINCT_TYPES)
    head_width = n_windows * (1 + n_types)
    rows = np.zeros((len(pairs), len(statistical_feature_names())))
    head = np.empty((n_windows, 1 + n_types))
    for row_idx, (uid, as_of) in enumerate(pairs):
        times, group_ids, group_btypes = index.packed(uid)
        end = int(np.searchsorted(times, as_of, side="right"))
        history = times[:end]
        starts = np.searchsorted(history, as_of - window_sizes, side="left")

        head[:, 0] = end - starts  # integer window counts, exact in float64
        head[:, 1:] = 0.0
        slice_start = int(starts[-1])  # widest window contains the others
        slice_groups = group_ids[slice_start:end]
        tracked = slice_groups >= 0
        if tracked.any():
            groups = slice_groups[tracked]
            group_times = history[slice_start:][tracked]
            order = np.argsort(groups, kind="stable")
            groups = groups[order]
            group_times = group_times[order]
            is_last = np.empty(len(groups), dtype=bool)
            is_last[:-1] = groups[1:] != groups[:-1]
            is_last[-1] = True
            last_seen = group_times[is_last]
            last_btype = group_btypes[groups[is_last]]
            # STAT_WINDOWS grows strictly, so the cutoffs ``as_of - window``
            # fall strictly: an entity last seen at ``t`` is active in
            # exactly the trailing ``k`` windows with cutoff <= ``t``.  One
            # combined bincount over (first-active-window, type) plus an
            # integer suffix-cumsum therefore reproduces the per-window
            # ``last_seen >= cutoff`` bincounts exactly (counts are ints).
            active_in = np.searchsorted(
                (as_of - window_sizes)[::-1], last_seen, side="right"
            )
            first_w = n_windows - active_in
            flat = np.bincount(
                first_w * n_types + last_btype, minlength=head_width - n_windows
            )
            head[:, 1:] = np.cumsum(flat.reshape(n_windows, n_types), axis=0)

        row = rows[row_idx]
        row[:head_width] = head.ravel()
        row[head_width] = end
        if end >= 3:
            gaps = np.diff(history)
            gaps = gaps[gaps > 0]
            if len(gaps) >= 2:
                mean_gap = float(gaps.mean())
                row[head_width + 1] = mean_gap / HOUR
                std_gap = float(gaps.std())
                row[head_width + 2] = (std_gap - mean_gap) / (std_gap + mean_gap)

        if end > 0:
            hour_of_day = (history % DAY) / HOUR
            night = np.mean((hour_of_day < 6.0) | (hour_of_day >= 23.0))
            row[head_width + 3] = float(night)
            row[head_width + 4] = float((history[-1] - history[0]) / DAY)
    return rows
