"""Feature management module: assemble node features ``X_{u+tau}`` + ``X_s``.

The paper concatenates a user's profile features ``X_u`` with the features of
the audited transaction ``X_tau`` (Table II's node feature) and the behavior
statistical features ``X_s`` (Section V).  This module owns that assembly and
the standardization applied before models consume the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datagen.entities import Dataset, Transaction, User
from .profile import PROFILE_FEATURE_NAMES, profile_features
from .statistical import (
    UserLogIndex,
    statistical_feature_names,
    statistical_features,
    statistical_features_batch,
)
from .transaction import TRANSACTION_FEATURE_NAMES, transaction_features

__all__ = ["FeatureManager", "StandardScaler", "LabeledMatrix"]


class StandardScaler:
    """Column-wise standardization fit on training rows only."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        """Estimate per-column mean and standard deviation."""
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("fit expects a non-empty 2-D matrix")
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        self.std_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Standardize columns using the fitted statistics."""
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler is not fitted")
        return (matrix - self.mean_) / self.std_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit on ``matrix`` and return its standardized copy."""
        return self.fit(matrix).transform(matrix)


@dataclass(slots=True)
class LabeledMatrix:
    """A feature matrix aligned with transactions, uids and labels."""

    features: np.ndarray
    labels: np.ndarray
    uids: np.ndarray
    txn_ids: np.ndarray
    feature_names: tuple[str, ...]


class FeatureManager:
    """Builds feature vectors for applications, as observed at audit time.

    Mirrors the online feature management module: given a detection request
    for transaction ``tau`` of user ``u`` at time ``t``, it assembles
    ``[X_u ; X_tau ; X_s(u, t)]``.  The observation time defaults to
    ``txn.audit_at`` (24 hours after the order, per the paper's offline
    evaluation protocol).
    """

    def __init__(self, dataset: Dataset, include_stats: bool = True) -> None:
        self.dataset = dataset
        self.include_stats = include_stats
        self.log_index = UserLogIndex(dataset.logs)
        self._users = dataset.user_by_id()
        names = PROFILE_FEATURE_NAMES + TRANSACTION_FEATURE_NAMES
        if include_stats:
            names = names + statistical_feature_names()
        self.feature_names: tuple[str, ...] = names

    @property
    def dim(self) -> int:
        return len(self.feature_names)

    def vector(self, txn: Transaction, as_of: float | None = None) -> np.ndarray:
        """Raw (unscaled) feature vector for one application.

        Always contains ``[X_u ; X_tau]`` (the node feature ``X_{u+tau}`` of
        Table II); the behavior statistics ``X_s`` are appended when the
        manager was built with ``include_stats=True`` (the deployed system's
        configuration, Section V).
        """
        user = self._users.get(txn.uid)
        if user is None:
            raise KeyError(f"unknown user {txn.uid}")
        when = txn.audit_at if as_of is None else as_of
        parts = [profile_features(user, when), transaction_features(txn, user)]
        if self.include_stats:
            parts.append(statistical_features(self.log_index, txn.uid, when))
        return np.concatenate(parts)

    def vector_batch(
        self,
        transactions: Sequence[Transaction],
        as_ofs: Sequence[float | None],
    ) -> list[np.ndarray]:
        """Raw feature vectors for many applications, with columnar ``X_s``.

        Row ``k`` is bit-for-bit ``self.vector(transactions[k], as_ofs[k])``;
        the profile and transaction blocks are the same per-row calls, while
        the behavior-statistics block for all rows comes from one
        :func:`~repro.features.statistical.statistical_features_batch` pass
        over the packed log index.
        """
        if len(transactions) != len(as_ofs):
            raise ValueError("one as_of per transaction is required")
        whens = [
            txn.audit_at if as_of is None else as_of
            for txn, as_of in zip(transactions, as_ofs)
        ]
        stats: np.ndarray | None = None
        if self.include_stats and transactions:
            stats = statistical_features_batch(
                self.log_index,
                [(txn.uid, when) for txn, when in zip(transactions, whens)],
            )
        rows: list[np.ndarray] = []
        for k, (txn, when) in enumerate(zip(transactions, whens)):
            user = self._users.get(txn.uid)
            if user is None:
                raise KeyError(f"unknown user {txn.uid}")
            parts = [profile_features(user, when), transaction_features(txn, user)]
            if stats is not None:
                parts.append(stats[k])
            rows.append(np.concatenate(parts))
        return rows

    def matrix(self, transactions: Sequence[Transaction]) -> LabeledMatrix:
        """Raw feature matrix for a list of applications."""
        if not transactions:
            raise ValueError("no transactions supplied")
        rows = np.stack([self.vector(txn) for txn in transactions])
        labels = np.asarray([int(txn.is_fraud) for txn in transactions])
        uids = np.asarray([txn.uid for txn in transactions])
        txn_ids = np.asarray([txn.txn_id for txn in transactions])
        return LabeledMatrix(rows, labels, uids, txn_ids, self.feature_names)

    def latest_transactions(self) -> list[Transaction]:
        """One application per user: the latest (the unit labeled in D1)."""
        latest: dict[int, Transaction] = {}
        for txn in self.dataset.transactions:
            current = latest.get(txn.uid)
            if current is None or txn.created_at > current.created_at:
                latest[txn.uid] = txn
        return [latest[uid] for uid in sorted(latest)]

    def node_matrix(self, uids: Sequence[int]) -> np.ndarray:
        """Raw node-feature matrix for GNN inputs, one row per uid.

        Each user is represented by their latest application, matching the
        paper's node feature ``X_{u+tau}``.
        """
        latest = {txn.uid: txn for txn in self.latest_transactions()}
        rows = []
        for uid in uids:
            txn = latest.get(uid)
            if txn is None:
                raise KeyError(f"user {uid} has no transactions")
            rows.append(self.vector(txn))
        return np.stack(rows)
