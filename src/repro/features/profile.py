"""User profile features ``X_u`` (Section II-B).

Profile information plus credit history: the inputs the paper's handcrafted
feature baselines (LR/SVM/GBDT/DNN) rely on most.
"""

from __future__ import annotations

import numpy as np

from ..datagen.entities import DAY, User

__all__ = ["PROFILE_FEATURE_NAMES", "profile_features", "N_OCCUPATIONS"]

N_OCCUPATIONS = 8

PROFILE_FEATURE_NAMES: tuple[str, ...] = (
    "age",
    "credit_score",
    "income_level",
    "phone_verified",
    "id_verified",
    "third_party_score",
    "historical_leases",
    "account_age_days",
) + tuple(f"occupation_{i}" for i in range(N_OCCUPATIONS))


def profile_features(user: User, as_of: float) -> np.ndarray:
    """Vectorize ``X_u`` as observed at time ``as_of``."""
    occupation = np.zeros(N_OCCUPATIONS)
    occupation[user.occupation_code % N_OCCUPATIONS] = 1.0
    base = np.array(
        [
            user.age,
            user.credit_score,
            user.income_level,
            float(user.phone_verified),
            float(user.id_verified),
            user.third_party_score,
            float(user.historical_leases),
            max(0.0, (as_of - user.registered_at) / DAY),
        ]
    )
    return np.concatenate([base, occupation])
