"""Streaming behavior-statistics aggregation (the Flink substitute).

Section V: "Ideally, X_s should be calculated via a streaming processing
framework such as Apache Flink.  However, at the time of our implementation,
Jimi Store did not have streaming processing infrastructure."  This module
provides that missing infrastructure in-process: a per-user sliding-window
aggregator that consumes the log stream incrementally and answers
``X_s``-style queries in O(windows) instead of rescanning the raw logs.

The produced features match :func:`repro.features.statistical.statistical_features`
exactly (a test asserts equality), so the online system can swap the
on-demand scan for the streaming aggregator without retraining.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable

import numpy as np

from ..datagen.behavior_types import BehaviorType
from ..datagen.entities import DAY, HOUR, BehaviorLog
from .statistical import STAT_WINDOWS, _DISTINCT_TYPES, statistical_feature_names

__all__ = ["StreamingAggregator", "UserWindowState"]


class UserWindowState:
    """Sliding-window state of one user: all logs within the largest window.

    Keeping the raw events of the largest window (30 days) per user is what
    a production stream processor would hold in keyed state; every smaller
    window is answered by scanning only that retained slice.
    """

    __slots__ = ("events", "total_logs", "first_timestamp", "last_timestamp")

    def __init__(self) -> None:
        self.events: Deque[tuple[float, BehaviorType, str]] = deque()
        self.total_logs = 0
        self.first_timestamp: float | None = None
        self.last_timestamp: float | None = None

    def append(self, log: BehaviorLog) -> None:
        """Record a new event and update the lifetime counters."""
        self.events.append((log.timestamp, log.btype, log.value))
        self.total_logs += 1
        if self.first_timestamp is None:
            self.first_timestamp = log.timestamp
        self.last_timestamp = log.timestamp

    def evict_before(self, cutoff: float) -> None:
        """Drop retained events older than ``cutoff``."""
        while self.events and self.events[0][0] < cutoff:
            self.events.popleft()


class StreamingAggregator:
    """Incrementally maintains per-user window statistics from a log stream.

    Limitations relative to the batch computation (documented, tested):
    the burstiness / gap statistics need the full history, so the streaming
    aggregator maintains them with online (Welford-style) accumulators over
    *all* inter-log gaps rather than a retained log buffer.
    """

    #: events older than the largest statistics window can be evicted.
    RETENTION: float = max(w for _label, w in STAT_WINDOWS)

    def __init__(self) -> None:
        self._states: dict[int, UserWindowState] = {}
        # Online gap statistics per user: count, mean, M2 (Welford).
        self._gap_stats: dict[int, list[float]] = {}
        self._night_counts: dict[int, list[int]] = {}
        self._last_seen: dict[int, float] = {}
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, logs: Iterable[BehaviorLog]) -> int:
        """Consume a batch of (time-ordered) logs; returns events processed."""
        count = 0
        for log in logs:
            self._ingest_one(log)
            count += 1
        self.events_processed += count
        return count

    def _ingest_one(self, log: BehaviorLog) -> None:
        state = self._states.get(log.uid)
        if state is None:
            state = UserWindowState()
            self._states[log.uid] = state

        previous = self._last_seen.get(log.uid)
        if previous is not None:
            gap = log.timestamp - previous
            if gap > 0:
                stats = self._gap_stats.setdefault(log.uid, [0.0, 0.0, 0.0])
                stats[0] += 1
                delta = gap - stats[1]
                stats[1] += delta / stats[0]
                stats[2] += delta * (gap - stats[1])
        self._last_seen[log.uid] = log.timestamp

        hour_of_day = (log.timestamp % DAY) / HOUR
        night = self._night_counts.setdefault(log.uid, [0, 0])
        night[1] += 1
        if hour_of_day < 6.0 or hour_of_day >= 23.0:
            night[0] += 1

        state.append(log)
        state.evict_before(log.timestamp - self.RETENTION)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def users(self) -> list[int]:
        """All user ids with streaming state."""
        return list(self._states)

    def features(self, uid: int, as_of: float) -> np.ndarray:
        """``X_s`` for ``uid`` at ``as_of`` from the streaming state.

        ``as_of`` must not precede already-ingested events for this user
        (stream processors cannot answer queries about a rewound past).
        """
        names = statistical_feature_names()
        state = self._states.get(uid)
        if state is None:
            return np.zeros(len(names))
        if state.last_timestamp is not None and as_of < state.last_timestamp:
            raise ValueError(
                "streaming state has advanced past the requested as_of time"
            )

        values: list[float] = []
        events = [e for e in state.events if e[0] <= as_of]
        for _label, window in STAT_WINDOWS:
            lo = as_of - window
            window_events = [e for e in events if e[0] > lo]
            values.append(float(len(window_events)))
            for btype in _DISTINCT_TYPES:
                distinct = {v for _t, b, v in window_events if b == btype}
                values.append(float(len(distinct)))

        values.append(float(state.total_logs))
        stats = self._gap_stats.get(uid)
        if stats is not None and stats[0] >= 2:
            mean_gap = stats[1]
            # Population std to match numpy's default ddof=0.
            std_gap = float(np.sqrt(stats[2] / stats[0]))
            values.append(mean_gap / HOUR)
            values.append((std_gap - mean_gap) / (std_gap + mean_gap))
        else:
            values.extend([0.0, 0.0])

        night = self._night_counts.get(uid)
        if night is not None and night[1] > 0:
            values.append(night[0] / night[1])
        else:
            values.append(0.0)
        if state.first_timestamp is not None and state.last_timestamp is not None:
            values.append((state.last_timestamp - state.first_timestamp) / DAY)
        else:
            values.append(0.0)
        return np.asarray(values)

    def state_size(self, uid: int) -> int:
        """Retained events for ``uid`` (bounded by the retention window)."""
        state = self._states.get(uid)
        return len(state.events) if state is not None else 0
