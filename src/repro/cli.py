"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``      generate a synthetic dataset and print Table II-style statistics
``empirical``  print the Fig. 4 empirical-pattern summaries
``evaluate``   train and score detection methods (Table III-style rows)
``serve``      deploy the online system, replay requests, print telemetry
``abtest``     run the Section VI-E A/B replay against the rule scorecard
``trace``      replay requests and render one request's span tree + metrics
``lambda``     two-tier serving demo: batch pass, replay, staleness stats
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Turbo (ICDE 2021) reproduction command-line interface",
    )
    parser.add_argument(
        "--scale", type=float, default=0.3, help="dataset scale factor"
    )
    parser.add_argument("--seed", type=int, default=7, help="generation seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("stats", help="dataset + BN statistics (Table II)")
    subparsers.add_parser("empirical", help="Fig. 4 empirical-pattern summaries")

    evaluate = subparsers.add_parser("evaluate", help="run detection methods")
    evaluate.add_argument(
        "--methods",
        default="LR,GBDT,GraphSAGE,HAG",
        help="comma-separated method names (see `repro.method_names()`)",
    )
    evaluate.add_argument("--seeds", default="0", help="comma-separated seeds")

    serve = subparsers.add_parser("serve", help="online system demo")
    serve.add_argument("--requests", type=int, default=100)
    serve.add_argument("--no-cache", action="store_true")

    abtest = subparsers.add_parser("abtest", help="online A/B replay")
    abtest.add_argument("--threshold", type=float, default=0.85)

    trace = subparsers.add_parser(
        "trace", help="replay requests, render a span tree + metrics snapshot"
    )
    trace.add_argument("--requests", type=int, default=20)
    trace.add_argument(
        "--index",
        type=int,
        default=-1,
        help="which replayed request's trace to render (default: the last)",
    )
    trace.add_argument(
        "--export",
        default=None,
        metavar="PATH",
        help="also write every trace's spans to a JSONL file",
    )

    lam = subparsers.add_parser(
        "lambda",
        help="two-tier (batch + delta) serving: run a batch pass, replay "
        "requests, print staleness/refresh stats",
    )
    lam.add_argument("--requests", type=int, default=50)
    lam.add_argument(
        "--staleness-budget",
        type=int,
        default=0,
        help="max delta edge touches a cached score may carry (0 = bit-exact)",
    )
    lam.add_argument(
        "--refresh",
        action="store_true",
        help="trigger a second batch pass after the replay (incremental "
        "when a valid prior state exists and --incremental is on)",
    )
    lam.add_argument(
        "--full-graph",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="materialize via the global sampled-adjacency sweep "
        "(--no-full-graph keeps the per-user union replay)",
    )
    lam.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="refreshes recompute only the delta's affected cone",
    )
    lam.add_argument(
        "--parity",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="re-run the batch pass through the legacy per-user replay and "
        "byte-compare the states (exit 1 on mismatch)",
    )
    return parser


def _make_data(args):
    from .datagen import make_d1
    from .eval import prepare_experiment
    from .network import FAST_WINDOWS

    dataset = make_d1(scale=args.scale, seed=args.seed)
    return dataset, prepare_experiment(dataset, windows=FAST_WINDOWS, seed=0)


def cmd_stats(args) -> int:
    from .datagen import dataset_statistics, make_d1
    from .network import BNBuilder, FAST_WINDOWS

    dataset = make_d1(scale=args.scale, seed=args.seed)
    bn = BNBuilder(windows=FAST_WINDOWS).build(dataset.logs)
    stats = dataset_statistics(dataset, bn)
    print(f"{'Dataset':<8}{'# node':>10}{'# positive':>12}{'# edge':>12}{'# type':>8}")
    print(stats.as_row())
    print(f"behavior logs: {len(dataset.logs):,}")
    return 0


def cmd_empirical(args) -> int:
    from .eval.empirical import hop_fraud_ratios, time_burst_summary
    from .network import BNBuilder, FAST_WINDOWS
    from .datagen import make_d1

    dataset = make_d1(scale=args.scale, seed=args.seed)
    bn = BNBuilder(windows=FAST_WINDOWS).build(dataset.logs)
    labels = dataset.labels
    for name, fraud in (("normal", False), ("fraud", True)):
        burst = time_burst_summary(dataset, fraud=fraud)
        print(
            f"{name:<7} users={burst.n_users:<5} std={burst.mean_std_days:6.1f}d"
            f"  near-application={100 * burst.near_application_fraction:5.1f}%"
        )
    fraud_hops = hop_fraud_ratios(bn, labels, fraud=True, max_hops=2)
    normal_hops = hop_fraud_ratios(bn, labels, fraud=False, max_hops=2)
    print(f"hop-1/2 fraud ratio around fraud:  {fraud_hops[0]:.3f} / {fraud_hops[1]:.3f}")
    print(f"hop-1/2 fraud ratio around normal: {normal_hops[0]:.3f} / {normal_hops[1]:.3f}")
    return 0


def cmd_evaluate(args) -> int:
    from .baselines import get_method
    from .eval import repeat_method

    _dataset, data = _make_data(args)
    seeds = tuple(int(s) for s in args.seeds.split(","))
    names = [name.strip() for name in args.methods.split(",") if name.strip()]
    print(
        f"{'Method':<12}{'Precision':>10}{'Recall':>10}{'F1':>10}{'F2':>10}{'AUC':>10}"
    )
    for name in names:
        result = repeat_method(name, get_method(name), data, seeds=seeds)
        row = result.report.as_percentages()
        print(
            f"{name:<12}{row['Precision']:>10.2f}{row['Recall']:>10.2f}"
            f"{row['F1']:>10.2f}{row['F2']:>10.2f}{row['AUC']:>10.2f}"
        )
    return 0


def cmd_serve(args) -> int:
    from .datagen import make_d1
    from .network import FAST_WINDOWS
    from .system import TurboConfig, deploy_turbo

    dataset = make_d1(scale=args.scale, seed=args.seed)
    turbo, data = deploy_turbo(
        dataset,
        TurboConfig(
            windows=FAST_WINDOWS,
            use_cache=not args.no_cache,
            train_epochs=30,
            hidden=(32, 16),
            seed=0,
        ),
    )
    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    rng = np.random.default_rng(0)
    uids = rng.choice(sorted(latest), size=min(args.requests, len(latest)), replace=False)
    for uid in uids:
        txn = latest[int(uid)]
        turbo.handle_request(txn, now=txn.audit_at)
    print(turbo.monitor.report())
    return 0


def cmd_abtest(args) -> int:
    from .baselines import default_scorecard
    from .datagen import make_d1
    from .network import FAST_WINDOWS
    from .system import TurboConfig, deploy_turbo, run_ab_test

    dataset = make_d1(scale=args.scale, seed=args.seed)
    turbo, data = deploy_turbo(
        dataset,
        TurboConfig(
            windows=FAST_WINDOWS,
            threshold=args.threshold,
            train_epochs=30,
            hidden=(32, 16),
            seed=0,
        ),
    )
    test_uids = {data.nodes[i] for i in data.test_idx}
    transactions = [t for t in dataset.transactions if t.uid in test_uids]
    result = run_ab_test(
        turbo, default_scorecard(0.6), dataset, transactions, np.random.default_rng(0)
    )
    print(
        f"baseline fraud ratio {100 * result.baseline_fraud_ratio:.2f}%  "
        f"test fraud ratio {100 * result.test_fraud_ratio:.2f}%  "
        f"reduction {100 * result.fraud_ratio_reduction:.1f}%"
    )
    print(
        f"online precision {100 * result.online_precision:.1f}%  "
        f"recall {100 * result.online_recall:.1f}%"
    )
    return 0


def cmd_trace(args) -> int:
    from .datagen import make_d1
    from .network import FAST_WINDOWS
    from .obs import assert_all_traced, render_span_tree, write_spans_jsonl
    from .system import TurboConfig, deploy_turbo

    dataset = make_d1(scale=args.scale, seed=args.seed)
    turbo, data = deploy_turbo(
        dataset,
        TurboConfig(windows=FAST_WINDOWS, train_epochs=30, hidden=(32, 16), seed=0),
    )
    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    rng = np.random.default_rng(0)
    uids = rng.choice(
        sorted(latest), size=min(args.requests, len(latest)), replace=False
    )
    responses = []
    for uid in uids:
        txn = latest[int(uid)]
        responses.append(turbo.handle_request(txn, now=txn.audit_at))
    assert_all_traced(responses)
    response = responses[args.index]
    print(
        f"trace {response.trace_id}  uid={response.uid}  txn={response.txn_id}"
        f"  degradation={response.degradation}"
    )
    print(render_span_tree(response.span))
    print()
    print(turbo.metrics.render())
    if args.export:
        lines = write_spans_jsonl([r.span for r in responses], args.export)
        print(f"\nexported {lines} spans to {args.export}")
    return 0


def cmd_lambda(args) -> int:
    from .datagen import make_d1
    from .network import FAST_WINDOWS
    from .obs import assert_all_traced
    from .system import TurboConfig, deploy_turbo

    dataset = make_d1(scale=args.scale, seed=args.seed)
    turbo, data = deploy_turbo(
        dataset,
        TurboConfig(
            windows=FAST_WINDOWS,
            train_epochs=30,
            hidden=(32, 16),
            seed=0,
            lambda_tier=True,
            lambda_staleness_budget=args.staleness_budget,
            lambda_full_graph=args.full_graph,
            lambda_incremental=args.incremental,
        ),
    )
    lam = turbo.lambda_layer

    def report_materialize(label: str) -> None:
        last = lam.last_materialize
        if last is None:
            print(f"{label}: per-user replay (no materialize stats)")
            return
        print(
            f"{label}: mode={last.mode}  rows={last.rows_computed}/{last.total_rows}"
            f"  edges={last.edges_touched}  cone={last.cone_rows}"
            f"  layer rows={last.layer_rows}"
        )

    report_materialize("deploy pass")
    latest = {t.uid: t for t in data.feature_manager.latest_transactions()}
    rng = np.random.default_rng(0)
    uids = rng.choice(
        sorted(latest), size=min(args.requests, len(latest)), replace=False
    )
    responses = []
    for uid in uids:
        txn = latest[int(uid)]
        responses.append(turbo.handle_request(txn, now=txn.audit_at))
    assert_all_traced(responses)
    if args.refresh:
        lam.run_incremental_pass(turbo.clock.now())
        report_materialize("refresh pass")

    served = {"lambda": 0, "sampled": 0}
    for response in responses:
        served[response.tier] = served.get(response.tier, 0) + 1
    stats = lam.stats()
    print(
        f"batch passes {stats['batch_passes']:.0f}  "
        f"covered nodes {stats['covered_nodes']:.0f}  "
        f"bn version {stats['bn_version']:.0f}"
    )
    print(
        f"served: lambda={served['lambda']}  sampled={served['sampled']}  "
        f"(staleness budget {args.staleness_budget})"
    )
    print(
        f"lookups: hits={stats['hits']:.0f}  "
        f"miss.uncovered={stats['misses_uncovered']:.0f}  "
        f"miss.stale={stats['misses_stale']:.0f}  "
        f"miss.unbound={stats['misses_unbound']:.0f}"
    )
    print(
        f"fallthrough: requests={stats['fallthrough_requests']:.0f}  "
        f"sampled nodes={stats['fallthrough_nodes']:.0f}  "
        f"pending delta size={stats['delta_size']:.0f}"
    )

    if args.parity and args.full_graph:
        # Cross-check the sweep against the legacy per-user replay: both
        # recompute every target at the same BN version, so the resulting
        # states must match byte for byte.
        reference = lam.state
        lam.full_graph = False
        lam.incremental = False
        lam.run_batch_pass(turbo.clock.now())
        lam.full_graph = True
        lam.incremental = args.incremental
        got, want = lam.state.to_arrays(), reference.to_arrays()
        mismatched = sorted(
            name
            for name in want
            if name not in got or got[name].tobytes() != want[name].tobytes()
        )
        if mismatched or got.keys() != want.keys():
            print(f"parity check FAILED: mismatched arrays {mismatched}")
            return 1
        print(f"parity check OK: {len(want)} state arrays byte-identical")
    return 0


_COMMANDS = {
    "stats": cmd_stats,
    "empirical": cmd_empirical,
    "evaluate": cmd_evaluate,
    "serve": cmd_serve,
    "abtest": cmd_abtest,
    "trace": cmd_trace,
    "lambda": cmd_lambda,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
