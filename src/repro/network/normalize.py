"""Per-type edge-weight normalization (Section III-A, Sampling & normalization).

To account for the volume difference of edge types, the paper normalizes each
edge weight symmetrically by the *weighted* degrees of its endpoints on that
type::

    w'_r(u, v) = w_r(u, v) * (deg'_r(u) * deg'_r(v)) ** -0.5
    deg'_r(u)  = sum of type-r edge weights incident to u
"""

from __future__ import annotations

import numpy as np

from ..datagen.behavior_types import BehaviorType
from .bn import BehaviorNetwork

__all__ = ["normalized_weight", "type_weighted_degrees"]


def type_weighted_degrees(
    bn: BehaviorNetwork, btype: BehaviorType
) -> dict[int, float]:
    """Weighted degree ``deg'_r(u)`` for every node with type-``r`` edges.

    Accumulated on the cached CSR snapshot (one ``np.add.at`` pass) rather
    than per-edge Python iteration; the dict return type is kept for
    callers that look degrees up by user id.
    """
    snapshot = bn.to_arrays()
    degrees = snapshot.weighted_degrees(btype)
    populated = np.flatnonzero(degrees)
    node_ids = snapshot.node_ids
    return {int(node_ids[i]): float(degrees[i]) for i in populated}


def normalized_weight(
    weight: float, deg_u: float, deg_v: float
) -> float:
    """Apply the symmetric normalization; returns 0 for isolated endpoints."""
    if deg_u <= 0.0 or deg_v <= 0.0:
        return 0.0
    return weight / (deg_u * deg_v) ** 0.5
