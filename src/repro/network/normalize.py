"""Per-type edge-weight normalization (Section III-A, Sampling & normalization).

To account for the volume difference of edge types, the paper normalizes each
edge weight symmetrically by the *weighted* degrees of its endpoints on that
type::

    w'_r(u, v) = w_r(u, v) * (deg'_r(u) * deg'_r(v)) ** -0.5
    deg'_r(u)  = sum of type-r edge weights incident to u
"""

from __future__ import annotations

from ..datagen.behavior_types import BehaviorType
from .bn import BehaviorNetwork

__all__ = ["normalized_weight", "type_weighted_degrees"]


def type_weighted_degrees(
    bn: BehaviorNetwork, btype: BehaviorType
) -> dict[int, float]:
    """Weighted degree ``deg'_r(u)`` for every node with type-``r`` edges."""
    degrees: dict[int, float] = {}
    for u, v, _t, record in bn.iter_edges(btype):
        degrees[u] = degrees.get(u, 0.0) + record.weight
        degrees[v] = degrees.get(v, 0.0) + record.weight
    return degrees


def normalized_weight(
    weight: float, deg_u: float, deg_v: float
) -> float:
    """Apply the symmetric normalization; returns 0 for isolated endpoints."""
    if deg_u <= 0.0 or deg_v <= 0.0:
        return 0.0
    return weight / (deg_u * deg_v) ** 0.5
