"""The time-evolving heterogeneous Behavior Network (BN).

BN is an undirected multigraph over user nodes: each edge carries a type
``r`` (one of the behavior types), an accumulated weight ``w_r(u, v)``, and
the timestamp of its last contribution (for TTL expiry, Section V: max TTL of
60 days per edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx

from ..datagen.behavior_types import BehaviorType
from ..datagen.entities import DAY
from .snapshot import BNSnapshot, build_snapshot

__all__ = ["EdgeRecord", "BehaviorNetwork", "DEFAULT_EDGE_TTL"]

#: Section V: "a max TTL is set to 60 days for each edge".
DEFAULT_EDGE_TTL: float = 60.0 * DAY


@dataclass(slots=True)
class EdgeRecord:
    """Accumulated weight and recency of one typed edge."""

    weight: float = 0.0
    last_update: float = 0.0


def _key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


class BehaviorNetwork:
    """Typed, weighted, timestamped user-user multigraph.

    Storage is a two-level dict: ``(min(u,v), max(u,v)) -> {type -> EdgeRecord}``
    plus a per-node adjacency index for O(deg) neighbourhood queries, which is
    what the BN server's subgraph sampling needs to be fast.
    """

    def __init__(self, ttl: float = DEFAULT_EDGE_TTL) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = ttl
        self._edges: dict[tuple[int, int], dict[BehaviorType, EdgeRecord]] = {}
        self._adjacency: dict[int, set[int]] = {}
        self._version = 0
        self._snapshot: BNSnapshot | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_weight(
        self, u: int, v: int, btype: BehaviorType, weight: float, timestamp: float
    ) -> None:
        """Accumulate ``weight`` onto the typed edge ``(u, v, btype)``."""
        if u == v:
            raise ValueError("self-loops are not part of BN")
        if weight <= 0:
            raise ValueError("edge weight contributions must be positive")
        key = _key(u, v)
        records = self._edges.setdefault(key, {})
        record = records.setdefault(btype, EdgeRecord())
        record.weight += weight
        record.last_update = max(record.last_update, timestamp)
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)
        self._version += 1

    def add_node(self, uid: int) -> None:
        """Register a node even if it has no edges yet."""
        if uid not in self._adjacency:
            self._adjacency[uid] = set()
            self._version += 1

    def expire_edges(self, now: float) -> int:
        """Drop typed edges older than the TTL; returns how many were removed.

        Mirrors the BN server's periodic cleanup that prevents the monotonous
        increase of the graph (Section V).
        """
        cutoff = now - self.ttl
        removed = 0
        dead_pairs: list[tuple[int, int]] = []
        for pair, records in self._edges.items():
            stale = [t for t, rec in records.items() if rec.last_update < cutoff]
            for t in stale:
                del records[t]
                removed += 1
            if not records:
                dead_pairs.append(pair)
        for u, v in dead_pairs:
            del self._edges[(u, v)]
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)
        if removed:
            self._version += 1
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, uid: int) -> bool:
        return uid in self._adjacency

    def nodes(self) -> list[int]:
        """All registered node ids."""
        return list(self._adjacency)

    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._adjacency)

    def num_edges(self) -> int:
        """Number of typed edges (``(u, v, r)`` triples), as in Table II."""
        return sum(len(records) for records in self._edges.values())

    def num_pairs(self) -> int:
        """Number of connected node pairs irrespective of type."""
        return len(self._edges)

    def edge_types(self) -> set[BehaviorType]:
        """The set of edge types present in the network."""
        types: set[BehaviorType] = set()
        for records in self._edges.values():
            types.update(records)
        return types

    def neighbors(self, uid: int, btype: BehaviorType | None = None) -> list[int]:
        """Neighbours of ``uid``; restricted to edge type ``btype`` if given."""
        if uid not in self._adjacency:
            return []
        if btype is None:
            return list(self._adjacency[uid])
        return [
            v
            for v in self._adjacency[uid]
            if btype in self._edges[_key(uid, v)]
        ]

    def edge(self, u: int, v: int) -> dict[BehaviorType, EdgeRecord]:
        """All typed records between ``u`` and ``v`` (empty dict if none)."""
        return self._edges.get(_key(u, v), {})

    def weight(self, u: int, v: int, btype: BehaviorType) -> float:
        """Accumulated weight of the typed edge (0 if absent)."""
        record = self._edges.get(_key(u, v), {}).get(btype)
        return record.weight if record is not None else 0.0

    def total_weight(self, u: int, v: int) -> float:
        """Sum of the pair's weights over all edge types."""
        return sum(rec.weight for rec in self._edges.get(_key(u, v), {}).values())

    def weighted_degree(self, uid: int, btype: BehaviorType | None = None) -> float:
        """Sum of (typed) edge weights incident to ``uid``."""
        total = 0.0
        for v in self._adjacency.get(uid, ()):
            records = self._edges[_key(uid, v)]
            if btype is None:
                total += sum(rec.weight for rec in records.values())
            elif btype in records:
                total += records[btype].weight
        return total

    def degree(self, uid: int, btype: BehaviorType | None = None) -> int:
        """Neighbour count, optionally restricted to one edge type."""
        if btype is None:
            return len(self._adjacency.get(uid, ()))
        return len(self.neighbors(uid, btype))

    def iter_edges(
        self, btype: BehaviorType | None = None
    ) -> Iterator[tuple[int, int, BehaviorType, EdgeRecord]]:
        """Yield ``(u, v, type, record)`` with ``u < v``."""
        for (u, v), records in self._edges.items():
            for t, record in records.items():
                if btype is None or t == btype:
                    yield u, v, t, record

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumps whenever the graph actually changes."""
        return self._version

    def to_arrays(self) -> BNSnapshot:
        """Export the network as flat typed numpy arrays (CSR-native form).

        The snapshot is memoized against :attr:`version` — repeated calls
        between mutations return the same object, and any ``add_weight`` /
        ``add_node`` / effective ``expire_edges`` invalidates the cache so
        the next call rebuilds.  See ``docs/PERFORMANCE.md`` for the
        contract and :mod:`repro.network.snapshot` for the layout.
        """
        cached = self._snapshot
        if cached is not None and cached.version == self._version:
            return cached
        snapshot = build_snapshot(self._edges, self._adjacency, self._version)
        self._snapshot = snapshot
        return snapshot

    def khop_neighborhood(
        self, uid: int, hops: int, allowed: set[int] | None = None
    ) -> dict[int, int]:
        """Map node -> hop distance for nodes within ``hops`` of ``uid``.

        ``allowed`` restricts the traversal (the paper's computation subgraph
        only includes nodes having transactions).
        """
        if hops < 0:
            raise ValueError("hops must be non-negative")
        distances = {uid: 0}
        frontier = [uid]
        for depth in range(1, hops + 1):
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in self._adjacency.get(node, ()):
                    if neighbor in distances:
                        continue
                    if allowed is not None and neighbor not in allowed:
                        continue
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def to_networkx(self, nodes: Iterable[int] | None = None) -> nx.MultiGraph:
        """Export (a node-induced part of) BN as a networkx multigraph."""
        graph = nx.MultiGraph()
        keep = set(nodes) if nodes is not None else None
        for uid in self._adjacency:
            if keep is None or uid in keep:
                graph.add_node(uid)
        for (u, v), records in self._edges.items():
            if keep is not None and (u not in keep or v not in keep):
                continue
            for t, record in records.items():
                graph.add_edge(u, v, key=t.value, btype=t, weight=record.weight)
        return graph
