"""The time-evolving heterogeneous Behavior Network (BN).

BN is an undirected multigraph over user nodes: each edge carries a type
``r`` (one of the behavior types), an accumulated weight ``w_r(u, v)``, and
the timestamp of its last contribution (for TTL expiry, Section V: max TTL of
60 days per edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from ..datagen.behavior_types import BehaviorType
from ..datagen.entities import DAY
from .segments import INT64_SAFE_SPAN, segment_fold_max, segment_fold_sum
from .snapshot import BNSnapshot, build_snapshot

__all__ = [
    "EdgeRecord",
    "BehaviorNetwork",
    "DEFAULT_EDGE_TTL",
    "WeightGroups",
    "prepare_weight_groups",
]

#: Section V: "a max TTL is set to 60 days for each edge".
DEFAULT_EDGE_TTL: float = 60.0 * DAY

#: TTL sweeps index edges into ``ttl / _EXPIRY_BUCKETS``-wide time buckets,
#: so a sweep inspects only the buckets at or past the cutoff instead of
#: scanning the whole graph.
_EXPIRY_BUCKETS: int = 16


@dataclass(slots=True)
class EdgeRecord:
    """Accumulated weight and recency of one typed edge."""

    weight: float = 0.0
    last_update: float = 0.0


def _key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


@dataclass(slots=True)
class WeightGroups:
    """One ``add_weights`` batch, validated, grouped and reduced per typed edge.

    Produced by :func:`prepare_weight_groups` — the stateless half of batched
    ingest (validation, lo/hi canonicalization, stable grouping, segment
    folds, key boxing).  Applying it with
    :meth:`BehaviorNetwork.apply_weight_groups` is bit-for-bit the original
    ``add_weights``.  The split exists so a sharded deployment's router tier
    can run the preparation for every owner shard off the shard workers'
    critical path (see :mod:`repro.network.sharding`).
    """

    n: int  # contributions in the batch
    w_s: np.ndarray  # weights in grouped order
    starts: np.ndarray  # segment starts into the grouped columns
    lengths: np.ndarray  # segment lengths
    key_lo: list[int]  # per-segment pair lo
    key_hi: list[int]  # per-segment pair hi
    key_types: list[BehaviorType]  # per-segment behavior type
    totals: list[float]  # per-segment left-to-right fold from a 0.0 seed
    ts_scalar: float  # shared stamp when ``latest`` is None
    latest: list[float] | None  # per-segment max timestamp (None: scalar ts)
    bucket_ids: list[int] | None  # per-segment expiry bucket (None: scalar ts)


def prepare_weight_groups(
    u: Sequence[int] | np.ndarray,
    v: Sequence[int] | np.ndarray,
    btypes: BehaviorType | Sequence[BehaviorType] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
    timestamps: Sequence[float] | np.ndarray,
    btype_table: Sequence[BehaviorType] | None = None,
    *,
    expiry_width: float,
) -> WeightGroups | None:
    """Validate and group one ``add_weights`` batch; ``None`` when empty.

    Pure function of the batch columns plus the target network's expiry
    bucket width — no network state is read, so it can run on a different
    process (the shard router) from the one that applies it.
    """
    u_arr = np.asarray(u, dtype=np.int64)
    v_arr = np.asarray(v, dtype=np.int64)
    w_arr = np.asarray(weights, dtype=np.float64)
    scalar_ts = np.ndim(timestamps) == 0
    ts_scalar = float(timestamps) if scalar_ts else 0.0
    ts_arr = None if scalar_ts else np.asarray(timestamps, dtype=np.float64)
    n = len(u_arr)
    if not len(v_arr) == len(w_arr) == n:
        raise ValueError("add_weights columns must share one length")
    if ts_arr is not None and len(ts_arr) != n:
        raise ValueError("add_weights columns must share one length")
    single_type = isinstance(btypes, BehaviorType)
    precoded = btype_table is not None and not single_type
    if precoded:
        code_arr = np.asarray(btypes, dtype=np.int64)
        if len(code_arr) != n:
            raise ValueError("add_weights columns must share one length")
        if len(code_arr) and (
            int(code_arr.min()) < 0 or int(code_arr.max()) >= len(btype_table)
        ):
            raise ValueError("add_weights type codes out of btype_table range")
    elif not single_type:
        type_list = list(btypes)
        if len(type_list) != n:
            raise ValueError("add_weights columns must share one length")
    if n == 0:
        return None
    if np.any(w_arr <= 0):
        raise ValueError("edge weight contributions must be positive")
    if bool(np.all(u_arr < v_arr)):
        # Canonical input (the pair enumerator emits u < v): no
        # self-loops possible and no per-row min/max needed.
        lo, hi = u_arr, v_arr
    else:
        if np.any(u_arr == v_arr):
            raise ValueError("self-loops are not part of BN")
        lo = np.minimum(u_arr, v_arr)
        hi = np.maximum(u_arr, v_arr)
    # Stable sort groups each typed edge's contributions contiguously
    # while preserving their array order within the group.
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    if single_type:
        order = np.lexsort((hi, lo))
        lo_s, hi_s = lo[order], hi[order]
        boundary[1:] = (lo_s[1:] != lo_s[:-1]) | (hi_s[1:] != hi_s[:-1])
    else:
        if precoded:
            decode = list(btype_table)
            codes = code_arr
        else:
            type_ids: dict[BehaviorType, int] = {}
            codes = np.fromiter(
                (type_ids.setdefault(t, len(type_ids)) for t in type_list),
                dtype=np.int64,
                count=n,
            )
            decode = list(type_ids)
        # One packed int64 key sorts in a single stable (radix) pass
        # instead of three lexsort passes; fall back to lexsort when the
        # value spans could overflow the packing.
        lo0, hi0 = int(lo.min()), int(hi.min())
        span_hi = int(hi.max()) - hi0 + 1
        span_code = int(codes.max()) + 1
        span_lo = int(lo.max()) - lo0 + 1
        if span_lo * span_hi * span_code < INT64_SAFE_SPAN:
            packed = ((lo - lo0) * span_hi + (hi - hi0)) * span_code + codes
            order = np.argsort(packed, kind="stable")
            lo_s, hi_s, code_s = lo[order], hi[order], codes[order]
            packed_s = packed[order]
            boundary[1:] = packed_s[1:] != packed_s[:-1]
        else:
            order = np.lexsort((codes, hi, lo))
            lo_s, hi_s, code_s = lo[order], hi[order], codes[order]
            boundary[1:] = (
                (lo_s[1:] != lo_s[:-1])
                | (hi_s[1:] != hi_s[:-1])
                | (code_s[1:] != code_s[:-1])
            )
    w_s = w_arr[order]
    starts = np.flatnonzero(boundary)
    lengths = np.diff(np.append(starts, n))

    key_lo = lo_s[starts].tolist()
    key_hi = hi_s[starts].tolist()
    if single_type:
        key_types: list[BehaviorType] = [btypes] * len(starts)
    else:
        key_types = [decode[c] for c in code_s[starts].tolist()]

    # Reduce every segment as if its record started at weight 0.0 — exact
    # for created records (``0.0 + x == x``); records that already exist
    # are re-folded at apply time seeded with their current weight, which
    # is the scalar path's accumulation order bit-for-bit.
    totals = segment_fold_sum(w_s, starts, lengths).tolist()
    if scalar_ts:
        # Every contribution shares one stamp: the per-segment max is
        # that stamp, and every registration lands in one bucket.
        latest = None
        bucket_ids = None
    else:
        latest_arr = segment_fold_max(ts_arr[order], starts, lengths)
        latest = latest_arr.tolist()
        bucket_ids = (latest_arr // expiry_width).astype(np.int64).tolist()
    return WeightGroups(
        n=n,
        w_s=w_s,
        starts=starts,
        lengths=lengths,
        key_lo=key_lo,
        key_hi=key_hi,
        key_types=key_types,
        totals=totals,
        ts_scalar=ts_scalar,
        latest=latest,
        bucket_ids=bucket_ids,
    )


class BehaviorNetwork:
    """Typed, weighted, timestamped user-user multigraph.

    Storage is a two-level dict: ``(min(u,v), max(u,v)) -> {type -> EdgeRecord}``
    plus a per-node adjacency index for O(deg) neighbourhood queries, which is
    what the BN server's subgraph sampling needs to be fast.
    """

    def __init__(self, ttl: float = DEFAULT_EDGE_TTL) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = ttl
        self._edges: dict[tuple[int, int], dict[BehaviorType, EdgeRecord]] = {}
        # Insertion-ordered neighbour index (dict-as-ordered-set): neighbour
        # iteration order equals pair-creation order, which is what lets a
        # sharded deployment reconstruct the exact same order from flat
        # arrays (see repro.network.sharding).
        self._adjacency: dict[int, dict[int, None]] = {}
        # Pair-creation sequence tags: ``(lo, hi) -> seq`` stamped when the
        # pair first appears (and re-stamped on re-creation after expiry).
        # Sorting pairs by ``(seq, lo, hi)`` reproduces ``_edges`` insertion
        # order because one batch creates its pairs in (lo, hi) order.
        self._pair_seq: dict[tuple[int, int], int] = {}
        self._next_seq = 0
        self._version = 0
        self._snapshot: BNSnapshot | None = None
        self._num_edges = 0
        # Expiry index: bucket id -> typed-edge keys whose ``last_update``
        # fell in that bucket when last touched.  Entries are lazy — a
        # refreshed edge is re-registered under its new bucket and the old
        # entry is discarded the next time its bucket is swept.
        self._expiry_width = ttl / _EXPIRY_BUCKETS
        self._expiry_buckets: dict[int, set[tuple[int, int, BehaviorType]]] = {}
        # Delta tracking for the lambda speed layer: when enabled, every
        # mutation (scalar/columnar weight accumulation, TTL expiry) counts
        # one touch per typed edge per endpoint.  ``None`` means disabled.
        self._delta: dict[int, int] | None = None
        # Memoized single-shard merged index (lambda full-graph sweep); the
        # sharded facade has its own memoized ``index()``.
        self._shard_index = None

    # ------------------------------------------------------------------
    # Delta tracking (lambda speed layer)
    # ------------------------------------------------------------------
    def track_deltas(self) -> None:
        """Start (or reset) counting per-node edge touches since this call.

        While tracking, every typed-edge mutation — scalar
        :meth:`add_weight`, each typed-edge segment applied by
        :meth:`apply_weight_groups`, and each removal in
        :meth:`expire_edges` — counts one touch against both endpoints.
        The lambda batch pass calls this right after materializing, so
        :meth:`delta_touched` is exactly the set of nodes whose
        neighbourhood changed since the last batch pass.
        """
        self._delta = {}

    def delta_tracking(self) -> bool:
        """Whether delta tracking is currently enabled."""
        return self._delta is not None

    def delta_touched(self) -> dict[int, int]:
        """Per-node edge-touch counts since :meth:`track_deltas` (or empty)."""
        return dict(self._delta) if self._delta is not None else {}

    def delta_size(self) -> int:
        """Total edge touches since :meth:`track_deltas` (0 when disabled)."""
        return sum(self._delta.values()) if self._delta else 0

    def _delta_touch_pair(self, a: int, b: int) -> None:
        delta = self._delta
        delta[a] = delta.get(a, 0) + 1
        delta[b] = delta.get(b, 0) + 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _take_seq(self, seq: int | None) -> int:
        """Claim a pair-creation sequence value, keeping the counter monotone."""
        if seq is None:
            seq = self._next_seq
        self._next_seq = max(self._next_seq, seq + 1)
        return seq

    def add_weight(
        self,
        u: int,
        v: int,
        btype: BehaviorType,
        weight: float,
        timestamp: float,
        seq: int | None = None,
    ) -> None:
        """Accumulate ``weight`` onto the typed edge ``(u, v, btype)``.

        Thin scalar wrapper over the same record-update core as
        :meth:`add_weights`; every call bumps the snapshot version (batch
        callers should use :meth:`add_weights`, which bumps once).  ``seq``
        overrides the pair-creation sequence tag (sharded deployments pass
        one global value so shards agree on creation order).
        """
        if u == v:
            raise ValueError("self-loops are not part of BN")
        if weight <= 0:
            raise ValueError("edge weight contributions must be positive")
        key = _key(u, v)
        records = self._edges.get(key)
        if records is None:
            records = {}
            self._edges[key] = records
            self._pair_seq[key] = self._take_seq(seq)
        record = records.get(btype)
        if record is None:
            record = EdgeRecord()
            records[btype] = record
            self._num_edges += 1
        record.weight += weight
        record.last_update = max(record.last_update, timestamp)
        self._adjacency.setdefault(u, {})[v] = None
        self._adjacency.setdefault(v, {})[u] = None
        self._register_expiry(key, btype, record.last_update)
        if self._delta is not None:
            self._delta_touch_pair(key[0], key[1])
        self._version += 1

    def add_weights(
        self,
        u: Sequence[int] | np.ndarray,
        v: Sequence[int] | np.ndarray,
        btypes: BehaviorType | Sequence[BehaviorType] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
        btype_table: Sequence[BehaviorType] | None = None,
        seq: int | None = None,
    ) -> int:
        """Apply a batch of weight contributions with **one** version bump.

        Columnar counterpart of :meth:`add_weight`: contribution ``i``
        accumulates ``weights[i]`` onto the typed edge
        ``(u[i], v[i], btypes[i])`` (``btypes`` may be a single type applied
        to every row).  Duplicate typed edges in the batch are allowed; the
        result is bit-for-bit identical to calling :meth:`add_weight` once
        per row in array order — contributions are stably grouped per typed
        edge and summed with a sequential left-to-right fold seeded by the
        record's existing weight, so even last-ulp rounding matches the
        scalar path.  Unlike the scalar path, validation is all-or-nothing:
        a bad row raises before anything is applied.  Returns the number of
        contributions applied.

        Callers that already hold integer type codes (the window-job hot
        path) can pass ``btypes`` as an int array plus ``btype_table``
        mapping code → type, skipping the per-row Python encode; a window
        job can likewise pass ``timestamps`` as a single scalar (every
        contribution shares the epoch end), which skips the per-row
        timestamp reduction and registers all touched edges under one
        expiry bucket in bulk.
        """
        groups = prepare_weight_groups(
            u,
            v,
            btypes,
            weights,
            timestamps,
            btype_table,
            expiry_width=self._expiry_width,
        )
        if groups is None:
            return 0
        return self.apply_weight_groups(groups, seq=seq)

    def apply_weight_groups(self, groups: WeightGroups, seq: int | None = None) -> int:
        """Apply a prepared batch (see :func:`prepare_weight_groups`).

        The stateful half of :meth:`add_weights`: walks the batch's typed-edge
        segments once, mutating the edge/adjacency/expiry maps, then re-folds
        the segments whose record already existed seeded with the record's
        current weight.  ``groups`` must have been prepared with this
        network's expiry bucket width.  One version bump; returns the number
        of contributions applied.
        """
        n = groups.n
        w_s = groups.w_s
        starts = groups.starts
        lengths = groups.lengths
        key_lo = groups.key_lo
        key_hi = groups.key_hi
        key_types = groups.key_types
        totals = groups.totals
        scalar_ts = groups.latest is None
        ts_scalar = groups.ts_scalar
        latest = groups.latest
        bucket_ids = groups.bucket_ids

        edges = self._edges
        adjacency = self._adjacency
        pair_seq = self._pair_seq
        # Pairs created by this batch share one sequence tag; within the
        # batch they are created in (lo, hi) order, so ``(seq, lo, hi)``
        # totally orders pair creation across batches.
        batch_seq = self._take_seq(seq)
        created = 0
        warm_pos: list[int] = []
        warm_records: list[EdgeRecord] = []
        reg_keys: list[tuple[int, int, BehaviorType]] = []
        reg_buckets: list[int] | None = None if scalar_ts else []
        for k, (a, b, btype) in enumerate(zip(key_lo, key_hi, key_types)):
            records = edges.get((a, b))
            if records is None:
                records = {}
                edges[(a, b)] = records
                pair_seq[(a, b)] = batch_seq
                neighbours = adjacency.get(a)
                if neighbours is None:
                    adjacency[a] = {b: None}
                else:
                    neighbours[b] = None
                neighbours = adjacency.get(b)
                if neighbours is None:
                    adjacency[b] = {a: None}
                else:
                    neighbours[a] = None
            record = records.get(btype)
            stamp = ts_scalar if latest is None else latest[k]
            if record is None:
                records[btype] = EdgeRecord(totals[k], stamp if stamp > 0.0 else 0.0)
                created += 1
            else:
                warm_pos.append(k)
                warm_records.append(record)
                if stamp <= record.last_update:
                    # Recency unchanged: the record is already indexed under
                    # its current bucket, so skip re-registration.
                    continue
                record.last_update = stamp
            reg_keys.append((a, b, btype))
            if reg_buckets is not None:
                reg_buckets.append(bucket_ids[k] if stamp > 0.0 else 0)
        if reg_keys:
            expiry = self._expiry_buckets
            if reg_buckets is None:
                bucket_id = (
                    int(ts_scalar // self._expiry_width) if ts_scalar > 0.0 else 0
                )
                entries = expiry.get(bucket_id)
                if entries is None:
                    entries = set()
                    expiry[bucket_id] = entries
                entries.update(reg_keys)
            else:
                for bucket_id, key3 in zip(reg_buckets, reg_keys):
                    entries = expiry.get(bucket_id)
                    if entries is None:
                        entries = set()
                        expiry[bucket_id] = entries
                    entries.add(key3)
        if warm_pos:
            pos = np.asarray(warm_pos, dtype=np.int64)
            seeds = np.fromiter(
                (record.weight for record in warm_records),
                dtype=np.float64,
                count=len(pos),
            )
            refolded = segment_fold_sum(w_s, starts[pos], lengths[pos], seed=seeds)
            for record, weight in zip(warm_records, refolded.tolist()):
                record.weight = weight
        if self._delta is not None:
            for a, b in zip(key_lo, key_hi):
                self._delta_touch_pair(a, b)
        self._num_edges += created
        self._version += 1
        return n

    def add_node(self, uid: int) -> None:
        """Register a node even if it has no edges yet."""
        if uid not in self._adjacency:
            self._adjacency[uid] = {}
            self._version += 1

    def _register_expiry(
        self, key: tuple[int, int], btype: BehaviorType, last_update: float
    ) -> None:
        """Index a typed edge under its ``last_update`` time bucket."""
        bucket_id = int(last_update // self._expiry_width)
        entries = self._expiry_buckets.get(bucket_id)
        if entries is None:
            entries = set()
            self._expiry_buckets[bucket_id] = entries
        entries.add((key[0], key[1], btype))

    def expire_edges(self, now: float) -> int:
        """Drop typed edges older than the TTL; returns how many were removed.

        Mirrors the BN server's periodic cleanup that prevents the monotonous
        increase of the graph (Section V).  A sweep only visits the expiry
        index buckets whose time range lies at or before the cutoff, so its
        cost scales with the edges that *could* expire, not with the whole
        graph; :meth:`_expire_edges_scan` keeps the original full scan as
        the pinned parity reference.
        """
        cutoff = now - self.ttl
        width = self._expiry_width
        limit = int(cutoff // width)
        removed = 0
        edges = self._edges
        adjacency = self._adjacency
        due = [bucket_id for bucket_id in self._expiry_buckets if bucket_id <= limit]
        for bucket_id in due:
            entries = self._expiry_buckets.pop(bucket_id)
            # The cutoff falls inside the boundary bucket, so fresh entries
            # that still live there must be kept; in every earlier bucket a
            # fresh record is guaranteed to be re-registered under a newer
            # bucket, so its stale entry can simply be dropped.
            survivors: set[tuple[int, int, BehaviorType]] | None = (
                set() if bucket_id == limit else None
            )
            for key in entries:
                a, b, btype = key
                records = edges.get((a, b))
                record = records.get(btype) if records is not None else None
                if record is None:
                    continue  # already removed; lazily dropped index entry
                if record.last_update < cutoff:
                    del records[btype]
                    removed += 1
                    if self._delta is not None:
                        self._delta_touch_pair(a, b)
                    if not records:
                        del edges[(a, b)]
                        self._pair_seq.pop((a, b), None)
                        adjacency[a].pop(b, None)
                        adjacency[b].pop(a, None)
                elif survivors is not None and int(record.last_update // width) == bucket_id:
                    survivors.add(key)
            if survivors:
                self._expiry_buckets[bucket_id] = survivors
        self._num_edges -= removed
        if removed:
            self._version += 1
        return removed

    def _expire_edges_scan(self, now: float) -> int:
        """Pinned reference expiry: full scan over every typed edge.

        Kept for the indexed-expiry parity tests and the ingest benchmark's
        TTL-sweep comparison; behavior (removals, counters, version bump)
        matches :meth:`expire_edges` exactly.
        """
        cutoff = now - self.ttl
        removed = 0
        dead_pairs: list[tuple[int, int]] = []
        for pair, records in self._edges.items():
            stale = [t for t, rec in records.items() if rec.last_update < cutoff]
            for t in stale:
                del records[t]
                removed += 1
                if self._delta is not None:
                    self._delta_touch_pair(pair[0], pair[1])
            if not records:
                dead_pairs.append(pair)
        for u, v in dead_pairs:
            del self._edges[(u, v)]
            self._pair_seq.pop((u, v), None)
            self._adjacency[u].pop(v, None)
            self._adjacency[v].pop(u, None)
        self._num_edges -= removed
        if removed:
            self._version += 1
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, uid: int) -> bool:
        return uid in self._adjacency

    def nodes(self) -> list[int]:
        """All registered node ids."""
        return list(self._adjacency)

    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._adjacency)

    def num_edges(self) -> int:
        """Number of typed edges (``(u, v, r)`` triples), as in Table II.

        O(1): maintained as a running counter by :meth:`add_weight` /
        :meth:`add_weights` / :meth:`expire_edges`;
        :meth:`num_edges_scan` recomputes it from storage for the contract
        test.
        """
        return self._num_edges

    def num_edges_scan(self) -> int:
        """Recount typed edges by scanning storage (counter contract check)."""
        return sum(len(records) for records in self._edges.values())

    def num_pairs(self) -> int:
        """Number of connected node pairs irrespective of type."""
        return len(self._edges)

    def edge_types(self) -> set[BehaviorType]:
        """The set of edge types present in the network."""
        types: set[BehaviorType] = set()
        for records in self._edges.values():
            types.update(records)
        return types

    def neighbors(self, uid: int, btype: BehaviorType | None = None) -> list[int]:
        """Neighbours of ``uid``; restricted to edge type ``btype`` if given."""
        if uid not in self._adjacency:
            return []
        if btype is None:
            return list(self._adjacency[uid])
        return [
            v
            for v in self._adjacency[uid]
            if btype in self._edges[_key(uid, v)]
        ]

    def edge(self, u: int, v: int) -> dict[BehaviorType, EdgeRecord]:
        """All typed records between ``u`` and ``v`` (empty dict if none)."""
        return self._edges.get(_key(u, v), {})

    def weight(self, u: int, v: int, btype: BehaviorType) -> float:
        """Accumulated weight of the typed edge (0 if absent)."""
        record = self._edges.get(_key(u, v), {}).get(btype)
        return record.weight if record is not None else 0.0

    def total_weight(self, u: int, v: int) -> float:
        """Sum of the pair's weights over all edge types."""
        return sum(rec.weight for rec in self._edges.get(_key(u, v), {}).values())

    def weighted_degree(self, uid: int, btype: BehaviorType | None = None) -> float:
        """Sum of (typed) edge weights incident to ``uid``."""
        total = 0.0
        for v in self._adjacency.get(uid, ()):
            records = self._edges[_key(uid, v)]
            if btype is None:
                total += sum(rec.weight for rec in records.values())
            elif btype in records:
                total += records[btype].weight
        return total

    def degree(self, uid: int, btype: BehaviorType | None = None) -> int:
        """Neighbour count, optionally restricted to one edge type."""
        if btype is None:
            return len(self._adjacency.get(uid, ()))
        return len(self.neighbors(uid, btype))

    def iter_edges(
        self, btype: BehaviorType | None = None
    ) -> Iterator[tuple[int, int, BehaviorType, EdgeRecord]]:
        """Yield ``(u, v, type, record)`` with ``u < v``."""
        for (u, v), records in self._edges.items():
            for t, record in records.items():
                if btype is None or t == btype:
                    yield u, v, t, record

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumps whenever the graph actually changes."""
        return self._version

    def to_arrays(self) -> BNSnapshot:
        """Export the network as flat typed numpy arrays (CSR-native form).

        The snapshot is memoized against :attr:`version` — repeated calls
        between mutations return the same object, and any ``add_weight`` /
        ``add_node`` / effective ``expire_edges`` invalidates the cache so
        the next call rebuilds.  A whole ``add_weights`` batch bumps the
        version once, so one window job costs at most one rebuild.  See
        ``docs/PERFORMANCE.md`` for the contract and
        :mod:`repro.network.snapshot` for the layout.
        """
        cached = self._snapshot
        if cached is not None and cached.version == self._version:
            return cached
        snapshot = build_snapshot(self._edges, self._adjacency, self._version)
        self._snapshot = snapshot
        return snapshot

    def shard_index(self):
        """The merged :class:`~repro.network.sharding.ShardIndex` view of
        this network as a single shard, memoized against :attr:`version`.

        This is the flat-array form the lambda full-graph sweep builds its
        :class:`~repro.network.sampled_graph.SampledGraph` from; a
        :class:`~repro.network.sharding.ShardedBehaviorNetwork` provides
        the same arrays through its own memoized ``index()``.
        """
        from .sharding import build_shard_index

        cached = self._shard_index
        if cached is not None and cached.version == self._version:
            return cached
        index = build_shard_index([self], 1, self._version)
        self._shard_index = index
        return index

    def khop_neighborhood(
        self, uid: int, hops: int, allowed: set[int] | None = None
    ) -> dict[int, int]:
        """Map node -> hop distance for nodes within ``hops`` of ``uid``.

        ``allowed`` restricts the traversal (the paper's computation subgraph
        only includes nodes having transactions).
        """
        if hops < 0:
            raise ValueError("hops must be non-negative")
        distances = {uid: 0}
        frontier = [uid]
        for depth in range(1, hops + 1):
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in self._adjacency.get(node, ()):
                    if neighbor in distances:
                        continue
                    if allowed is not None and neighbor not in allowed:
                        continue
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def to_networkx(self, nodes: Iterable[int] | None = None) -> nx.MultiGraph:
        """Export (a node-induced part of) BN as a networkx multigraph."""
        graph = nx.MultiGraph()
        keep = set(nodes) if nodes is not None else None
        for uid in self._adjacency:
            if keep is None or uid in keep:
                graph.add_node(uid)
        for (u, v), records in self._edges.items():
            if keep is not None and (u not in keep or v not in keep):
                continue
            for t, record in records.items():
                graph.add_edge(u, v, key=t.value, btype=t, weight=record.weight)
        return graph
