"""CSR-native snapshots of the Behavior Network.

The BN's dict-of-dicts storage is the right shape for streaming mutation
(O(1) typed-edge updates, O(deg) neighbour queries) but the wrong shape for
the serving/training hot path, which wants whole-graph array operations:
adjacency export, degree normalization, frontier sampling.  A
:class:`BNSnapshot` bridges the two worlds — one pass over the edge dict
produces flat, typed numpy arrays that every downstream consumer slices
instead of re-iterating Python objects.

Caching contract (see ``docs/PERFORMANCE.md``):

* :meth:`~repro.network.bn.BehaviorNetwork.to_arrays` memoizes the snapshot
  against the network's mutation counter (``BehaviorNetwork.version``);
* every mutation (``add_weight``, ``add_node`` of a new node,
  ``expire_edges`` that removes anything) bumps the counter, so the next
  ``to_arrays()`` call rebuilds instead of stale-serving;
* a whole ``add_weights`` batch — however many contributions — bumps the
  counter exactly once, which is what keeps snapshot churn at one rebuild
  per window job on the ingest path (see "BN ingestion" in
  ``docs/PERFORMANCE.md``);
* snapshots are immutable value objects — mutating the BN never changes an
  already-exported snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datagen.behavior_types import BehaviorType

__all__ = ["TypedEdgeArrays", "BNSnapshot", "build_snapshot"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


@dataclass(frozen=True, slots=True)
class TypedEdgeArrays:
    """Flat arrays for one edge type; one entry per ``(u, v)`` pair, ``u < v``.

    ``rows``/``cols`` are positions into the owning snapshot's ``node_ids``
    (not raw user ids), so they can index numpy arrays directly.
    """

    rows: np.ndarray  # int64 positions into BNSnapshot.node_ids
    cols: np.ndarray  # int64 positions into BNSnapshot.node_ids
    weights: np.ndarray  # float64 accumulated weights
    last_update: np.ndarray  # float64 latest contribution timestamps

    @property
    def num_edges(self) -> int:
        return len(self.weights)


@dataclass(frozen=True, slots=True)
class BNSnapshot:
    """One immutable, array-backed export of a :class:`BehaviorNetwork`.

    ``node_ids`` is sorted ascending; ``edges`` maps each edge type present
    in the network to its :class:`TypedEdgeArrays`.  ``version`` records the
    BN mutation counter the snapshot was taken at.
    """

    node_ids: np.ndarray  # sorted int64 user ids
    edges: dict[BehaviorType, TypedEdgeArrays]
    version: int = 0
    _degrees: dict[BehaviorType, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def types(self) -> tuple[BehaviorType, ...]:
        """Edge types present, sorted for deterministic iteration."""
        return tuple(sorted(self.edges))

    def num_edges(self, btype: BehaviorType | None = None) -> int:
        """Typed edge count (all types when ``btype`` is omitted)."""
        if btype is not None:
            arrays = self.edges.get(btype)
            return arrays.num_edges if arrays is not None else 0
        return sum(arrays.num_edges for arrays in self.edges.values())

    def positions_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Map raw user ids to snapshot positions (-1 when not registered)."""
        ids = np.asarray(node_ids, dtype=np.int64)
        pos = np.searchsorted(self.node_ids, ids)
        pos_clipped = np.minimum(pos, max(self.num_nodes - 1, 0))
        if self.num_nodes == 0:
            return np.full(ids.shape, -1, dtype=np.int64)
        valid = self.node_ids[pos_clipped] == ids
        return np.where(valid, pos_clipped, -1).astype(np.int64)

    def weighted_degrees(self, btype: BehaviorType) -> np.ndarray:
        """Weighted degree per snapshot position (Section III-A's ``deg'_r``).

        Memoized per type: repeated adjacency exports against the same
        snapshot pay for the accumulation once.
        """
        cached = self._degrees.get(btype)
        if cached is not None:
            return cached
        degrees = np.zeros(self.num_nodes, dtype=np.float64)
        arrays = self.edges.get(btype)
        if arrays is not None and arrays.num_edges:
            np.add.at(degrees, arrays.rows, arrays.weights)
            np.add.at(degrees, arrays.cols, arrays.weights)
        self._degrees[btype] = degrees
        return degrees


def build_snapshot(
    edge_dict: dict, adjacency: dict, version: int = 0
) -> BNSnapshot:
    """Build a :class:`BNSnapshot` from BN internal storage in one pass.

    ``edge_dict`` is ``{(u, v): {BehaviorType: EdgeRecord}}`` with ``u < v``;
    ``adjacency`` supplies the registered node set (including isolated
    nodes, which adjacency exports must still index).
    """
    node_ids = np.fromiter(adjacency.keys(), dtype=np.int64, count=len(adjacency))
    node_ids.sort()

    us: dict[BehaviorType, list[int]] = {}
    vs: dict[BehaviorType, list[int]] = {}
    ws: dict[BehaviorType, list[float]] = {}
    ts: dict[BehaviorType, list[float]] = {}
    for (u, v), records in edge_dict.items():
        for btype, record in records.items():
            bucket = us.get(btype)
            if bucket is None:
                us[btype] = [u]
                vs[btype] = [v]
                ws[btype] = [record.weight]
                ts[btype] = [record.last_update]
            else:
                bucket.append(u)
                vs[btype].append(v)
                ws[btype].append(record.weight)
                ts[btype].append(record.last_update)

    edges: dict[BehaviorType, TypedEdgeArrays] = {}
    for btype in us:
        u_arr = np.asarray(us[btype], dtype=np.int64)
        v_arr = np.asarray(vs[btype], dtype=np.int64)
        edges[btype] = TypedEdgeArrays(
            rows=np.searchsorted(node_ids, u_arr),
            cols=np.searchsorted(node_ids, v_arr),
            weights=np.asarray(ws[btype], dtype=np.float64),
            last_update=np.asarray(ts[btype], dtype=np.float64),
        )
    return BNSnapshot(node_ids=node_ids, edges=edges, version=version)
