"""Zero-copy snapshot publication over ``multiprocessing.shared_memory``.

The sharded serving path separates *writers* (the ingest process mutating
per-shard :class:`~repro.network.bn.BehaviorNetwork` dicts) from *readers*
(sampling/inference workers that only ever see flat arrays).  This module
is the transport between them: a :class:`SharedSnapshotStore` lays a named
bundle of numpy arrays into one OS shared-memory segment — an 8-byte
little-endian header with the manifest length, a JSON manifest (per-array
dtype/shape/offset plus caller meta), then the raw array payloads — and
readers in any process map the segment and slice zero-copy views out of it.

Lifecycle contract (pinned by ``tests/test_network/test_shm.py``):

* segment names are versioned (``{prefix}-{name}-v{version}``), so a new
  publish never races readers of the previous version;
* the **creating** store is the only unlink owner.  Readers attach with
  ``create=False`` and close their mapping; worker crashes therefore leak
  nothing — the segment disappears when the owner retires it;
* ``retire`` + refcounts: ``acquire``/``release`` track in-flight readers
  the owner handed the segment to, and a retired segment is unlinked as
  soon as its count drops to zero (immediately when zero already);
* ``close()`` unlinks everything the store ever created, even segments
  still marked busy (teardown beats leaks);
* when shared memory is unavailable (``use_shm=False`` or the OS refuses),
  the store degrades to an in-process table with the same API —
  ``attachable`` tells callers whether cross-process readers are possible.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SegmentHandle",
    "AttachedSegment",
    "SharedSnapshotStore",
    "attach_segment",
]

_HEADER = struct.Struct("<Q")


def _pack(arrays: dict[str, np.ndarray], meta: dict[str, Any]) -> tuple[bytes, int, dict]:
    """Compute the manifest and total segment size for one bundle."""
    entries: dict[str, dict[str, Any]] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        entries[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        offset += array.nbytes
    manifest = json.dumps({"meta": meta, "arrays": entries}).encode("utf-8")
    payload_base = _HEADER.size + len(manifest)
    total = payload_base + offset
    return manifest, total, entries


def _unpack(buffer: memoryview) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Slice zero-copy array views + meta out of a packed segment buffer."""
    (manifest_len,) = _HEADER.unpack_from(buffer, 0)
    manifest = json.loads(bytes(buffer[_HEADER.size : _HEADER.size + manifest_len]))
    base = _HEADER.size + manifest_len
    arrays: dict[str, np.ndarray] = {}
    for name, entry in manifest["arrays"].items():
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        start = base + entry["offset"]
        view = np.frombuffer(buffer, dtype=dtype, count=count, offset=start)
        arrays[name] = view.reshape(shape)
    return arrays, manifest["meta"]


@dataclass
class SegmentHandle:
    """One published bundle: where it lives and how to read it back.

    ``segment`` is the store-wide key (``{prefix}-{name}-v{version}``);
    ``shared`` says whether it is an OS shared-memory segment other
    processes can :func:`attach_segment` to, or an in-process fallback
    readable only through the owning store.
    """

    name: str
    segment: str
    shared: bool
    arrays: dict[str, np.ndarray]
    meta: dict[str, Any]


class AttachedSegment:
    """A reader's mapping of one published segment.

    Keeps the underlying ``SharedMemory`` alive while ``arrays`` views are
    in use; ``close()`` drops the views it owns and tears the mapping down
    (never ``unlink`` — the publisher owns the segment's lifetime).  Safe
    to close even when the caller still holds stray views: the OS mapping
    is then released when those views are garbage collected.
    """

    def __init__(self, segment: str, shm: Any) -> None:
        self.segment = segment
        self._shm = shm
        arrays, meta = _unpack(shm.buf)
        self.arrays = arrays
        self.meta = meta

    def close(self) -> None:
        """Drop this reader's views and release the OS mapping."""
        self.arrays = {}
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:
                # A caller still holds views into the buffer; the mapping
                # is released when they are collected.  Detach our side so
                # __del__ does not retry noisily.
                shm._mmap = None
                shm._buf = None

    def __enter__(self) -> "AttachedSegment":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def attach_segment(segment: str, untrack: bool = True) -> AttachedSegment:
    """Map an existing segment read-only from any process.

    With ``untrack`` (the default) the mapping is never registered with
    Python's ``resource_tracker`` — on 3.11 ``SharedMemory`` registers even
    ``create=False`` attachments, and the tracker then unlinks segments it
    saw when the attaching process exits: exactly the wrong owner.
    Registration is suppressed up front (rather than unregistered after)
    because forked workers share the parent's tracker, and paired
    register/unregister messages from several readers race the publisher's
    own unlink-time unregister.
    """
    if _shared_memory is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    if untrack:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = _shared_memory.SharedMemory(name=segment, create=False)
        finally:
            resource_tracker.register = original
    else:
        shm = _shared_memory.SharedMemory(name=segment, create=False)
    return AttachedSegment(segment, shm)


class SharedSnapshotStore:
    """Versioned publish/attach/retire lifecycle for array bundles.

    One store instance is one *publisher*: it creates segments, hands out
    handles, counts readers and is the only place unlink happens.
    """

    def __init__(self, prefix: str | None = None, use_shm: bool = True) -> None:
        if prefix is None:
            prefix = f"repro-bn-{os.getpid()}-{id(self) & 0xFFFF:x}"
        self.prefix = prefix
        self._want_shm = bool(use_shm and _shared_memory is not None)
        self._fell_back = False
        # segment name -> {"shm": SharedMemory|None, "refs": int,
        #                  "retired": bool, "handle": SegmentHandle}
        self._segments: dict[str, dict[str, Any]] = {}

    @property
    def attachable(self) -> bool:
        """Whether cross-process readers can map published segments."""
        return self._want_shm

    @property
    def fell_back(self) -> bool:
        """Whether any publication degraded to the in-process fallback."""
        return self._fell_back

    def publish(
        self,
        name: str,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any] | None = None,
        version: int = 0,
    ) -> SegmentHandle:
        """Publish one bundle under ``{prefix}-{name}-v{version}``.

        Re-publishing the same ``(name, version)`` returns the existing
        handle (publication is idempotent per version).  Falls back to an
        in-process handle when the OS refuses a segment.
        """
        segment = f"{self.prefix}-{name}-v{version}"
        record = self._segments.get(segment)
        if record is not None:
            return record["handle"]
        meta = dict(meta or {})
        meta.setdefault("version", version)
        shm = None
        if self._want_shm:
            manifest, total, entries = _pack(arrays, meta)
            try:
                shm = _shared_memory.SharedMemory(
                    name=segment, create=True, size=max(total, 1)
                )
            except OSError:
                self._fell_back = True
                shm = None
            if shm is not None:
                _HEADER.pack_into(shm.buf, 0, len(manifest))
                shm.buf[_HEADER.size : _HEADER.size + len(manifest)] = manifest
                base = _HEADER.size + len(manifest)
                for array_name, entry in entries.items():
                    array = np.ascontiguousarray(arrays[array_name])
                    start = base + entry["offset"]
                    shm.buf[start : start + array.nbytes] = array.tobytes()
                views, _ = _unpack(shm.buf)
                handle = SegmentHandle(
                    name=name, segment=segment, shared=True, arrays=views, meta=meta
                )
                self._segments[segment] = {
                    "shm": shm,
                    "refs": 0,
                    "retired": False,
                    "handle": handle,
                }
                return handle
        if not self._want_shm:
            self._fell_back = True
        handle = SegmentHandle(
            name=name, segment=segment, shared=False, arrays=dict(arrays), meta=meta
        )
        self._segments[segment] = {
            "shm": None,
            "refs": 0,
            "retired": False,
            "handle": handle,
        }
        return handle

    def attach(self, segment: str) -> SegmentHandle:
        """Reader-side view of a published segment from the owning process."""
        record = self._segments.get(segment)
        if record is None:
            raise KeyError(f"unknown segment {segment!r}")
        return record["handle"]

    def acquire(self, segment: str) -> None:
        """Count one in-flight reader of ``segment``."""
        self._record(segment)["refs"] += 1

    def release(self, segment: str) -> None:
        """Drop one reader; unlinks immediately if retired and unreferenced."""
        record = self._record(segment)
        if record["refs"] <= 0:
            raise ValueError(f"release without acquire on {segment!r}")
        record["refs"] -= 1
        if record["retired"] and record["refs"] == 0:
            self._unlink(segment)

    def retire(self, segment: str) -> None:
        """Mark a segment obsolete; unlink happens at refcount zero."""
        record = self._record(segment)
        record["retired"] = True
        if record["refs"] == 0:
            self._unlink(segment)

    def refcount(self, segment: str) -> int:
        """Current in-flight reader count of ``segment``."""
        return int(self._record(segment)["refs"])

    def segments(self) -> list[str]:
        """Names of segments the store currently keeps alive."""
        return list(self._segments)

    def close(self) -> None:
        """Unlink every segment this store created (teardown beats leaks)."""
        for segment in list(self._segments):
            self._unlink(segment)

    def __enter__(self) -> "SharedSnapshotStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # A store dropped without close() (a garbage-collected deployment)
        # must still unlink its segments — _unlink drops the handle views
        # first, so the mapping closes cleanly instead of the OS-level
        # BufferError the bare SharedMemory destructor hits.
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _record(self, segment: str) -> dict[str, Any]:
        record = self._segments.get(segment)
        if record is None:
            raise KeyError(f"unknown segment {segment!r}")
        return record

    def _unlink(self, segment: str) -> None:
        record = self._segments.pop(segment, None)
        if record is None:
            return
        shm = record["shm"]
        # Drop the handle's views before tearing down the mapping, else the
        # exported memoryview keeps the buffer pinned and close() raises.
        record["handle"].arrays = {}
        if shm is not None:
            try:
                shm.close()
            except BufferError:
                # An outside reader still holds views; detach our side so
                # GC does not retry noisily.  The name is removed below —
                # the memory itself goes when the last view is collected.
                shm._mmap = None
                shm._buf = None
            except OSError:  # pragma: no cover - defensive
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
