"""Behavior Network (BN): construction, maintenance, export, sampling."""

from .adjacency import (
    gcn_normalize,
    merged_adjacency,
    merged_adjacency_reference,
    row_normalize,
    typed_adjacency,
    typed_adjacency_reference,
)
from .bn import DEFAULT_EDGE_TTL, BehaviorNetwork, EdgeRecord
from .builder import BNBuilder
from .io import load_bn, save_bn
from .normalize import normalized_weight, type_weighted_degrees
from .sampling import (
    BatchSampleStats,
    ComputationSubgraph,
    computation_subgraph,
    computation_subgraphs_batch,
)
from .sampled_graph import SampledGraph, build_sampled_graph
from .sharding import (
    ShardBlock,
    ShardIndex,
    ShardedBehaviorNetwork,
    build_shard_index,
    shard_of,
)
from .shm import AttachedSegment, SegmentHandle, SharedSnapshotStore, attach_segment
from .snapshot import BNSnapshot, TypedEdgeArrays, build_snapshot
from .windows import FAST_WINDOWS, PAPER_WINDOWS, validate_windows

__all__ = [
    "BehaviorNetwork",
    "EdgeRecord",
    "DEFAULT_EDGE_TTL",
    "BNBuilder",
    "save_bn",
    "load_bn",
    "BNSnapshot",
    "TypedEdgeArrays",
    "build_snapshot",
    "typed_adjacency",
    "merged_adjacency",
    "typed_adjacency_reference",
    "merged_adjacency_reference",
    "row_normalize",
    "gcn_normalize",
    "normalized_weight",
    "type_weighted_degrees",
    "ComputationSubgraph",
    "computation_subgraph",
    "computation_subgraphs_batch",
    "BatchSampleStats",
    "shard_of",
    "SampledGraph",
    "build_sampled_graph",
    "ShardBlock",
    "ShardIndex",
    "ShardedBehaviorNetwork",
    "build_shard_index",
    "SegmentHandle",
    "AttachedSegment",
    "SharedSnapshotStore",
    "attach_segment",
    "PAPER_WINDOWS",
    "FAST_WINDOWS",
    "validate_windows",
]
