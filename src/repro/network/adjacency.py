"""Export BN (sub)graphs as per-type sparse adjacency matrices for GNNs."""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..datagen.behavior_types import BehaviorType
from .bn import BehaviorNetwork
from .normalize import normalized_weight, type_weighted_degrees

__all__ = [
    "typed_adjacency",
    "merged_adjacency",
    "row_normalize",
    "gcn_normalize",
]


def typed_adjacency(
    bn: BehaviorNetwork,
    nodes: Sequence[int],
    edge_types: Sequence[BehaviorType] | None = None,
    normalize: bool = True,
) -> dict[BehaviorType, sp.csr_matrix]:
    """Per-type symmetric adjacency over ``nodes`` (order defines indices).

    With ``normalize=True`` the per-type symmetric degree normalization of
    Section III-A is applied (computed on the *full* BN, so a sampled
    subgraph sees the same edge weights the whole graph would).
    """
    index = {uid: i for i, uid in enumerate(nodes)}
    if len(index) != len(nodes):
        raise ValueError("nodes must be unique")
    types = tuple(edge_types) if edge_types is not None else tuple(sorted(bn.edge_types()))
    n = len(nodes)
    result: dict[BehaviorType, sp.csr_matrix] = {}
    for btype in types:
        degrees = type_weighted_degrees(bn, btype) if normalize else None
        rows: list[int] = []
        cols: list[int] = []
        weights: list[float] = []
        for u, v, _t, record in bn.iter_edges(btype):
            iu, iv = index.get(u), index.get(v)
            if iu is None or iv is None:
                continue
            w = record.weight
            if degrees is not None:
                w = normalized_weight(w, degrees[u], degrees[v])
            if w <= 0.0:
                continue
            rows.extend((iu, iv))
            cols.extend((iv, iu))
            weights.extend((w, w))
        result[btype] = sp.csr_matrix(
            (np.asarray(weights), (rows, cols)), shape=(n, n)
        )
    return result


def merged_adjacency(
    bn: BehaviorNetwork,
    nodes: Sequence[int],
    edge_types: Sequence[BehaviorType] | None = None,
    normalize: bool = True,
) -> sp.csr_matrix:
    """Collapse all edge types into one adjacency (for homogeneous GNNs).

    This is also the graph HAG sees under the CFO(-) ablation of Table V.
    """
    typed = typed_adjacency(bn, nodes, edge_types, normalize)
    n = len(nodes)
    total = sp.csr_matrix((n, n))
    for matrix in typed.values():
        total = total + matrix
    return total.tocsr()


def row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Random-walk normalization ``D^-1 A`` (rows sum to 1 where non-empty)."""
    matrix = matrix.tocsr()
    degree = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
    return sp.diags(inv) @ matrix


def gcn_normalize(matrix: sp.spmatrix, add_self_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalization ``D^-1/2 (A + I) D^-1/2`` (Eq. 1)."""
    matrix = matrix.tocsr()
    if add_self_loops:
        matrix = matrix + sp.eye(matrix.shape[0], format="csr")
    degree = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.divide(
        1.0, np.sqrt(degree), out=np.zeros_like(degree), where=degree > 0
    )
    d = sp.diags(inv_sqrt)
    return (d @ matrix @ d).tocsr()
