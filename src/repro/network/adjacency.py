"""Export BN (sub)graphs as per-type sparse adjacency matrices for GNNs.

The exports are the first leg of the BN→GNN hot path, so they run on the
:class:`~repro.network.snapshot.BNSnapshot` arrays (one cached pass over the
edge dict) instead of per-edge Python iteration.  The original per-edge
implementations are retained as ``*_reference`` for the equivalence tests
and the perf harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..datagen.behavior_types import BehaviorType
from .bn import BehaviorNetwork
from .normalize import normalized_weight, type_weighted_degrees

__all__ = [
    "typed_adjacency",
    "merged_adjacency",
    "typed_adjacency_reference",
    "merged_adjacency_reference",
    "row_normalize",
    "gcn_normalize",
]


def _output_index(bn: BehaviorNetwork, nodes: Sequence[int]) -> np.ndarray:
    """Snapshot-position → output-row lookup array (-1 for excluded nodes)."""
    snapshot = bn.to_arrays()
    node_arr = np.asarray(list(nodes), dtype=np.int64)
    if len(np.unique(node_arr)) != len(node_arr):
        raise ValueError("nodes must be unique")
    positions = snapshot.positions_of(node_arr)
    lookup = np.full(snapshot.num_nodes, -1, dtype=np.int64)
    inside = positions >= 0
    lookup[positions[inside]] = np.flatnonzero(inside)
    return lookup


def _typed_entries(
    bn: BehaviorNetwork,
    lookup: np.ndarray,
    btype: BehaviorType,
    normalize: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Kept ``(iu, iv, w)`` entries of one type, with ``u < v`` per edge."""
    snapshot = bn.to_arrays()
    arrays = snapshot.edges.get(btype)
    if arrays is None or not arrays.num_edges:
        return (np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0))
    iu = lookup[arrays.rows]
    iv = lookup[arrays.cols]
    weights = arrays.weights
    if normalize:
        # Degrees come from the whole BN even when exporting a subset, so a
        # sampled subgraph sees the same edge weights the full graph would.
        degrees = snapshot.weighted_degrees(btype)
        product = degrees[arrays.rows] * degrees[arrays.cols]
        weights = np.divide(
            weights,
            np.sqrt(product, out=np.zeros_like(product), where=product > 0),
            out=np.zeros_like(weights),
            where=product > 0,
        )
    keep = (iu >= 0) & (iv >= 0) & (weights > 0.0)
    return iu[keep], iv[keep], weights[keep]


def typed_adjacency(
    bn: BehaviorNetwork,
    nodes: Sequence[int],
    edge_types: Sequence[BehaviorType] | None = None,
    normalize: bool = True,
) -> dict[BehaviorType, sp.csr_matrix]:
    """Per-type symmetric adjacency over ``nodes`` (order defines indices).

    With ``normalize=True`` the per-type symmetric degree normalization of
    Section III-A is applied (computed on the *full* BN, so a sampled
    subgraph sees the same edge weights the whole graph would).
    """
    lookup = _output_index(bn, nodes)
    types = tuple(edge_types) if edge_types is not None else tuple(sorted(bn.edge_types()))
    n = len(nodes)
    result: dict[BehaviorType, sp.csr_matrix] = {}
    for btype in types:
        iu, iv, weights = _typed_entries(bn, lookup, btype, normalize)
        result[btype] = sp.csr_matrix(
            (
                np.concatenate([weights, weights]),
                (np.concatenate([iu, iv]), np.concatenate([iv, iu])),
            ),
            shape=(n, n),
        )
    return result


def merged_adjacency(
    bn: BehaviorNetwork,
    nodes: Sequence[int],
    edge_types: Sequence[BehaviorType] | None = None,
    normalize: bool = True,
) -> sp.csr_matrix:
    """Collapse all edge types into one adjacency (for homogeneous GNNs).

    This is also the graph HAG sees under the CFO(-) ablation of Table V.
    Built as a single COO construction over every type's entries — the
    duplicate ``(i, j)`` coordinates sum on conversion — rather than
    accumulating ``total + matrix`` per type.
    """
    lookup = _output_index(bn, nodes)
    types = tuple(edge_types) if edge_types is not None else tuple(sorted(bn.edge_types()))
    n = len(nodes)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    data: list[np.ndarray] = []
    for btype in types:
        iu, iv, weights = _typed_entries(bn, lookup, btype, normalize)
        rows.append(iu)
        cols.append(iv)
        data.append(weights)
    if not data:
        return sp.csr_matrix((n, n))
    iu = np.concatenate(rows)
    iv = np.concatenate(cols)
    w = np.concatenate(data)
    return sp.csr_matrix(
        (np.concatenate([w, w]), (np.concatenate([iu, iv]), np.concatenate([iv, iu]))),
        shape=(n, n),
    )


# ----------------------------------------------------------------------
# Reference implementations (pre-vectorization semantics)
# ----------------------------------------------------------------------
def typed_adjacency_reference(
    bn: BehaviorNetwork,
    nodes: Sequence[int],
    edge_types: Sequence[BehaviorType] | None = None,
    normalize: bool = True,
) -> dict[BehaviorType, sp.csr_matrix]:
    """Per-edge Python-loop export; kept to pin :func:`typed_adjacency`."""
    index = {uid: i for i, uid in enumerate(nodes)}
    if len(index) != len(nodes):
        raise ValueError("nodes must be unique")
    types = tuple(edge_types) if edge_types is not None else tuple(sorted(bn.edge_types()))
    n = len(nodes)
    result: dict[BehaviorType, sp.csr_matrix] = {}
    for btype in types:
        degrees = type_weighted_degrees(bn, btype) if normalize else None
        rows: list[int] = []
        cols: list[int] = []
        weights: list[float] = []
        for u, v, _t, record in bn.iter_edges(btype):
            iu, iv = index.get(u), index.get(v)
            if iu is None or iv is None:
                continue
            w = record.weight
            if degrees is not None:
                w = normalized_weight(w, degrees[u], degrees[v])
            if w <= 0.0:
                continue
            rows.extend((iu, iv))
            cols.extend((iv, iu))
            weights.extend((w, w))
        result[btype] = sp.csr_matrix(
            (np.asarray(weights), (rows, cols)), shape=(n, n)
        )
    return result


def merged_adjacency_reference(
    bn: BehaviorNetwork,
    nodes: Sequence[int],
    edge_types: Sequence[BehaviorType] | None = None,
    normalize: bool = True,
) -> sp.csr_matrix:
    """Per-type accumulation merge; kept to pin :func:`merged_adjacency`."""
    typed = typed_adjacency_reference(bn, nodes, edge_types, normalize)
    n = len(nodes)
    total = sp.csr_matrix((n, n))
    for matrix in typed.values():
        total = total + matrix
    return total.tocsr()


def row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Random-walk normalization ``D^-1 A`` (rows sum to 1 where non-empty)."""
    matrix = matrix.tocsr()
    degree = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
    return sp.diags(inv) @ matrix


def gcn_normalize(matrix: sp.spmatrix, add_self_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalization ``D^-1/2 (A + I) D^-1/2`` (Eq. 1)."""
    matrix = matrix.tocsr()
    if add_self_loops:
        matrix = matrix + sp.eye(matrix.shape[0], format="csr")
    degree = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.divide(
        1.0, np.sqrt(degree), out=np.zeros_like(degree), where=degree > 0
    )
    d = sp.diags(inv_sqrt)
    return (d @ matrix @ d).tocsr()
