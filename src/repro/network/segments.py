"""Segment arithmetic shared by the vectorized BN write path.

The BN builder's pair enumeration and the network's batched mutation both
reduce flat contribution arrays over variable-length segments (one segment
per ``(value, epoch)`` group, or per typed edge).  Three primitives keep
that fully in numpy:

* :func:`segment_arange` — per-segment ``0..len-1`` ramps via the
  repeat/cumsum-offset trick, the building block of pair enumeration;
* :func:`segment_fold_sum` — a **sequential** left-to-right fold per
  segment.  ``np.add.reduceat`` uses pairwise summation internally, so its
  sums differ from the reference implementations' ``+=`` loops in the last
  ulp; this fold reproduces the exact IEEE-754 accumulation order of the
  pinned Python loops, which is what keeps the batched write path bit-exact
  (see ``docs/PERFORMANCE.md``);
* :func:`sorted_unique_pairs` / :func:`sorted_unique_triples` —
  lexicographically sorted distinct rows.  The fast path packs columns into
  one int64 composite key; when the span product would overflow int64 they
  fall back to a stable ``lexsort`` + boundary-mask dedup, so adversarially
  large uid/value/epoch spans stay correct instead of silently wrapping.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INT64_SAFE_SPAN",
    "segment_arange",
    "segment_fold_sum",
    "segment_fold_max",
    "sorted_unique_pairs",
    "sorted_unique_triples",
]

#: Composite keys stay below this bound so intermediate products (span
#: products plus the final additions) can never reach the int64 limit.
#: Shared by every packed-key fast path (here and in ``bn.add_weights``);
#: span products at or above it must take a lexicographic fallback.
INT64_SAFE_SPAN = 2**62

_INT64_SAFE = INT64_SAFE_SPAN


def segment_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[0..c)`` ramps, one per segment of length ``c``.

    ``segment_arange([2, 3]) == [0, 1, 0, 1, 2]``.  Implemented as a global
    ``arange`` minus each element's segment offset (repeat/cumsum), so the
    cost is O(total) array ops with no Python loop.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets


def segment_fold_sum(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray, seed: np.ndarray | None = None
) -> np.ndarray:
    """Left-to-right sequential sum of each segment (bit-exact vs ``+=``).

    ``values`` holds all segments back to back; segment ``k`` spans
    ``values[starts[k] : starts[k] + lengths[k]]``.  With ``seed`` given,
    segment ``k`` folds as ``((seed[k] + v0) + v1) + ...`` — exactly the
    accumulation a reference loop performs onto an existing record weight.
    Without a seed the fold starts at ``v0`` (identical to seeding with
    ``0.0`` for finite values, since ``0.0 + x == x``).

    Vectorized as rounds over segment positions: round ``r`` adds element
    ``r`` of every still-active segment, so total work is O(total values)
    with one array op per round (max segment length rounds).
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if seed is None:
        out = values[starts].astype(np.float64, copy=True) if len(starts) else np.empty(0)
        first_round = 1
    else:
        out = np.asarray(seed, dtype=np.float64).copy()
        first_round = 0
    round_index = first_round
    active = np.flatnonzero(lengths > round_index)
    while active.size:
        out[active] = out[active] + values[starts[active] + round_index]
        round_index += 1
        active = active[lengths[active] > round_index]
    return out


def segment_fold_max(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-segment maximum (max is associative, so ``reduceat`` is exact)."""
    if len(starts) == 0:
        return np.empty(0, dtype=np.float64)
    return np.maximum.reduceat(values, np.asarray(starts, dtype=np.int64))


def _dedup_sorted(columns: list[np.ndarray]) -> list[np.ndarray]:
    """Drop consecutive duplicate rows from lexicographically sorted columns."""
    first = columns[0]
    keep = np.zeros(len(first), dtype=bool)
    keep[0] = True
    for column in columns:
        keep[1:] |= column[1:] != column[:-1]
    return [column[keep] for column in columns]


def sorted_unique_pairs(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct ``(a, b)`` rows sorted lexicographically (``a`` major).

    Both columns must be non-negative int64.  Uses the packed composite key
    ``a * span_b + b`` when it provably fits int64; otherwise falls back to
    a stable ``lexsort`` + boundary dedup (same output, no wraparound).
    """
    if len(a) == 0:
        return a, b
    span_b = int(b.max()) + 1
    if (int(a.max()) + 1) * span_b < _INT64_SAFE:
        combo = np.unique(a * span_b + b)
        return combo // span_b, combo % span_b
    order = np.lexsort((b, a))
    return tuple(_dedup_sorted([a[order], b[order]]))


def sorted_unique_triples(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct ``(a, b, c)`` rows sorted lexicographically (``a`` major).

    All columns must be non-negative int64.  Packs into one int64 composite
    key when ``span_a * span_b * span_c`` fits; otherwise a stable
    ``lexsort`` + boundary dedup keeps adversarially large spans exact.
    """
    if len(a) == 0:
        return a, b, c
    span_b = int(b.max()) + 1
    span_c = int(c.max()) + 1
    if (int(a.max()) + 1) * span_b * span_c < _INT64_SAFE:
        combo = np.unique((a * span_b + b) * span_c + c)
        bc = combo % (span_b * span_c)
        return combo // (span_b * span_c), bc // span_c, bc % span_c
    order = np.lexsort((c, b, a))
    return tuple(_dedup_sorted([a[order], b[order], c[order]]))
