"""BN construction — Algorithm 1 of the paper.

Two entry points:

* :meth:`BNBuilder.build` — batch construction over a full log history,
  fully vectorized with numpy: group logs by ``(type, value, epoch)`` per
  window, enumerate every user pair of every eligible group with
  repeat/cumsum index arithmetic, reduce the contribution stream over
  ``(u, v)`` keys, then apply one columnar
  :meth:`~repro.network.bn.BehaviorNetwork.add_weights` batch per behavior
  type (a single snapshot-version bump each).
* :meth:`BNBuilder.run_window_job` — one periodic job of the online BN
  server (Section V): process the logs of a single just-closed epoch of one
  window.  Running every window's jobs over a time range is equivalent to the
  batch build over the same logs, which a test verifies.

Every vectorized write path keeps a pinned ``*_reference`` twin — the
original per-pair Python loops (:meth:`BNBuilder.build_reference`,
:meth:`BNBuilder.run_window_job_reference`,
:meth:`BNBuilder.replay_reference`) — and the test tree asserts
**bit-exact** parity: identical edge sets, weights, and timestamps, down to
the last ulp.  The sequential segment folds that reproduce the loops'
IEEE-754 accumulation order live in :mod:`repro.network.segments`, as does
the overflow-guarded composite keying shared by both paths.

Engineering bound: groups larger than ``max_clique_size`` distinct users are
skipped.  Their pairwise weight would be at most ``1/max_clique_size`` —
negligible under the inverse weight assignment — while the pair count grows
quadratically (a public Wi-Fi can connect thousands of users within a day).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from ..datagen.behavior_types import EDGE_TYPES, BehaviorType
from ..datagen.entities import BehaviorLog
from .bn import DEFAULT_EDGE_TTL, BehaviorNetwork
from .segments import segment_arange, segment_fold_max, segment_fold_sum, sorted_unique_pairs, sorted_unique_triples
from .windows import PAPER_WINDOWS, validate_windows

__all__ = ["BNBuilder"]


def _pair_indices(
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All ``i < j`` position pairs for concatenated groups of given sizes.

    Returns ``(first, second, group)``: positions into the concatenated
    member pool plus each pair's group index, in the same order the
    reference's nested ``for i / for j`` loops visit them (group-major,
    then ``i`` ascending, then ``j``).  Each member at local offset ``i``
    of a ``c``-sized group leads ``c - 1 - i`` pairs, so the enumeration is
    two repeat/cumsum ramps — no Python loop.
    """
    counts = np.asarray(counts, dtype=np.int64)
    local = segment_arange(counts)
    lead = np.repeat(counts, counts) - 1 - local
    total = int(counts.sum())
    first = np.repeat(np.arange(total, dtype=np.int64), lead)
    second = first + 1 + segment_arange(lead)
    group = np.repeat(
        np.arange(len(counts), dtype=np.int64), counts * (counts - 1) // 2
    )
    return first, second, group


class BNBuilder:
    """Builds and incrementally maintains a :class:`BehaviorNetwork`.

    Parameters
    ----------
    windows:
        Hierarchical time windows ``W`` (strictly increasing).
    edge_types:
        Behavior types that produce edges (defaults to the paper's eight).
    max_clique_size:
        Skip ``(value, epoch)`` groups with more distinct users than this.
    ttl:
        Edge time-to-live passed to the created network (60 days by default).
    origin:
        Time ``t_0`` from which epochs are discretized.
    weighting:
        ``"inverse"`` (the paper's ``1/N`` rule) or ``"uniform"`` (every
        co-occurring pair gets weight 1 — the ablation showing why the
        inverse rule matters for public-resource cliques).
    """

    def __init__(
        self,
        windows: Sequence[float] = PAPER_WINDOWS,
        edge_types: Sequence[BehaviorType] = EDGE_TYPES,
        max_clique_size: int = 100,
        ttl: float = DEFAULT_EDGE_TTL,
        origin: float = 0.0,
        weighting: str = "inverse",
    ) -> None:
        self.windows = validate_windows(windows)
        self.edge_types = tuple(edge_types)
        if max_clique_size < 2:
            raise ValueError("max_clique_size must be at least 2")
        if weighting not in ("inverse", "uniform"):
            raise ValueError("weighting must be 'inverse' or 'uniform'")
        self.max_clique_size = max_clique_size
        self.ttl = ttl
        self.origin = origin
        self.weighting = weighting
        self._type_index = {t: i for i, t in enumerate(self.edge_types)}

    def _share(self, group_size: int) -> float:
        return 1.0 / group_size if self.weighting == "inverse" else 1.0

    def _group_shares(self, counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_share` — per-group pair weight."""
        if self.weighting == "inverse":
            return 1.0 / counts.astype(np.float64)
        return np.ones(len(counts), dtype=np.float64)

    # ------------------------------------------------------------------
    # Shared grouping (vectorized and reference paths)
    # ------------------------------------------------------------------
    def _window_groups(
        self,
        window: float,
        uid_arr: np.ndarray,
        value_codes: np.ndarray,
        time_arr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Distinct ``(value, epoch, uid)`` triples of one window, grouped.

        Returns ``(members, starts, counts, epochs)``: the distinct users of
        every ``(value, epoch)`` group concatenated in sorted group order
        (uids ascending within a group), each group's slice start/length,
        and each group's epoch index.  A user logging the same value many
        times inside one epoch still counts once toward ``N_{j,s}``.

        Uids and epochs are normalized by their minima before keying, so
        negative epochs (logs before ``origin``) stay exact and the
        composite keys inherit the int64 overflow guard of
        :func:`repro.network.segments.sorted_unique_triples` — adversarially
        large uid/value/epoch spans fall back to a lexicographic unique
        instead of silently wrapping.
        """
        if len(uid_arr) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy(), empty.copy()
        epochs = np.floor((time_arr - self.origin) / window).astype(np.int64)
        e0 = int(epochs.min())
        u0 = int(uid_arr.min())
        g_val, g_eps, g_uid = sorted_unique_triples(
            value_codes, epochs - e0, uid_arr - u0
        )
        boundary = np.r_[True, (g_val[1:] != g_val[:-1]) | (g_eps[1:] != g_eps[:-1])]
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.r_[starts, len(g_uid)])
        return g_uid + u0, starts, counts, g_eps[starts] + e0

    def _enumerate_window_pairs(
        self,
        window: float,
        uid_arr: np.ndarray,
        value_codes: np.ndarray,
        time_arr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One window's pair contribution stream ``(u, v, weight, ts)``.

        Pairs are emitted in the reference loop order (sorted groups, then
        ``i < j`` over each group's ascending members), with ``u < v``; the
        timestamp of every pair in a group is the group's epoch end.
        """
        members, starts, counts, epochs = self._window_groups(
            window, uid_arr, value_codes, time_arr
        )
        eligible = (counts >= 2) & (counts <= self.max_clique_size)
        sel_starts = starts[eligible]
        sel_counts = counts[eligible]
        pool = members[np.repeat(sel_starts, sel_counts) + segment_arange(sel_counts)]
        first, second, group = _pair_indices(sel_counts)
        share = self._group_shares(sel_counts)
        epoch_end = self.origin + (epochs[eligible] + 1) * window
        return pool[first], pool[second], share[group], epoch_end[group]

    # ------------------------------------------------------------------
    # Batch construction
    # ------------------------------------------------------------------
    def _bucket_by_type(
        self, logs: Iterable[BehaviorLog], bn: BehaviorNetwork
    ) -> dict[BehaviorType, tuple[list[int], list[str], list[float]]]:
        """Split logs into per-type uid/value/time columns, registering nodes.

        Nodes are registered once per distinct user (via a numpy unique over
        the bucketed uid columns) instead of once per log — ``add_node`` is
        idempotent, so the resulting network is the same and the per-log
        Python call disappears from the hot path.
        """
        by_type: dict[BehaviorType, tuple[list[int], list[str], list[float]]] = {
            t: ([], [], []) for t in self.edge_types
        }
        for log in logs:
            bucket = by_type.get(log.btype)
            if bucket is None:
                continue
            bucket[0].append(log.uid)
            bucket[1].append(log.value)
            bucket[2].append(log.timestamp)
        columns = [
            np.asarray(bucket[0], dtype=np.int64)
            for bucket in by_type.values()
            if bucket[0]
        ]
        if columns:
            for uid in np.unique(np.concatenate(columns)).tolist():
                bn.add_node(uid)
        return by_type

    def build(
        self, logs: Iterable[BehaviorLog], bn: BehaviorNetwork | None = None
    ) -> BehaviorNetwork:
        """Construct BN from a full log history (Algorithm 1, vectorized)."""
        if bn is None:
            bn = BehaviorNetwork(ttl=self.ttl)
        for btype, (uids, values, times) in self._bucket_by_type(logs, bn).items():
            if not uids:
                continue
            self._build_type(bn, btype, uids, values, times)
        return bn

    @staticmethod
    def _encode_values(values: list[str]) -> np.ndarray:
        """Integer codes (sorted-unique order) for the value strings."""
        _, codes = np.unique(np.asarray(values, dtype=object), return_inverse=True)
        return codes.astype(np.int64)

    def _build_type(
        self,
        bn: BehaviorNetwork,
        btype: BehaviorType,
        uids: list[int],
        values: list[str],
        times: list[float],
    ) -> None:
        """Accumulate one behavior type's edges as a single columnar batch.

        The per-window contribution streams are concatenated window-major
        (the reference accumulation order), stably grouped per ``(u, v)``
        pair, and summed with a sequential left-to-right fold, so the batch
        is bit-for-bit the reference dict accumulation.  Timestamps reduce
        by max, clamped at the reference accumulator's ``0.0`` seed.
        """
        uid_arr = np.asarray(uids, dtype=np.int64)
        time_arr = np.asarray(times, dtype=np.float64)
        value_codes = self._encode_values(values)

        chunks = [
            self._enumerate_window_pairs(window, uid_arr, value_codes, time_arr)
            for window in self.windows
        ]
        u = np.concatenate([c[0] for c in chunks])
        if len(u) == 0:
            return
        v = np.concatenate([c[1] for c in chunks])
        w = np.concatenate([c[2] for c in chunks])
        ts = np.concatenate([c[3] for c in chunks])

        order = np.lexsort((v, u))
        su, sv, sw, sts = u[order], v[order], w[order], ts[order]
        boundary = np.r_[True, (su[1:] != su[:-1]) | (sv[1:] != sv[:-1])]
        starts = np.flatnonzero(boundary)
        lengths = np.diff(np.r_[starts, len(su)])
        weights = segment_fold_sum(sw, starts, lengths)
        stamps = np.maximum(segment_fold_max(sts, starts, lengths), 0.0)
        bn.add_weights(su[starts], sv[starts], btype, weights, stamps)

    # ------------------------------------------------------------------
    # Incremental (online BN server) construction
    # ------------------------------------------------------------------
    def run_window_job(
        self,
        bn: BehaviorNetwork,
        logs: Iterable[BehaviorLog],
        window: float,
        job_end: float,
    ) -> int:
        """Process the epoch ``(job_end - window, job_end]`` of one window.

        This is the periodic job the BN server schedules (hourly for the
        1-hour window, daily for the 1-day window, ...).  Logs outside the
        epoch are ignored.  Returns the number of pair contributions added.

        Vectorized: the epoch's logs collapse to one
        :meth:`~repro.network.bn.BehaviorNetwork.add_weights` batch (one
        snapshot-version bump), with contributions streamed in the exact
        order :meth:`run_window_job_reference` issues its ``add_weight``
        calls — groups in first-occurrence order, members ascending — so
        the resulting network state is bit-identical.
        """
        if window not in self.windows:
            raise ValueError(f"window {window} is not one of the builder's windows")
        lo = job_end - window
        type_index = self._type_index
        uids: list[int] = []
        codes: list[int] = []
        values: list[str] = []
        for log in logs:
            code = type_index.get(log.btype)
            if code is None or not lo < log.timestamp <= job_end:
                continue
            uids.append(log.uid)
            codes.append(code)
            values.append(log.value)
        if not uids:
            return 0
        uid_arr = np.asarray(uids, dtype=np.int64)
        # Register nodes in first-occurrence order, like the reference's
        # per-log add_node calls (repeats there are version no-ops).
        _, first_seen = np.unique(uid_arr, return_index=True)
        for idx in np.sort(first_seen):
            bn.add_node(int(uid_arr[idx]))

        # Groups are distinct (btype, value) keys ranked by first
        # occurrence — the reference's dict-insertion iteration order.
        value_codes = self._encode_values(values)
        value_span = int(value_codes.max()) + 1
        combo = np.asarray(codes, dtype=np.int64) * value_span + value_codes
        uniq, first_idx, inverse = np.unique(
            combo, return_index=True, return_inverse=True
        )
        rank = np.empty(len(uniq), dtype=np.int64)
        fo_order = np.argsort(first_idx, kind="stable")
        rank[fo_order] = np.arange(len(uniq), dtype=np.int64)
        type_codes_fo = (uniq // value_span)[fo_order]

        u0 = int(uid_arr.min())
        g_gid, g_uid = sorted_unique_pairs(rank[inverse], uid_arr - u0)
        starts = np.flatnonzero(np.r_[True, g_gid[1:] != g_gid[:-1]])
        counts = np.diff(np.r_[starts, len(g_gid)])
        eligible = (counts >= 2) & (counts <= self.max_clique_size)
        sel_starts = starts[eligible]
        sel_counts = counts[eligible]
        if not len(sel_counts):
            return 0

        pool = g_uid[np.repeat(sel_starts, sel_counts) + segment_arange(sel_counts)] + u0
        first, second, group = _pair_indices(sel_counts)
        share = self._group_shares(sel_counts)
        pair_codes = type_codes_fo[g_gid[sel_starts]][group]
        contributions = len(first)
        # job_end passes as a scalar: every contribution of the epoch shares
        # it, so add_weights skips the per-row timestamp reduction.
        bn.add_weights(
            pool[first],
            pool[second],
            pair_codes,
            share[group],
            job_end,
            btype_table=self.edge_types,
        )
        return contributions

    def replay(
        self,
        logs: Sequence[BehaviorLog],
        until: float,
        bn: BehaviorNetwork | None = None,
        expire: bool = True,
    ) -> BehaviorNetwork:
        """Replay all window jobs whose epochs close by ``until``.

        Equivalent to :meth:`build` restricted to logs in closed epochs, but
        exercising the online job path, including TTL expiry at the end.
        Epoch bucketing is one ``np.floor`` + stable argsort per window over
        a timestamp array hoisted out of the loop (the log list is scanned
        for timestamps exactly once).
        """
        if bn is None:
            bn = BehaviorNetwork(ttl=self.ttl)
        logs = list(logs)
        if not logs:
            if expire:
                bn.expire_edges(until)
            return bn
        ts = np.fromiter(
            (log.timestamp for log in logs), dtype=np.float64, count=len(logs)
        )
        t_min = float(ts.min())
        log_arr = np.empty(len(logs), dtype=object)
        log_arr[:] = logs
        for window in self.windows:
            first = int(np.floor((t_min - self.origin) / window))
            last = int(np.floor((until - self.origin) / window))
            epochs = np.floor((ts - self.origin) / window).astype(np.int64)
            mask = (epochs >= first) & (epochs < last)
            if not mask.any():
                continue
            sel_order = np.argsort(epochs[mask], kind="stable")
            sel_eps = epochs[mask][sel_order]
            sel_logs = log_arr[mask][sel_order]
            bounds = np.r_[
                np.flatnonzero(np.r_[True, sel_eps[1:] != sel_eps[:-1]]), len(sel_eps)
            ]
            for k in range(len(bounds) - 1):
                start = bounds[k]
                job_end = self.origin + (int(sel_eps[start]) + 1) * window
                self.run_window_job(
                    bn, list(sel_logs[start : bounds[k + 1]]), window, job_end
                )
        if expire:
            bn.expire_edges(until)
        return bn

    # ------------------------------------------------------------------
    # Pinned reference implementations (parity tests & benchmarks only)
    # ------------------------------------------------------------------
    def build_reference(
        self, logs: Iterable[BehaviorLog], bn: BehaviorNetwork | None = None
    ) -> BehaviorNetwork:
        """Pinned loop twin of :meth:`build` (original per-pair Python)."""
        if bn is None:
            bn = BehaviorNetwork(ttl=self.ttl)
        for btype, (uids, values, times) in self._bucket_by_type(logs, bn).items():
            if not uids:
                continue
            self._build_type_reference(bn, btype, uids, values, times)
        return bn

    def _build_type_reference(
        self,
        bn: BehaviorNetwork,
        btype: BehaviorType,
        uids: list[int],
        values: list[str],
        times: list[float],
    ) -> None:
        """Original dict accumulation: scalar ``add_weight`` per pair."""
        uid_arr = np.asarray(uids, dtype=np.int64)
        time_arr = np.asarray(times, dtype=np.float64)
        value_codes = self._encode_values(values)

        # pair -> [accumulated weight, latest contribution time]
        accum: dict[tuple[int, int], list[float]] = defaultdict(lambda: [0.0, 0.0])
        for window in self.windows:
            self._accumulate_window_reference(
                accum, window, uid_arr, value_codes, time_arr
            )
        for (u, v), (weight, ts) in accum.items():
            bn.add_weight(u, v, btype, weight, ts)

    def _accumulate_window_reference(
        self,
        accum: dict[tuple[int, int], list[float]],
        window: float,
        uid_arr: np.ndarray,
        value_codes: np.ndarray,
        time_arr: np.ndarray,
    ) -> None:
        """Original nested ``for i / for j`` pair loops over one window."""
        members, starts, counts, epochs = self._window_groups(
            window, uid_arr, value_codes, time_arr
        )
        eligible = (counts >= 2) & (counts <= self.max_clique_size)
        for start, count, epoch in zip(
            starts[eligible], counts[eligible], epochs[eligible]
        ):
            users = members[start : start + count]
            epoch_end = self.origin + (int(epoch) + 1) * window
            share = self._share(int(count))
            for i in range(count):
                u = int(users[i])
                for j in range(i + 1, count):
                    entry = accum[(u, int(users[j]))]
                    entry[0] += share
                    entry[1] = max(entry[1], epoch_end)

    def run_window_job_reference(
        self,
        bn: BehaviorNetwork,
        logs: Iterable[BehaviorLog],
        window: float,
        job_end: float,
    ) -> int:
        """Pinned loop twin of :meth:`run_window_job` (scalar mutations)."""
        if window not in self.windows:
            raise ValueError(f"window {window} is not one of the builder's windows")
        lo = job_end - window
        groups: dict[tuple[BehaviorType, str], set[int]] = defaultdict(set)
        for log in logs:
            if log.btype not in self.edge_types:
                continue
            if not lo < log.timestamp <= job_end:
                continue
            bn.add_node(log.uid)
            groups[(log.btype, log.value)].add(log.uid)

        contributions = 0
        for (btype, _value), users in groups.items():
            n = len(users)
            if n < 2 or n > self.max_clique_size:
                continue
            share = self._share(n)
            members = sorted(users)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    bn.add_weight(u, v, btype, share, job_end)
                    contributions += 1
        return contributions

    def replay_reference(
        self,
        logs: Sequence[BehaviorLog],
        until: float,
        bn: BehaviorNetwork | None = None,
        expire: bool = True,
    ) -> BehaviorNetwork:
        """Pinned twin of :meth:`replay`: per-log bucketing, scalar jobs,
        full-scan expiry."""
        if bn is None:
            bn = BehaviorNetwork(ttl=self.ttl)
        for window in self.windows:
            first = (
                int(np.floor((min(l.timestamp for l in logs) - self.origin) / window))
                if logs
                else 0
            )
            last = int(np.floor((until - self.origin) / window))
            buckets: dict[int, list[BehaviorLog]] = defaultdict(list)
            for log in logs:
                epoch = int(np.floor((log.timestamp - self.origin) / window))
                if first <= epoch < last:
                    buckets[epoch].append(log)
            for epoch, epoch_logs in sorted(buckets.items()):
                job_end = self.origin + (epoch + 1) * window
                self.run_window_job_reference(bn, epoch_logs, window, job_end)
        if expire:
            bn._expire_edges_scan(until)
        return bn
