"""BN construction — Algorithm 1 of the paper.

Two entry points:

* :meth:`BNBuilder.build` — batch construction over a full log history,
  vectorized with numpy (group logs by ``(type, value, epoch)`` per window,
  add ``1/N`` to every user pair in each group).
* :meth:`BNBuilder.run_window_job` — one periodic job of the online BN
  server (Section V): process the logs of a single just-closed epoch of one
  window.  Running every window's jobs over a time range is equivalent to the
  batch build over the same logs, which a test verifies.

Engineering bound: groups larger than ``max_clique_size`` distinct users are
skipped.  Their pairwise weight would be at most ``1/max_clique_size`` —
negligible under the inverse weight assignment — while the pair count grows
quadratically (a public Wi-Fi can connect thousands of users within a day).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from ..datagen.behavior_types import EDGE_TYPES, BehaviorType
from ..datagen.entities import BehaviorLog
from .bn import DEFAULT_EDGE_TTL, BehaviorNetwork
from .windows import PAPER_WINDOWS, validate_windows

__all__ = ["BNBuilder"]


class BNBuilder:
    """Builds and incrementally maintains a :class:`BehaviorNetwork`.

    Parameters
    ----------
    windows:
        Hierarchical time windows ``W`` (strictly increasing).
    edge_types:
        Behavior types that produce edges (defaults to the paper's eight).
    max_clique_size:
        Skip ``(value, epoch)`` groups with more distinct users than this.
    ttl:
        Edge time-to-live passed to the created network (60 days by default).
    origin:
        Time ``t_0`` from which epochs are discretized.
    weighting:
        ``"inverse"`` (the paper's ``1/N`` rule) or ``"uniform"`` (every
        co-occurring pair gets weight 1 — the ablation showing why the
        inverse rule matters for public-resource cliques).
    """

    def __init__(
        self,
        windows: Sequence[float] = PAPER_WINDOWS,
        edge_types: Sequence[BehaviorType] = EDGE_TYPES,
        max_clique_size: int = 100,
        ttl: float = DEFAULT_EDGE_TTL,
        origin: float = 0.0,
        weighting: str = "inverse",
    ) -> None:
        self.windows = validate_windows(windows)
        self.edge_types = tuple(edge_types)
        if max_clique_size < 2:
            raise ValueError("max_clique_size must be at least 2")
        if weighting not in ("inverse", "uniform"):
            raise ValueError("weighting must be 'inverse' or 'uniform'")
        self.max_clique_size = max_clique_size
        self.ttl = ttl
        self.origin = origin
        self.weighting = weighting

    def _share(self, group_size: int) -> float:
        return 1.0 / group_size if self.weighting == "inverse" else 1.0

    # ------------------------------------------------------------------
    # Batch construction
    # ------------------------------------------------------------------
    def build(
        self, logs: Iterable[BehaviorLog], bn: BehaviorNetwork | None = None
    ) -> BehaviorNetwork:
        """Construct BN from a full log history (Algorithm 1)."""
        if bn is None:
            bn = BehaviorNetwork(ttl=self.ttl)

        by_type: dict[BehaviorType, tuple[list[int], list[str], list[float]]] = {
            t: ([], [], []) for t in self.edge_types
        }
        for log in logs:
            bucket = by_type.get(log.btype)
            if bucket is None:
                continue
            bucket[0].append(log.uid)
            bucket[1].append(log.value)
            bucket[2].append(log.timestamp)
            bn.add_node(log.uid)

        for btype, (uids, values, times) in by_type.items():
            if not uids:
                continue
            self._build_type(bn, btype, uids, values, times)
        return bn

    def _build_type(
        self,
        bn: BehaviorNetwork,
        btype: BehaviorType,
        uids: list[int],
        values: list[str],
        times: list[float],
    ) -> None:
        uid_arr = np.asarray(uids, dtype=np.int64)
        time_arr = np.asarray(times, dtype=np.float64)
        _, value_codes = np.unique(np.asarray(values, dtype=object), return_inverse=True)
        value_codes = value_codes.astype(np.int64)
        uid_span = int(uid_arr.max()) + 1

        # pair -> [accumulated weight, latest contribution time]
        accum: dict[tuple[int, int], list[float]] = defaultdict(lambda: [0.0, 0.0])
        for window in self.windows:
            self._accumulate_window(
                accum, window, uid_arr, value_codes, time_arr, uid_span
            )
        for (u, v), (weight, ts) in accum.items():
            bn.add_weight(u, v, btype, weight, ts)

    def _accumulate_window(
        self,
        accum: dict[tuple[int, int], list[float]],
        window: float,
        uid_arr: np.ndarray,
        value_codes: np.ndarray,
        time_arr: np.ndarray,
        uid_span: int,
    ) -> None:
        epochs = np.floor((time_arr - self.origin) / window).astype(np.int64)
        epoch_span = int(epochs.max()) + 1
        group_key = value_codes * epoch_span + epochs
        # Distinct (value, epoch, uid) triples: a user logging the same value
        # many times inside one epoch still counts once toward N_{j,s}.
        combo = np.unique(group_key * uid_span + uid_arr)
        g_key = combo // uid_span
        g_uid = (combo % uid_span).astype(np.int64)
        starts = np.flatnonzero(np.r_[True, g_key[1:] != g_key[:-1]])
        counts = np.diff(np.r_[starts, len(g_key)])
        eligible = (counts >= 2) & (counts <= self.max_clique_size)
        for start, count, key in zip(
            starts[eligible], counts[eligible], g_key[starts[eligible]]
        ):
            users = g_uid[start : start + count]
            epoch = key % epoch_span
            epoch_end = self.origin + (epoch + 1) * window
            share = self._share(count)
            for i in range(count):
                u = int(users[i])
                for j in range(i + 1, count):
                    entry = accum[(u, int(users[j]))]
                    entry[0] += share
                    entry[1] = max(entry[1], epoch_end)

    # ------------------------------------------------------------------
    # Incremental (online BN server) construction
    # ------------------------------------------------------------------
    def run_window_job(
        self,
        bn: BehaviorNetwork,
        logs: Iterable[BehaviorLog],
        window: float,
        job_end: float,
    ) -> int:
        """Process the epoch ``(job_end - window, job_end]`` of one window.

        This is the periodic job the BN server schedules (hourly for the
        1-hour window, daily for the 1-day window, ...).  Logs outside the
        epoch are ignored.  Returns the number of pair contributions added.
        """
        if window not in self.windows:
            raise ValueError(f"window {window} is not one of the builder's windows")
        lo = job_end - window
        groups: dict[tuple[BehaviorType, str], set[int]] = defaultdict(set)
        for log in logs:
            if log.btype not in self.edge_types:
                continue
            if not lo < log.timestamp <= job_end:
                continue
            bn.add_node(log.uid)
            groups[(log.btype, log.value)].add(log.uid)

        contributions = 0
        for (btype, _value), users in groups.items():
            n = len(users)
            if n < 2 or n > self.max_clique_size:
                continue
            share = self._share(n)
            members = sorted(users)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    bn.add_weight(u, v, btype, share, job_end)
                    contributions += 1
        return contributions

    def replay(
        self,
        logs: Sequence[BehaviorLog],
        until: float,
        bn: BehaviorNetwork | None = None,
        expire: bool = True,
    ) -> BehaviorNetwork:
        """Replay all window jobs whose epochs close by ``until``.

        Equivalent to :meth:`build` restricted to logs in closed epochs, but
        exercising the online job path, including TTL expiry at the end.
        """
        if bn is None:
            bn = BehaviorNetwork(ttl=self.ttl)
        for window in self.windows:
            first = int(np.floor((min(l.timestamp for l in logs) - self.origin) / window)) if logs else 0
            last = int(np.floor((until - self.origin) / window))
            # Pre-bucket logs per epoch for this window to avoid rescanning.
            buckets: dict[int, list[BehaviorLog]] = defaultdict(list)
            for log in logs:
                epoch = int(np.floor((log.timestamp - self.origin) / window))
                if first <= epoch < last:
                    buckets[epoch].append(log)
            for epoch, epoch_logs in sorted(buckets.items()):
                job_end = self.origin + (epoch + 1) * window
                self.run_window_job(bn, epoch_logs, window, job_end)
        if expire:
            bn.expire_edges(until)
        return bn
