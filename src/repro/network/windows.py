"""Hierarchical time windows for BN construction (Section III-A).

The paper employs ``W = [1 hour, 2 hours, ..., 12 hours, 1 day]``.  Because a
co-occurrence inside a small window is *also* caught by every larger window,
summing the per-window weights gives higher total weight to relations that
appear at shorter intervals — the mechanism that amplifies the temporal
aggregation of fraud rings.
"""

from __future__ import annotations

from ..datagen.entities import DAY, HOUR

__all__ = ["PAPER_WINDOWS", "FAST_WINDOWS", "validate_windows"]

#: The exact hierarchy used in the paper's experiments.
PAPER_WINDOWS: tuple[float, ...] = tuple(i * HOUR for i in range(1, 13)) + (DAY,)

#: A coarser hierarchy used by the test-suite and benchmarks for speed; keeps
#: the strictly-increasing multi-granularity structure.
FAST_WINDOWS: tuple[float, ...] = (HOUR, 3 * HOUR, 6 * HOUR, 12 * HOUR, DAY)


def validate_windows(windows: tuple[float, ...] | list[float]) -> tuple[float, ...]:
    """Check that ``windows`` is non-empty and strictly increasing."""
    windows = tuple(float(w) for w in windows)
    if not windows:
        raise ValueError("at least one time window is required")
    if any(w <= 0 for w in windows):
        raise ValueError("time windows must be positive")
    if any(b <= a for a, b in zip(windows, windows[1:])):
        raise ValueError("time windows must be strictly increasing (W_i < W_i+1)")
    return windows
