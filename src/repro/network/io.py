"""BN persistence: save/load the typed edge list.

The production BN server keeps its global edge list in a local database so
it survives restarts (Section V); offline pipelines equally need to hand a
built BN from the construction job to training jobs.  The format is a
single compressed ``.npz`` holding parallel arrays — compact, versioned,
and loadable without any Python-object unpickling.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from ..datagen.behavior_types import BehaviorType
from .bn import BehaviorNetwork

__all__ = ["save_bn", "load_bn"]

_FORMAT_VERSION = 1


def save_bn(bn: BehaviorNetwork, path: str | os.PathLike) -> None:
    """Serialize ``bn`` (nodes, typed weighted timestamped edges) to ``path``."""
    us: list[int] = []
    vs: list[int] = []
    type_codes: list[int] = []
    weights: list[float] = []
    timestamps: list[float] = []
    types = sorted(bn.edge_types(), key=lambda t: t.value)
    type_index = {t: i for i, t in enumerate(types)}
    for u, v, btype, record in bn.iter_edges():
        us.append(u)
        vs.append(v)
        type_codes.append(type_index[btype])
        weights.append(record.weight)
        timestamps.append(record.last_update)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        ttl=np.float64(bn.ttl),
        nodes=np.asarray(bn.nodes(), dtype=np.int64),
        type_names=np.asarray([t.value for t in types], dtype=object),
        u=np.asarray(us, dtype=np.int64),
        v=np.asarray(vs, dtype=np.int64),
        type_code=np.asarray(type_codes, dtype=np.int64),
        weight=np.asarray(weights, dtype=np.float64),
        last_update=np.asarray(timestamps, dtype=np.float64),
    )


def load_bn(path: str | os.PathLike) -> BehaviorNetwork:
    """Load a network previously written by :func:`save_bn`."""
    with np.load(path, allow_pickle=True) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported BN file version {version}")
        bn = BehaviorNetwork(ttl=float(archive["ttl"]))
        types: Sequence[BehaviorType] = [
            BehaviorType(name) for name in archive["type_names"]
        ]
        for uid in archive["nodes"]:
            bn.add_node(int(uid))
        codes = archive["type_code"].astype(np.int64)
        btypes = np.empty(len(codes), dtype=object)
        for code, btype in enumerate(types):
            btypes[codes == code] = btype
        # One columnar batch: a single snapshot-version bump instead of one
        # per stored edge.
        bn.add_weights(
            archive["u"], archive["v"], btypes, archive["weight"], archive["last_update"]
        )
    return bn
