"""Global sampled-adjacency view of one BN version (InferTurbo-style).

The serving path's fanout-limited top-k neighbour selection
(:func:`repro.network.sampling._select_neighbors`) is a deterministic
function of the graph state — PR 5's batch sampler already memoizes it per
``(node, type)`` keyed on ``bn.version``.  This module materializes that
observation as one flat structure per BN version: :class:`SampledGraph`
holds, for **every** node at once,

* the per-type *selection CSR* — each node's selected neighbour list,
  bit-exact in content and order against ``_select_neighbors`` (creation
  order when the candidate list fits the fanout, stable descending-weight
  rank order when truncated);
* the merged *incidence CSR* — every node's half-edges in pair-creation
  order with their global pair-table ids, which turns induced-adjacency
  extraction into O(sum degree) gathers with a reusable scratch array
  (:meth:`SampledGraph.induced_entries`) instead of the per-batch O(E)
  masking of the union path;
* reachability helpers for the lambda tier's incremental rematerialization:
  reverse-BFS over selection edges bounds which targets' sampled subgraphs
  can see a delta (*score cone*), BFS over the incidence restricted to the
  target set bounds which layer-state rows can change (*layer cone*).

Construction is fully vectorized off the merged :class:`ShardIndex` (which
is itself bit-exact against the unsharded network for shard counts
{1, 2, 4, 8} — see ``network/sharding.py``), so the same ``SampledGraph``
bits come out of a single :class:`~repro.network.bn.BehaviorNetwork` or a
:class:`~repro.network.sharding.ShardedBehaviorNetwork`.  The whole
structure round-trips through flat numpy arrays
(:meth:`~SampledGraph.to_payload`) for shared-memory publication to
:class:`~repro.system.shard_router.ShardWorkerPool` workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..datagen.behavior_types import BehaviorType
from ..nn.sparse import csr_gather_rows
from .sharding import ShardIndex, build_shard_index

__all__ = ["SampledGraph", "build_sampled_graph"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


@dataclass
class SampledGraph:
    """Fanout-limited selection + incidence CSRs over one BN version.

    All node references are *positions* into the sorted ``node_ids`` (the
    snapshot position space shared with :class:`ShardIndex`).  ``types``
    is the sorted tuple of behaviour types present in the graph — the same
    expansion order the scalar BFS uses.
    """

    version: int
    fanout: int | None
    node_ids: np.ndarray  # sorted int64 user ids
    types: tuple[BehaviorType, ...]
    #: per-type selection CSR: row ``p`` is ``_select_neighbors`` output
    #: for ``node_ids[p]`` under this type/fanout, as positions.
    sel_indptr: dict[BehaviorType, np.ndarray]
    sel_nbr: dict[BehaviorType, np.ndarray]
    #: all types' selection rows concatenated per node in type order —
    #: exactly the candidate stream one BFS hop enumerates for a node.
    all_indptr: np.ndarray
    all_nbr: np.ndarray
    #: merged incidence CSR: row ``p`` lists every half-edge of the node in
    #: pair-creation order (neighbour position + global pair-table id).
    inc_indptr: np.ndarray
    inc_nbr: np.ndarray
    inc_pair: np.ndarray
    #: global pair table (pair-creation order) and per-type dense
    #: normalized weights — views shared with the source ``ShardIndex``.
    pair_lo_pos: np.ndarray
    pair_hi_pos: np.ndarray
    type_norm: dict[BehaviorType, np.ndarray]
    _scratch: np.ndarray | None = field(default=None, repr=False, compare=False)
    _seen: np.ndarray | None = field(default=None, repr=False, compare=False)
    _rev: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_pairs(self) -> int:
        return len(self.pair_lo_pos)

    @property
    def num_selected_edges(self) -> int:
        """Total selection half-edges across all types."""
        return int(self.all_indptr[-1]) if len(self.all_indptr) else 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index: ShardIndex, fanout: int | None) -> "SampledGraph":
        """Build the global selection + incidence CSRs off a merged index.

        One vectorized pass: merge the per-shard half-edge blocks, resort
        by ``(node, pair)`` (pair-table order is creation order, so this
        yields every node's half-edges in creation order), then rank each
        node's per-type candidate segment exactly the way
        ``_select_neighbors`` does — creation order when the segment fits
        the fanout, stable ``argsort(-weight)`` order truncated to
        ``fanout`` otherwise.
        """
        num_nodes = index.num_nodes
        node_parts: list[np.ndarray] = []
        nbr_parts: list[np.ndarray] = []
        pair_parts: list[np.ndarray] = []
        for block in index.shards:
            if not len(block.nbr_pos):
                continue
            counts = np.diff(block.indptr)
            node_parts.append(np.repeat(block.own_positions, counts))
            nbr_parts.append(block.nbr_pos)
            pair_parts.append(block.pair_idx)
        if node_parts:
            node_all = np.concatenate(node_parts)
            nbr_all = np.concatenate(nbr_parts)
            pair_all = np.concatenate(pair_parts)
            order = np.lexsort((pair_all, node_all))
            node_all = node_all[order]
            nbr_all = nbr_all[order]
            pair_all = pair_all[order]
        else:
            node_all = nbr_all = pair_all = _EMPTY_I64
        inc_indptr = np.searchsorted(
            node_all, np.arange(num_nodes + 1, dtype=np.int64)
        ).astype(np.int64)

        sel_indptr: dict[BehaviorType, np.ndarray] = {}
        sel_nbr: dict[BehaviorType, np.ndarray] = {}
        for btype in index.types:
            dense_w = index.type_weights[btype]
            w_all = dense_w[pair_all] if len(pair_all) else np.empty(0)
            mask = w_all > 0.0
            n_t = node_all[mask]
            v_t = nbr_all[mask]
            counts = np.bincount(n_t, minlength=num_nodes).astype(np.int64)
            if fanout is None:
                kept_counts = counts
                kept_nbr = v_t
            else:
                # Per-node creation-order offset of each candidate, and its
                # stable descending-weight rank; _select_neighbors keeps the
                # creation order when the segment fits the fanout and the
                # rank order (truncated) otherwise.
                starts = np.zeros(num_nodes, dtype=np.int64)
                if num_nodes:
                    np.cumsum(counts[:-1], out=starts[1:])
                seg_starts = np.repeat(starts, counts)
                pos_in_seg = np.arange(len(n_t), dtype=np.int64) - seg_starts
                w_t = w_all[mask]
                by_rank = np.lexsort((pos_in_seg, -w_t, n_t))
                rank = np.empty(len(n_t), dtype=np.int64)
                rank[by_rank] = np.arange(len(n_t), dtype=np.int64) - seg_starts
                truncated = (counts > fanout)[n_t]
                key = np.where(truncated, rank, pos_in_seg)
                keep = np.flatnonzero(~truncated | (rank < fanout))
                final = keep[np.lexsort((key[keep], n_t[keep]))]
                kept_counts = np.minimum(counts, fanout)
                kept_nbr = v_t[final]
            indptr = np.zeros(num_nodes + 1, dtype=np.int64)
            np.cumsum(kept_counts, out=indptr[1:])
            sel_indptr[btype] = indptr
            sel_nbr[btype] = np.ascontiguousarray(kept_nbr, dtype=np.int64)

        all_indptr, all_nbr = _interleave_types(
            num_nodes, [sel_indptr[t] for t in index.types], [sel_nbr[t] for t in index.types]
        )
        return cls(
            version=int(index.version),
            fanout=fanout,
            node_ids=index.node_ids,
            types=tuple(index.types),
            sel_indptr=sel_indptr,
            sel_nbr=sel_nbr,
            all_indptr=all_indptr,
            all_nbr=all_nbr,
            inc_indptr=inc_indptr,
            inc_nbr=np.ascontiguousarray(nbr_all, dtype=np.int64),
            inc_pair=np.ascontiguousarray(pair_all, dtype=np.int64),
            pair_lo_pos=index.pair_lo_pos,
            pair_hi_pos=index.pair_hi_pos,
            type_norm=dict(index.type_norm_weights),
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def position_of(self, uid: int) -> int:
        """Position of ``uid`` in ``node_ids`` (-1 when not registered)."""
        pos = int(np.searchsorted(self.node_ids, uid))
        if pos < len(self.node_ids) and int(self.node_ids[pos]) == uid:
            return pos
        return -1

    def positions_of(self, uids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`position_of` (-1 per unregistered uid)."""
        uids = np.asarray(uids, dtype=np.int64)
        pos = np.searchsorted(self.node_ids, uids)
        pos = np.minimum(pos, max(len(self.node_ids) - 1, 0))
        if not len(self.node_ids):
            return np.full(len(uids), -1, dtype=np.int64)
        return np.where(self.node_ids[pos] == uids, pos, -1)

    def allowed_mask(self, allowed: set[int] | None) -> np.ndarray | None:
        """Dense position mask of an ``allowed`` uid set (``None`` passes)."""
        if allowed is None:
            return None
        mask = np.zeros(self.num_nodes, dtype=bool)
        uids = np.fromiter(allowed, dtype=np.int64, count=len(allowed))
        pos = self.positions_of(uids)
        mask[pos[pos >= 0]] = True
        return mask

    def selected(self, uid: int, btype: BehaviorType) -> list[int]:
        """``_select_neighbors`` replay for one ``(uid, type)`` (uid list)."""
        pos = self.position_of(uid)
        if pos < 0 or btype not in self.sel_indptr:
            return []
        indptr = self.sel_indptr[btype]
        row = self.sel_nbr[btype][indptr[pos] : indptr[pos + 1]]
        return self.node_ids[row].tolist()

    # ------------------------------------------------------------------
    # Per-target sampling (bit-exact scalar-BFS replay)
    # ------------------------------------------------------------------
    def subgraph_positions(
        self, pos: int, hops: int, allowed_mask: np.ndarray | None = None
    ) -> tuple[np.ndarray, int]:
        """BFS over selection edges from ``pos``; positions in discovery order.

        Returns ``(positions, expanded)`` where ``expanded`` is the number
        of frontier nodes whose selection rows were enumerated (each counts
        ``len(types)`` expansions in the scalar path's accounting).  The
        discovery order is exactly the scalar BFS's: per frontier node in
        order, per type in order, per selected neighbour in order, first
        occurrence wins — reproduced here by a stable first-occurrence
        dedup over the concatenated candidate stream.
        """
        seen = self._seen
        if seen is None or len(seen) != self.num_nodes:
            seen = np.zeros(self.num_nodes, dtype=bool)
            self._seen = seen
        seen[pos] = True
        frontier = np.asarray([pos], dtype=np.int64)
        parts = [frontier]
        expanded = 0
        for _ in range(hops):
            if not len(frontier):
                break
            expanded += len(frontier)
            _, gidx = csr_gather_rows(self.all_indptr, frontier)
            cand = self.all_nbr[gidx]
            if len(cand):
                keep = ~seen[cand]
                if allowed_mask is not None:
                    keep &= allowed_mask[cand]
                cand = cand[keep]
            if len(cand):
                first = np.unique(cand, return_index=True)[1]
                first.sort()
                cand = cand[first]
                seen[cand] = True
            parts.append(cand)
            frontier = cand
        out = np.concatenate(parts) if len(parts) > 1 else parts[0]
        seen[out] = False
        return out, expanded

    # ------------------------------------------------------------------
    # Induced adjacency (frontier-local _typed_entries replay)
    # ------------------------------------------------------------------
    def half_edges_of(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(local_row, nbr_pos, pair_id)`` of every half-edge of ``positions``."""
        indptr, gidx = csr_gather_rows(self.inc_indptr, positions)
        rows = np.repeat(
            np.arange(len(positions), dtype=np.int64), np.diff(indptr)
        )
        return rows, self.inc_nbr[gidx], self.inc_pair[gidx]

    def induced_entries(
        self, positions: np.ndarray, types: Sequence[BehaviorType]
    ) -> dict[BehaviorType, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-type ``(iu, iv, w)`` entries induced by ``positions``.

        Bit-exact (content *and* order) against
        :func:`repro.network.adjacency._typed_entries` masked to the same
        node set: candidate pair ids are deduped on their ``lo`` side and
        sorted ascending, and pair-table order **is** snapshot edge order.
        Unlike :meth:`ShardIndex.induced_entries` this keeps a reusable
        O(num_nodes) scratch across calls (touched entries are reset on
        exit), so a sweep over 10^5 targets costs O(sum degree), not
        O(targets * num_nodes).  ``positions`` may contain ``-1``
        (unregistered nodes stay isolated rows).
        """
        positions = np.asarray(positions, dtype=np.int64)
        scratch = self._scratch
        if scratch is None or len(scratch) != self.num_nodes:
            scratch = np.full(self.num_nodes, -1, dtype=np.int64)
            self._scratch = scratch
        inside = positions >= 0
        in_pos = positions[inside]
        scratch[in_pos] = np.flatnonzero(inside)
        rows, nbr, pid = self.half_edges_of(in_pos)
        if len(pid):
            keep = (scratch[nbr] >= 0) & (self.pair_lo_pos[pid] == in_pos[rows])
            candidates = np.unique(pid[keep]) if keep.any() else _EMPTY_I64
        else:
            candidates = _EMPTY_I64
        out: dict[BehaviorType, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for btype in types:
            norm = self.type_norm.get(btype)
            if norm is None:
                out[btype] = (_EMPTY_I64, _EMPTY_I64, np.empty(0))
                continue
            w = norm[candidates]
            mask = w > 0.0
            kept = candidates[mask]
            out[btype] = (
                scratch[self.pair_lo_pos[kept]],
                scratch[self.pair_hi_pos[kept]],
                w[mask],
            )
        scratch[in_pos] = -1
        return out

    # ------------------------------------------------------------------
    # Cones (incremental rematerialization)
    # ------------------------------------------------------------------
    def _reverse_selection(self) -> tuple[np.ndarray, np.ndarray]:
        """Transposed selection CSR (who can reach me in one hop), memoized."""
        if self._rev is None:
            src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64),
                np.diff(self.all_indptr),
            )
            dst = self.all_nbr
            order = np.argsort(dst, kind="stable")
            rev_nbr = src[order]
            rev_indptr = np.searchsorted(
                dst[order], np.arange(self.num_nodes + 1, dtype=np.int64)
            ).astype(np.int64)
            self._rev = (rev_indptr, rev_nbr)
        return self._rev

    def reverse_reachable(self, seeds: np.ndarray, hops: int) -> np.ndarray:
        """Positions that can reach a seed within ``hops`` selection steps.

        This is the *score cone*: a target whose BFS tree cannot reach any
        touched node within ``hops`` hops of the current selection graph
        has a subgraph made entirely of untouched nodes — whose selection
        rows, induced entries (degrees included) and feature rows are all
        unchanged — so its replayed score is bit-identical.  Seeds
        themselves are included.
        """
        rev_indptr, rev_nbr = self._reverse_selection()
        reached = np.zeros(self.num_nodes, dtype=bool)
        frontier = np.unique(np.asarray(seeds, dtype=np.int64))
        frontier = frontier[frontier >= 0]
        reached[frontier] = True
        for _ in range(hops):
            if not len(frontier):
                break
            _, gidx = csr_gather_rows(rev_indptr, frontier)
            nxt = np.unique(rev_nbr[gidx])
            nxt = nxt[~reached[nxt]]
            reached[nxt] = True
            frontier = nxt
        return np.flatnonzero(reached)

    def undirected_reachable(
        self,
        seeds: np.ndarray,
        hops: int,
        member_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Positions within ``hops`` undirected incidence hops of ``seeds``.

        With ``member_mask`` the walk is confined to the masked node set —
        this is the *layer cone* over the target-induced full adjacency
        (incidence is a superset of any normalized typed adjacency, so the
        cone is conservative).
        """
        reached = np.zeros(self.num_nodes, dtype=bool)
        frontier = np.unique(np.asarray(seeds, dtype=np.int64))
        frontier = frontier[frontier >= 0]
        if member_mask is not None:
            frontier = frontier[member_mask[frontier]]
        reached[frontier] = True
        for _ in range(hops):
            if not len(frontier):
                break
            _, gidx = csr_gather_rows(self.inc_indptr, frontier)
            nxt = np.unique(self.inc_nbr[gidx])
            nxt = nxt[~reached[nxt]]
            if member_mask is not None:
                nxt = nxt[member_mask[nxt]]
            reached[nxt] = True
            frontier = nxt
        return np.flatnonzero(reached)

    # ------------------------------------------------------------------
    # Shared-memory round trip
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Flatten to named arrays + JSON-safe meta for shm publication."""
        arrays: dict[str, np.ndarray] = {
            "node_ids": self.node_ids,
            "all_indptr": self.all_indptr,
            "all_nbr": self.all_nbr,
            "inc_indptr": self.inc_indptr,
            "inc_nbr": self.inc_nbr,
            "inc_pair": self.inc_pair,
            "pair_lo_pos": self.pair_lo_pos,
            "pair_hi_pos": self.pair_hi_pos,
        }
        for btype in self.types:
            arrays[f"selp:{btype.value}"] = self.sel_indptr[btype]
            arrays[f"seln:{btype.value}"] = self.sel_nbr[btype]
            arrays[f"norm:{btype.value}"] = self.type_norm[btype]
        meta = {
            "version": self.version,
            "fanout": -1 if self.fanout is None else int(self.fanout),
            "types": [btype.value for btype in self.types],
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict[str, Any]
    ) -> "SampledGraph":
        """Rebuild from :meth:`to_payload` output (arrays kept as views)."""
        types = tuple(BehaviorType(value) for value in meta["types"])
        fanout = int(meta["fanout"])
        return cls(
            version=int(meta["version"]),
            fanout=None if fanout < 0 else fanout,
            node_ids=np.asarray(arrays["node_ids"], dtype=np.int64),
            types=types,
            sel_indptr={
                t: np.asarray(arrays[f"selp:{t.value}"], dtype=np.int64)
                for t in types
            },
            sel_nbr={
                t: np.asarray(arrays[f"seln:{t.value}"], dtype=np.int64)
                for t in types
            },
            all_indptr=np.asarray(arrays["all_indptr"], dtype=np.int64),
            all_nbr=np.asarray(arrays["all_nbr"], dtype=np.int64),
            inc_indptr=np.asarray(arrays["inc_indptr"], dtype=np.int64),
            inc_nbr=np.asarray(arrays["inc_nbr"], dtype=np.int64),
            inc_pair=np.asarray(arrays["inc_pair"], dtype=np.int64),
            pair_lo_pos=np.asarray(arrays["pair_lo_pos"], dtype=np.int64),
            pair_hi_pos=np.asarray(arrays["pair_hi_pos"], dtype=np.int64),
            type_norm={t: np.asarray(arrays[f"norm:{t.value}"]) for t in types},
        )


def _interleave_types(
    num_nodes: int,
    indptrs: Sequence[np.ndarray],
    nbrs: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise concatenation of per-type CSRs in type order.

    Row ``p`` of the output is ``type0's row p, type1's row p, ...`` —
    the exact candidate enumeration order of one scalar BFS expansion.
    """
    if not indptrs:
        return np.zeros(num_nodes + 1, dtype=np.int64), _EMPTY_I64
    node_keys = np.concatenate(
        [np.repeat(np.arange(num_nodes, dtype=np.int64), np.diff(p)) for p in indptrs]
    )
    type_keys = np.concatenate(
        [np.full(int(p[-1]), i, dtype=np.int64) for i, p in enumerate(indptrs)]
    )
    seq_keys = np.concatenate(
        [np.arange(int(p[-1]), dtype=np.int64) for p in indptrs]
    )
    order = np.lexsort((seq_keys, type_keys, node_keys))
    all_nbr = np.concatenate(nbrs)[order] if len(order) else _EMPTY_I64
    counts = np.bincount(node_keys, minlength=num_nodes).astype(np.int64)
    all_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=all_indptr[1:])
    return all_indptr, all_nbr


def build_sampled_graph(bn, fanout: int | None) -> SampledGraph:
    """Build the :class:`SampledGraph` of ``bn``'s current version.

    Accepts a plain :class:`~repro.network.bn.BehaviorNetwork` (merged as a
    single-shard index) or a
    :class:`~repro.network.sharding.ShardedBehaviorNetwork` (its memoized
    merged index) — both produce identical bits for the same graph.
    """
    index_fn = getattr(bn, "index", None) or getattr(bn, "shard_index", None)
    if index_fn is not None:
        index = index_fn()
    else:
        index = build_shard_index([bn], 1, int(bn.version))
    return SampledGraph.from_index(index, fanout)
