"""Hash-partitioned sharding of the Behavior Network (ROADMAP item 1).

The deployed Turbo serves hundreds of millions of edges by partitioning the
BN across machines (PAPER.md Fig. 8b); this module is that substrate in
reproduction form.  Users are routed to shards by a stable integer hash
(:func:`shard_of`), every shard holds an ordinary
:class:`~repro.network.bn.BehaviorNetwork`, and
:class:`ShardedBehaviorNetwork` presents the union as one network with a
single cross-shard mutation counter (the *version barrier*).

Storage is **single-copy**: a pair ``(lo, hi)`` lives only on ``lo``'s owner
shard, so one ingest batch splits into disjoint per-shard sub-batches and
shard applies scale with the shard count (mirroring every edge on both
endpoint owners would cap ingest speedup at ~2x).  The price is that no
single shard can answer a neighbourhood query by itself — reads go through
a published, merged :class:`ShardIndex` instead (the *publish-time mirror
exchange*), which is exactly the read-only-snapshot serving split the
deployment needs anyway (BRIGHT-style decoupling of graph access from
scoring, PAPERS.md).

Bit-exactness is the contract that makes all of this testable: the merged
index reproduces, bit for bit, what the equivalent unsharded
``BehaviorNetwork`` would expose —

* pair-creation order is reconstructed from per-pair sequence tags
  (``BehaviorNetwork`` stamps ``_pair_seq`` at creation; one ingest batch
  shares a tag and creates its pairs in ``(lo, hi)`` order, so sorting by
  ``(seq, lo, hi)`` is the global ``_edges`` insertion order);
* per-type edge arrays, and therefore :class:`BNSnapshot` exports, match
  the unsharded ``to_arrays()`` including ``np.add.at`` degree
  accumulation order;
* per-``(node, type)`` neighbour selection replays the exact
  creation-order neighbour lists and stable top-``fanout`` ranking of
  :func:`repro.network.sampling._select_neighbors`.

``tests/test_network/test_sharding.py`` pins all three for shard counts
{1, 2, 4, 8}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from ..datagen.behavior_types import BehaviorType
from .bn import (
    DEFAULT_EDGE_TTL,
    BehaviorNetwork,
    EdgeRecord,
    WeightGroups,
    prepare_weight_groups,
)
from .snapshot import BNSnapshot, TypedEdgeArrays

__all__ = [
    "shard_of",
    "ShardBlock",
    "ShardIndex",
    "build_shard_index",
    "ShardedBehaviorNetwork",
]

_MASK64 = (1 << 64) - 1
_EMPTY_I64 = np.empty(0, dtype=np.int64)


def shard_of(uids: Sequence[int] | np.ndarray, n_shards: int) -> np.ndarray:
    """Stable ``uid -> shard`` routing (vectorized splitmix64 finalizer).

    Pure function of ``(uid, n_shards)`` — the same user lands on the same
    shard in every process, which is what lets ingest routing, the published
    index and remote workers agree without coordination.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    z = np.asarray(uids, dtype=np.int64).astype(np.uint64)
    z = z + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(n_shards)).astype(np.int64)


def _shard_of_int(uid: int, n_shards: int) -> int:
    """Scalar twin of :func:`shard_of` (bit-identical, no array overhead)."""
    z = (int(uid) + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return int(z % n_shards)


@dataclass(slots=True)
class ShardBlock:
    """One shard's slice of the merged neighbour index.

    ``own_positions`` are the snapshot positions this shard owns (sorted);
    row ``i`` of the CSR (``indptr[i]:indptr[i+1]``) lists the half-edges of
    ``own_positions[i]`` in pair-creation order: neighbour positions in
    ``nbr_pos`` and the global pair-table index in ``pair_idx``.
    """

    own_positions: np.ndarray  # int64, sorted snapshot positions
    indptr: np.ndarray  # int64, len(own_positions) + 1
    nbr_pos: np.ndarray  # int64 neighbour snapshot positions
    pair_idx: np.ndarray  # int64 indices into the global pair table

    def row(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        """``(nbr_pos, pair_idx)`` slices of one owned node's half-edges."""
        local = int(np.searchsorted(self.own_positions, position))
        start, end = int(self.indptr[local]), int(self.indptr[local + 1])
        return self.nbr_pos[start:end], self.pair_idx[start:end]


@dataclass
class ShardIndex:
    """The published, merged, read-only view of a sharded BN.

    The pair table (``pair_lo_pos``/``pair_hi_pos`` plus per-type dense
    weight columns) is in global pair-creation order, so per-type masks of
    it reproduce the unsharded snapshot's edge arrays verbatim; the
    per-shard :class:`ShardBlock` CSRs give each worker creation-order
    neighbour lists for the nodes it owns.  All fields are flat numpy
    arrays — :meth:`to_payload` / :meth:`from_payload` round-trip the whole
    index through ``multiprocessing.shared_memory`` segments zero-copy.
    """

    version: int
    n_shards: int
    node_ids: np.ndarray  # sorted int64 user ids
    owner_of_pos: np.ndarray  # int64 owner shard per snapshot position
    pair_lo_pos: np.ndarray  # int64, len P
    pair_hi_pos: np.ndarray  # int64, len P
    types: tuple[BehaviorType, ...]
    type_weights: dict[BehaviorType, np.ndarray]  # dense P raw weights
    type_norm_weights: dict[BehaviorType, np.ndarray]  # dense P normalized
    type_last_update: dict[BehaviorType, np.ndarray]  # dense P timestamps
    shards: list[ShardBlock]
    _snapshot: BNSnapshot | None = field(default=None, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_pairs(self) -> int:
        return len(self.pair_lo_pos)

    def position_of(self, uid: int) -> int:
        """Snapshot position of ``uid`` (-1 when not registered)."""
        pos = int(np.searchsorted(self.node_ids, uid))
        if pos < len(self.node_ids) and int(self.node_ids[pos]) == uid:
            return pos
        return -1

    def neighbors(self, uid: int, btype: BehaviorType | None = None) -> list[int]:
        """Creation-order neighbour ids (``BehaviorNetwork.neighbors`` parity)."""
        pos = self.position_of(uid)
        if pos < 0:
            return []
        block = self.shards[int(self.owner_of_pos[pos])]
        nbr, pid = block.row(pos)
        if btype is None:
            return self.node_ids[nbr].tolist()
        weights = self.type_weights.get(btype)
        if weights is None:
            return []
        return self.node_ids[nbr[weights[pid] > 0.0]].tolist()

    def select_neighbors(
        self, uid: int, btype: BehaviorType, fanout: int | None
    ) -> list[int]:
        """Deterministic top-``fanout`` selection, bit-exact against
        :func:`repro.network.sampling._select_neighbors` on the equivalent
        unsharded network (same creation-order candidate list, same stable
        ``argsort(-weights)`` ranking)."""
        pos = self.position_of(uid)
        if pos < 0:
            return []
        weights = self.type_weights.get(btype)
        if weights is None:
            return []
        block = self.shards[int(self.owner_of_pos[pos])]
        nbr, pid = block.row(pos)
        w = weights[pid]
        mask = w > 0.0
        candidates = self.node_ids[nbr[mask]]
        if fanout is None or len(candidates) <= fanout:
            return candidates.tolist()
        order = np.argsort(-w[mask], kind="stable")[:fanout]
        return candidates[order].tolist()

    def induced_entries(
        self,
        union_positions: np.ndarray,
        types: Sequence[BehaviorType],
        live_shards: Sequence[int] | None = None,
    ) -> dict[BehaviorType, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-type ``(iu, iv, w)`` entries induced by the union node set.

        Frontier-local counterpart of
        :func:`repro.network.adjacency._typed_entries`: instead of masking
        every edge in the graph (O(E) per batch), gather the union nodes'
        CSR rows (O(sum deg)), dedup pairs on their ``lo`` side, and sort
        the surviving pair indices ascending — pair-table order **is**
        snapshot edge order, so the kept entries match the full-graph mask
        in content *and* order, which keeps the downstream per-request CSR
        construction bit-exact.  ``union_positions`` may contain ``-1``
        (unregistered nodes stay isolated rows, as in the dense path);
        ``live_shards`` drops rows owned by dead shards (partial serving).
        """
        union_of_pos = np.full(self.num_nodes, -1, dtype=np.int64)
        inside = union_positions >= 0
        inside_pos = union_positions[inside]
        union_of_pos[inside_pos] = np.flatnonzero(inside)
        live = None if live_shards is None else set(int(s) for s in live_shards)
        owner = self.owner_of_pos[inside_pos]
        # Candidate pair ids are finished with np.unique (sorted), so the
        # gather order is free — group union members by owner shard and
        # slice every member's CSR row in one vectorized gather instead of
        # a per-node Python loop (the serve-path hot spot at 10^6 nodes).
        chunks: list[np.ndarray] = []
        for s, block in enumerate(self.shards):
            if live is not None and s not in live:
                continue
            members = inside_pos[owner == s]
            if not len(members):
                continue
            local = np.searchsorted(block.own_positions, members)
            starts = block.indptr[local]
            lengths = block.indptr[local + 1] - starts
            total = int(lengths.sum())
            if not total:
                continue
            bounds = np.cumsum(lengths)
            gidx = (
                np.arange(total, dtype=np.int64)
                - np.repeat(bounds - lengths, lengths)
                + np.repeat(starts, lengths)
            )
            nbr = block.nbr_pos[gidx]
            pid = block.pair_idx[gidx]
            keep = (union_of_pos[nbr] >= 0) & (
                self.pair_lo_pos[pid] == np.repeat(members, lengths)
            )
            if keep.any():
                chunks.append(pid[keep])
        candidates = (
            np.unique(np.concatenate(chunks)) if chunks else _EMPTY_I64
        )
        out: dict[BehaviorType, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for btype in types:
            norm = self.type_norm_weights.get(btype)
            if norm is None:
                out[btype] = (_EMPTY_I64, _EMPTY_I64, np.empty(0))
                continue
            w = norm[candidates]
            mask = w > 0.0
            kept = candidates[mask]
            out[btype] = (
                union_of_pos[self.pair_lo_pos[kept]],
                union_of_pos[self.pair_hi_pos[kept]],
                w[mask],
            )
        return out

    def snapshot(self) -> BNSnapshot:
        """Merged :class:`BNSnapshot`, bit-exact against the unsharded
        ``BehaviorNetwork.to_arrays()`` (same node order, same per-type edge
        order, same weights — so the memoized degree accumulation inside the
        snapshot replays identically too)."""
        if self._snapshot is None:
            edges: dict[BehaviorType, TypedEdgeArrays] = {}
            for btype in self.types:
                w = self.type_weights[btype]
                idx = np.flatnonzero(w > 0.0)
                edges[btype] = TypedEdgeArrays(
                    rows=self.pair_lo_pos[idx],
                    cols=self.pair_hi_pos[idx],
                    weights=w[idx],
                    last_update=self.type_last_update[btype][idx],
                )
            self._snapshot = BNSnapshot(
                node_ids=self.node_ids, edges=edges, version=self.version
            )
        return self._snapshot

    # ------------------------------------------------------------------
    # Shared-memory round trip
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Flatten to named arrays + JSON-safe meta for shm publication."""
        arrays: dict[str, np.ndarray] = {
            "node_ids": self.node_ids,
            "owner_of_pos": self.owner_of_pos,
            "pair_lo_pos": self.pair_lo_pos,
            "pair_hi_pos": self.pair_hi_pos,
        }
        for btype in self.types:
            arrays[f"w:{btype.value}"] = self.type_weights[btype]
            arrays[f"wn:{btype.value}"] = self.type_norm_weights[btype]
            arrays[f"lu:{btype.value}"] = self.type_last_update[btype]
        for s, block in enumerate(self.shards):
            arrays[f"blk{s}:own"] = block.own_positions
            arrays[f"blk{s}:indptr"] = block.indptr
            arrays[f"blk{s}:nbr"] = block.nbr_pos
            arrays[f"blk{s}:pair"] = block.pair_idx
        meta = {
            "version": self.version,
            "n_shards": self.n_shards,
            "types": [btype.value for btype in self.types],
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict[str, Any]
    ) -> "ShardIndex":
        """Rebuild from :meth:`to_payload` output (views are kept as-is)."""
        types = tuple(BehaviorType(value) for value in meta["types"])
        n_shards = int(meta["n_shards"])
        return cls(
            version=int(meta["version"]),
            n_shards=n_shards,
            node_ids=arrays["node_ids"],
            owner_of_pos=arrays["owner_of_pos"],
            pair_lo_pos=arrays["pair_lo_pos"],
            pair_hi_pos=arrays["pair_hi_pos"],
            types=types,
            type_weights={t: arrays[f"w:{t.value}"] for t in types},
            type_norm_weights={t: arrays[f"wn:{t.value}"] for t in types},
            type_last_update={t: arrays[f"lu:{t.value}"] for t in types},
            shards=[
                ShardBlock(
                    own_positions=arrays[f"blk{s}:own"],
                    indptr=arrays[f"blk{s}:indptr"],
                    nbr_pos=arrays[f"blk{s}:nbr"],
                    pair_idx=arrays[f"blk{s}:pair"],
                )
                for s in range(n_shards)
            ],
        )


def _export_pair_table(
    bn: BehaviorNetwork,
) -> tuple[
    np.ndarray,
    np.ndarray,
    np.ndarray,
    dict[BehaviorType, np.ndarray],
    dict[BehaviorType, np.ndarray],
]:
    """One pass over a shard's edge dict -> (lo, hi, seq, w-by-type, lu-by-type).

    Rows come out in the shard's ``_edges`` insertion order; per-type dense
    columns carry 0.0 where the pair lacks the type (edge weights are
    strictly positive, so 0.0 unambiguously means "absent").
    """
    count = len(bn._edges)
    lo = np.empty(count, dtype=np.int64)
    hi = np.empty(count, dtype=np.int64)
    seq = np.empty(count, dtype=np.int64)
    w_by: dict[BehaviorType, np.ndarray] = {}
    lu_by: dict[BehaviorType, np.ndarray] = {}
    pair_seq = bn._pair_seq
    for i, ((a, b), records) in enumerate(bn._edges.items()):
        lo[i] = a
        hi[i] = b
        seq[i] = pair_seq[(a, b)]
        for btype, record in records.items():
            w_col = w_by.get(btype)
            if w_col is None:
                w_col = np.zeros(count)
                w_by[btype] = w_col
                lu_col = np.zeros(count)
                lu_by[btype] = lu_col
            else:
                lu_col = lu_by[btype]
            w_col[i] = record.weight
            lu_col[i] = record.last_update
    return lo, hi, seq, w_by, lu_by


def build_shard_index(
    shards: Sequence[BehaviorNetwork], n_shards: int, version: int
) -> ShardIndex:
    """Merge per-shard pair tables into one :class:`ShardIndex`.

    This is the publish-time mirror exchange: each shard exports only the
    pairs it stores (single copy, owner of ``lo``); the merge sorts the
    concatenation by ``(seq, lo, hi)`` — the global pair-creation order —
    and then redistributes *half-edges* to the owner of each endpoint, so
    every shard block can serve creation-order neighbour lists for all the
    nodes it owns, including those whose pairs live elsewhere.
    """
    tables = [_export_pair_table(shard) for shard in shards]
    lo = np.concatenate([t[0] for t in tables])
    hi = np.concatenate([t[1] for t in tables])
    seq = np.concatenate([t[2] for t in tables])
    order = np.lexsort((hi, lo, seq))
    lo, hi = lo[order], hi[order]
    types = tuple(sorted(set().union(*(t[3].keys() for t in tables))))
    type_weights: dict[BehaviorType, np.ndarray] = {}
    type_last_update: dict[BehaviorType, np.ndarray] = {}
    for btype in types:
        w_parts = [
            t[3].get(btype, None) for t in tables
        ]
        lu_parts = [t[4].get(btype, None) for t in tables]
        w_parts = [
            part if part is not None else np.zeros(len(t[0]))
            for part, t in zip(w_parts, tables)
        ]
        lu_parts = [
            part if part is not None else np.zeros(len(t[0]))
            for part, t in zip(lu_parts, tables)
        ]
        type_weights[btype] = np.concatenate(w_parts)[order]
        type_last_update[btype] = np.concatenate(lu_parts)[order]

    node_arrays = [
        np.fromiter(shard._adjacency.keys(), dtype=np.int64, count=len(shard._adjacency))
        for shard in shards
    ]
    node_ids = np.unique(np.concatenate(node_arrays)) if node_arrays else _EMPTY_I64
    lo_pos = np.searchsorted(node_ids, lo)
    hi_pos = np.searchsorted(node_ids, hi)
    owner_of_pos = shard_of(node_ids, n_shards)

    type_norm: dict[BehaviorType, np.ndarray] = {}
    num_pairs = len(lo)
    for btype in types:
        w = type_weights[btype]
        mask = w > 0.0
        idx = np.flatnonzero(mask)
        rows, cols, values = lo_pos[idx], hi_pos[idx], w[idx]
        # Replays BNSnapshot.weighted_degrees' two np.add.at passes over the
        # same arrays in the same order, so degrees (and the normalized
        # weights below) match the unsharded export to the last ulp.
        degrees = np.zeros(len(node_ids))
        np.add.at(degrees, rows, values)
        np.add.at(degrees, cols, values)
        product = degrees[rows] * degrees[cols]
        normalized = np.divide(
            values,
            np.sqrt(product, out=np.zeros_like(product), where=product > 0),
            out=np.zeros_like(values),
            where=product > 0,
        )
        dense = np.zeros(num_pairs)
        dense[idx] = normalized
        type_norm[btype] = dense

    pair_range = np.arange(num_pairs, dtype=np.int64)
    node_half = np.concatenate([lo_pos, hi_pos])
    nbr_half = np.concatenate([hi_pos, lo_pos])
    pair_half = np.concatenate([pair_range, pair_range])
    owner_half = owner_of_pos[node_half] if len(node_half) else _EMPTY_I64
    half_order = np.lexsort((pair_half, node_half, owner_half))
    node_half = node_half[half_order]
    nbr_half = nbr_half[half_order]
    pair_half = pair_half[half_order]
    owner_half = owner_half[half_order]
    bounds = np.searchsorted(owner_half, np.arange(n_shards + 1))
    blocks: list[ShardBlock] = []
    for s in range(n_shards):
        start, end = int(bounds[s]), int(bounds[s + 1])
        own_positions = np.flatnonzero(owner_of_pos == s).astype(np.int64)
        local = np.searchsorted(own_positions, node_half[start:end])
        counts = np.bincount(local, minlength=len(own_positions))
        indptr = np.zeros(len(own_positions) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        blocks.append(
            ShardBlock(
                own_positions=own_positions,
                indptr=indptr,
                nbr_pos=np.ascontiguousarray(nbr_half[start:end]),
                pair_idx=np.ascontiguousarray(pair_half[start:end]),
            )
        )
    return ShardIndex(
        version=version,
        n_shards=n_shards,
        node_ids=node_ids,
        owner_of_pos=owner_of_pos,
        pair_lo_pos=lo_pos,
        pair_hi_pos=hi_pos,
        types=types,
        type_weights=type_weights,
        type_norm_weights=type_norm,
        type_last_update=type_last_update,
        shards=blocks,
    )


class ShardedBehaviorNetwork:
    """N hash-partitioned :class:`BehaviorNetwork` shards behind one facade.

    Duck-types the ``BehaviorNetwork`` surface the ingest pipeline and the
    servers use (``add_node``, ``add_weights``, ``expire_edges``,
    membership, counts, ``to_arrays``), so ``BNBuilder.run_window_job`` and
    ``BNServer`` run unchanged on top of it.  Mutations route by the owner
    of the pair's ``lo`` endpoint and bump **one** facade version per batch
    (the cross-shard version barrier); reads that need cross-shard order
    (neighbour lists, snapshots, sampling) go through the memoized
    :meth:`index`.
    """

    def __init__(self, n_shards: int, ttl: float = DEFAULT_EDGE_TTL) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.ttl = ttl
        self.shards = [BehaviorNetwork(ttl) for _ in range(n_shards)]
        self._version = 0
        self._next_seq = 0
        self._index: ShardIndex | None = None
        self._stats = {"batches": 0, "rows": 0, "cross_shard": 0}
        self._shard_rows = [0] * n_shards

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def owner_of(self, uid: int) -> int:
        """Owner shard of ``uid`` (stable hash routing)."""
        return _shard_of_int(uid, self.n_shards)

    def claim_seq(self, seq: int | None = None) -> int:
        """Claim the next global pair-creation sequence tag."""
        if seq is None:
            seq = self._next_seq
        self._next_seq = max(self._next_seq, seq + 1)
        return seq

    def route_weights(
        self,
        u: Sequence[int] | np.ndarray,
        v: Sequence[int] | np.ndarray,
        btypes: BehaviorType | Sequence[BehaviorType] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
        btype_table: Sequence[BehaviorType] | None = None,
    ) -> tuple[list[dict[str, Any] | None], int, int]:
        """Split one mutation batch into per-shard ``add_weights`` kwargs.

        Validates all-or-nothing up front (so no shard is mutated when a
        later row is bad), then masks every column by the owner of
        ``min(u, v)``.  Returns ``(per_shard_kwargs, cross_shard_rows,
        total_rows)``; entry ``s`` is ``None`` when shard ``s`` receives no
        rows.  ``cross_shard_rows`` counts rows whose two endpoints hash to
        different owners — the half-edges the publish-time exchange will
        mirror.  Exposed separately from :meth:`add_weights` so benchmarks
        can time each shard's apply on its own.
        """
        u_arr = np.asarray(u, dtype=np.int64)
        v_arr = np.asarray(v, dtype=np.int64)
        w_arr = np.asarray(weights, dtype=np.float64)
        n = len(u_arr)
        if not len(v_arr) == len(w_arr) == n:
            raise ValueError("add_weights columns must share one length")
        scalar_ts = np.ndim(timestamps) == 0
        ts_arr = None if scalar_ts else np.asarray(timestamps, dtype=np.float64)
        if ts_arr is not None and len(ts_arr) != n:
            raise ValueError("add_weights columns must share one length")
        single_type = isinstance(btypes, BehaviorType)
        if single_type:
            codes = None
            table: list[BehaviorType] | None = None
        elif btype_table is not None:
            codes = np.asarray(btypes, dtype=np.int64)
            table = list(btype_table)
            if len(codes) != n:
                raise ValueError("add_weights columns must share one length")
            if len(codes) and (
                int(codes.min()) < 0 or int(codes.max()) >= len(table)
            ):
                raise ValueError("add_weights type codes out of btype_table range")
        else:
            type_list = list(btypes)
            if len(type_list) != n:
                raise ValueError("add_weights columns must share one length")
            type_ids: dict[BehaviorType, int] = {}
            codes = np.fromiter(
                (type_ids.setdefault(t, len(type_ids)) for t in type_list),
                dtype=np.int64,
                count=n,
            )
            table = list(type_ids)
        if n == 0:
            return [None] * self.n_shards, 0, 0
        if np.any(w_arr <= 0):
            raise ValueError("edge weight contributions must be positive")
        if np.any(u_arr == v_arr):
            raise ValueError("self-loops are not part of BN")
        lo = np.minimum(u_arr, v_arr)
        hi = np.maximum(u_arr, v_arr)
        owner = shard_of(lo, self.n_shards)
        cross = int(np.count_nonzero(owner != shard_of(hi, self.n_shards)))
        routed: list[dict[str, Any] | None] = [None] * self.n_shards
        for s in range(self.n_shards):
            mask = owner == s
            if not mask.any():
                continue
            routed[s] = {
                "u": u_arr[mask],
                "v": v_arr[mask],
                "btypes": btypes if single_type else codes[mask],
                "weights": w_arr[mask],
                "timestamps": timestamps if scalar_ts else ts_arr[mask],
                "btype_table": None if single_type else table,
            }
        return routed, cross, n

    # ------------------------------------------------------------------
    # Mutation (BehaviorNetwork surface)
    # ------------------------------------------------------------------
    def add_weight(
        self,
        u: int,
        v: int,
        btype: BehaviorType,
        weight: float,
        timestamp: float,
        seq: int | None = None,
    ) -> None:
        """Scalar contribution, routed to the owner of ``min(u, v)``."""
        if u == v:
            raise ValueError("self-loops are not part of BN")
        lo, hi = (u, v) if u < v else (v, u)
        owner = self.owner_of(lo)
        self.shards[owner].add_weight(
            u, v, btype, weight, timestamp, seq=self.claim_seq(seq)
        )
        self._stats["rows"] += 1
        if owner != self.owner_of(hi):
            self._stats["cross_shard"] += 1
        self._shard_rows[owner] += 1
        self._version += 1

    def add_weights(
        self,
        u: Sequence[int] | np.ndarray,
        v: Sequence[int] | np.ndarray,
        btypes: BehaviorType | Sequence[BehaviorType] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
        btype_table: Sequence[BehaviorType] | None = None,
        seq: int | None = None,
    ) -> int:
        """Batched contributions with one cross-shard version barrier.

        Same contract as :meth:`BehaviorNetwork.add_weights` — per-record
        results are bit-for-bit identical because every pair's rows land on
        one shard as an order-preserving subsequence of the batch, and all
        shards stamp created pairs with the same global sequence tag.
        """
        routed, cross, n = self.route_weights(
            u, v, btypes, weights, timestamps, btype_table
        )
        if n == 0:
            return 0
        # The router tier runs the stateless preparation (canonicalize,
        # group, segment-fold, box keys) for every owner up front, so each
        # shard's apply is only the state-mutation walk.  In the
        # multi-process deployment this preparation pipelines with the
        # previous batch's shard applies — it stays off the shard workers'
        # critical path.
        grouped: list[tuple[int, WeightGroups, int]] = []
        for s, kwargs in enumerate(routed):
            if kwargs is None:
                continue
            groups = prepare_weight_groups(
                kwargs["u"],
                kwargs["v"],
                kwargs["btypes"],
                kwargs["weights"],
                kwargs["timestamps"],
                kwargs["btype_table"],
                expiry_width=self.shards[s]._expiry_width,
            )
            if groups is None:
                continue
            grouped.append((s, groups, len(kwargs["u"])))
        batch_seq = self.claim_seq(seq)
        for s, groups, shard_rows in grouped:
            self.shards[s].apply_weight_groups(groups, seq=batch_seq)
            self._shard_rows[s] += shard_rows
        self._stats["batches"] += 1
        self._stats["rows"] += n
        self._stats["cross_shard"] += cross
        self._version += 1
        return n

    def add_node(self, uid: int) -> None:
        """Register a node on its owner shard."""
        shard = self.shards[self.owner_of(uid)]
        if uid not in shard._adjacency:
            shard.add_node(uid)
            self._version += 1

    def expire_edges(self, now: float) -> int:
        """TTL sweep on every shard under one version barrier."""
        removed = sum(shard.expire_edges(now) for shard in self.shards)
        if removed:
            self._version += 1
        return removed

    # ------------------------------------------------------------------
    # Delta tracking (lambda speed layer) — forwarded to every shard
    # ------------------------------------------------------------------
    def track_deltas(self) -> None:
        """Enable (or reset) per-node touch counting on every shard."""
        for shard in self.shards:
            shard.track_deltas()

    def delta_tracking(self) -> bool:
        """Whether delta tracking is enabled (on every shard)."""
        return all(shard.delta_tracking() for shard in self.shards)

    def delta_touched(self) -> dict[int, int]:
        """Merged per-node touch counts across shards.

        A pair lives on exactly one shard (its lo-endpoint's owner), but a
        node can be an endpoint of pairs on several shards, so counts are
        summed per node.
        """
        merged: dict[int, int] = {}
        for shard in self.shards:
            for uid, count in shard.delta_touched().items():
                merged[uid] = merged.get(uid, 0) + count
        return merged

    def delta_size(self) -> int:
        """Total edge touches across all shards since tracking started."""
        return sum(shard.delta_size() for shard in self.shards)

    def drain_route_stats(self) -> dict[str, Any]:
        """Return and reset accumulated routing counters (BNServer drains
        these into the ``bn.shard.ingest.*`` metrics)."""
        stats = dict(self._stats)
        stats["shard_rows"] = tuple(self._shard_rows)
        self._stats = {"batches": 0, "rows": 0, "cross_shard": 0}
        self._shard_rows = [0] * self.n_shards
        return stats

    # ------------------------------------------------------------------
    # Queries (BehaviorNetwork surface)
    # ------------------------------------------------------------------
    def __contains__(self, uid: int) -> bool:
        return any(uid in shard._adjacency for shard in self.shards)

    def nodes(self) -> list[int]:
        """All registered node ids (sorted — cross-shard order is hash
        noise, so the facade canonicalizes)."""
        seen: set[int] = set()
        for shard in self.shards:
            seen.update(shard._adjacency)
        return sorted(seen)

    def num_nodes(self) -> int:
        """Distinct registered users across all shards."""
        seen: set[int] = set()
        for shard in self.shards:
            seen.update(shard._adjacency)
        return len(seen)

    def num_edges(self) -> int:
        """Live typed edges (pairs stored once, so shard sums are exact)."""
        return sum(shard.num_edges() for shard in self.shards)

    def num_edges_scan(self) -> int:
        """Full-scan edge count (diagnostic twin of :meth:`num_edges`)."""
        return sum(shard.num_edges_scan() for shard in self.shards)

    def num_pairs(self) -> int:
        """Distinct user pairs with at least one live edge."""
        return sum(shard.num_pairs() for shard in self.shards)

    def edge_types(self) -> set[BehaviorType]:
        """Union of behavior types present on any shard."""
        types: set[BehaviorType] = set()
        for shard in self.shards:
            types.update(shard.edge_types())
        return types

    def edge(self, u: int, v: int) -> dict[BehaviorType, EdgeRecord]:
        """Per-type records of pair ``(u, v)`` from its owner shard."""
        return self.shards[self.owner_of(min(u, v))].edge(u, v)

    def weight(self, u: int, v: int, btype: BehaviorType) -> float:
        """Accumulated weight of ``(u, v)`` under ``btype`` (0.0 if absent)."""
        return self.shards[self.owner_of(min(u, v))].weight(u, v, btype)

    def total_weight(self, u: int, v: int) -> float:
        """Sum of ``(u, v)``'s weights over every behavior type."""
        return self.shards[self.owner_of(min(u, v))].total_weight(u, v)

    def degree(self, uid: int, btype: BehaviorType | None = None) -> int:
        """Neighbour count of ``uid`` (optionally restricted to one type)."""
        # A node's pairs are spread across shards (each stored once), so
        # the per-shard degrees are disjoint and sum exactly.
        return sum(shard.degree(uid, btype) for shard in self.shards)

    def weighted_degree(self, uid: int, btype: BehaviorType | None = None) -> float:
        """Sum of edge weights incident to ``uid``, bit-exact vs unsharded.

        The addend multiset is identical either way (pairs are stored
        once), but float addition is fold-order sensitive — so instead of
        adding per-shard subtotals, replay the unsharded walk: neighbours
        in global pair-creation order, each pair's records in insertion
        order.
        """
        total = 0.0
        for v in self.neighbors(uid):
            lo = uid if uid < v else v
            records = self.shards[self.owner_of(lo)].edge(uid, v)
            if btype is None:
                total += sum(rec.weight for rec in records.values())
            elif btype in records:
                total += records[btype].weight
        return total

    def neighbors(self, uid: int, btype: BehaviorType | None = None) -> list[int]:
        """Creation-order neighbours, merged across shards by pair seq tag
        (bit-exact ``BehaviorNetwork.neighbors`` parity without building the
        full index)."""
        tagged: list[tuple[int, int, int, int]] = []
        for shard in self.shards:
            for v in shard.neighbors(uid, btype):
                key = (uid, v) if uid < v else (v, uid)
                tagged.append((shard._pair_seq[key], key[0], key[1], v))
        tagged.sort()
        return [v for _, _, _, v in tagged]

    def iter_edges(
        self, btype: BehaviorType | None = None
    ) -> Iterator[tuple[int, int, BehaviorType, EdgeRecord]]:
        """Yield ``(u, v, type, record)`` in global pair-creation order."""
        pairs: list[tuple[int, int, int, dict[BehaviorType, EdgeRecord]]] = []
        for shard in self.shards:
            for (a, b), records in shard._edges.items():
                pairs.append((shard._pair_seq[(a, b)], a, b, records))
        pairs.sort(key=lambda item: item[:3])
        for _, a, b, records in pairs:
            for t, record in records.items():
                if btype is None or t == btype:
                    yield a, b, t, record

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Facade mutation counter (one bump per cross-shard barrier)."""
        return self._version

    def index(self) -> ShardIndex:
        """The merged read index, memoized against :attr:`version`."""
        cached = self._index
        if cached is None or cached.version != self._version:
            cached = build_shard_index(self.shards, self.n_shards, self._version)
            self._index = cached
        return cached

    def to_arrays(self) -> BNSnapshot:
        """Merged snapshot (bit-exact vs the unsharded ``to_arrays``)."""
        return self.index().snapshot()

    def khop_neighborhood(
        self, uid: int, hops: int, allowed: set[int] | None = None
    ) -> dict[int, int]:
        """Node -> hop distance map (``BehaviorNetwork`` parity incl. BFS
        discovery order, via creation-order neighbour lists)."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        distances = {uid: 0}
        frontier = [uid]
        for depth in range(1, hops + 1):
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor in distances:
                        continue
                    if allowed is not None and neighbor not in allowed:
                        continue
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    # ------------------------------------------------------------------
    # Construction / rebalancing
    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls, bn: BehaviorNetwork, n_shards: int
    ) -> "ShardedBehaviorNetwork":
        """Partition an existing network, preserving pair-creation order.

        Each pair is replayed onto its owner shard tagged with its rank in
        the source's ``_edges`` insertion order, so the sharded index (and
        every sample taken from it) is bit-exact against the source.
        """
        sharded = cls(n_shards, ttl=bn.ttl)
        for uid in bn._adjacency:
            shard = sharded.shards[sharded.owner_of(uid)]
            if uid not in shard._adjacency:
                shard.add_node(uid)
        for rank, ((a, b), records) in enumerate(bn._edges.items()):
            shard = sharded.shards[sharded.owner_of(a)]
            for btype, record in records.items():
                shard.add_weight(
                    a, b, btype, record.weight, record.last_update, seq=rank
                )
        sharded._next_seq = len(bn._edges)
        sharded._version += 1
        return sharded

    def reshard(self, n_shards: int) -> "ShardedBehaviorNetwork":
        """Rebuild under a new shard count, preserving global pair order."""
        out = ShardedBehaviorNetwork(n_shards, ttl=self.ttl)
        for shard in self.shards:
            for uid in shard._adjacency:
                dst = out.shards[out.owner_of(uid)]
                if uid not in dst._adjacency:
                    dst.add_node(uid)
        pairs: list[tuple[int, int, int, dict[BehaviorType, EdgeRecord]]] = []
        for shard in self.shards:
            for (a, b), records in shard._edges.items():
                pairs.append((shard._pair_seq[(a, b)], a, b, records))
        pairs.sort(key=lambda item: item[:3])
        for rank, (_, a, b, records) in enumerate(pairs):
            dst = out.shards[out.owner_of(a)]
            for btype, record in records.items():
                dst.add_weight(
                    a, b, btype, record.weight, record.last_update, seq=rank
                )
        out._next_seq = len(pairs)
        out._version += 1
        return out
