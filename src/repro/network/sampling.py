"""Computation-subgraph sampling for inductive inference (Section III-A).

Turbo supports real-time detection by feeding HAG a *computation subgraph*
``G_v`` — the k-hop neighbourhood that contains everything the GNN needs to
compute the target's representation — instead of the entire BN (the
GraphSAGE-style inductive setting).  The BN server samples ``G_v`` when a
detection request arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..datagen.behavior_types import BehaviorType
from .adjacency import merged_adjacency, typed_adjacency
from .bn import BehaviorNetwork

__all__ = ["ComputationSubgraph", "computation_subgraph"]


@dataclass(slots=True)
class ComputationSubgraph:
    """A sampled k-hop neighbourhood around ``target``.

    ``nodes[0]`` is always the target; ``adjacency`` holds per-type
    normalized CSR matrices indexed consistently with ``nodes``.
    """

    target: int
    nodes: list[int]
    adjacency: dict[BehaviorType, sp.csr_matrix] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def merged(self) -> sp.csr_matrix:
        """Sum the typed adjacencies into one homogeneous matrix.

        Built from the concatenated COO triples of every type in one
        construction (duplicate coordinates sum on conversion), instead of
        accumulating ``total + matrix`` per type.
        """
        n = len(self.nodes)
        if not self.adjacency:
            return sp.csr_matrix((n, n))
        coos = [matrix.tocoo() for matrix in self.adjacency.values()]
        return sp.csr_matrix(
            (
                np.concatenate([c.data for c in coos]),
                (
                    np.concatenate([c.row for c in coos]),
                    np.concatenate([c.col for c in coos]),
                ),
            ),
            shape=(n, n),
        )


def computation_subgraph(
    bn: BehaviorNetwork,
    target: int,
    hops: int = 2,
    fanout: int | None = 25,
    allowed: set[int] | None = None,
    edge_types: Sequence[BehaviorType] | None = None,
    rng: np.random.Generator | None = None,
) -> ComputationSubgraph:
    """Sample the computation subgraph ``G_v`` for ``target``.

    Parameters
    ----------
    bn:
        The behavior network to sample from.
    target:
        The user the detection request targets; included even if isolated.
    hops:
        Neighbourhood radius ``k`` (the paper uses 2-layer GNNs).
    fanout:
        Per-node, per-type neighbour cap.  ``None`` keeps every neighbour;
        otherwise the top-``fanout`` by edge weight are kept (or sampled
        proportionally to weight when ``rng`` is supplied), which bounds the
        subgraph size in the presence of public-resource cliques.
    allowed:
        If given, restrict expansion to these nodes (the paper's ``G_v`` only
        contains users having transactions).
    edge_types:
        Edge types to traverse and export (defaults to all types in BN).
    rng:
        Optional generator enabling weighted sampling instead of top-k.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    types = tuple(edge_types) if edge_types is not None else tuple(sorted(bn.edge_types()))

    selected: list[int] = [target]
    seen: set[int] = {target}
    frontier = [target]
    for _ in range(hops):
        next_frontier: list[int] = []
        for node in frontier:
            for btype in types:
                neighbors = _select_neighbors(bn, node, btype, fanout, rng)
                for neighbor in neighbors:
                    if neighbor in seen:
                        continue
                    if allowed is not None and neighbor not in allowed:
                        continue
                    seen.add(neighbor)
                    selected.append(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier

    adjacency = typed_adjacency(bn, selected, types, normalize=True)
    return ComputationSubgraph(target=target, nodes=selected, adjacency=adjacency)


def _select_neighbors(
    bn: BehaviorNetwork,
    node: int,
    btype: BehaviorType,
    fanout: int | None,
    rng: np.random.Generator | None,
) -> list[int]:
    neighbors = bn.neighbors(node, btype)
    if fanout is None or len(neighbors) <= fanout:
        return neighbors
    weights = np.asarray([bn.weight(node, v, btype) for v in neighbors])
    if rng is None:
        order = np.argsort(-weights, kind="stable")[:fanout]
        return [neighbors[i] for i in order]
    support = np.flatnonzero(weights > 0)
    if len(support) < fanout:
        # Too few neighbours carry probability mass for a ``replace=False``
        # draw: keep the whole support and top up deterministically with the
        # first zero-weight neighbours in index order.
        zero = np.flatnonzero(weights <= 0)[: fanout - len(support)]
        chosen = np.concatenate([support, zero])
    else:
        probabilities = weights / weights.sum()
        chosen = rng.choice(len(neighbors), size=fanout, replace=False, p=probabilities)
    return [neighbors[i] for i in chosen]
