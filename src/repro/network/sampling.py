"""Computation-subgraph sampling for inductive inference (Section III-A).

Turbo supports real-time detection by feeding HAG a *computation subgraph*
``G_v`` — the k-hop neighbourhood that contains everything the GNN needs to
compute the target's representation — instead of the entire BN (the
GraphSAGE-style inductive setting).  The BN server samples ``G_v`` when a
detection request arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..datagen.behavior_types import BehaviorType
from .adjacency import _output_index, _typed_entries, merged_adjacency, typed_adjacency
from .bn import BehaviorNetwork

__all__ = [
    "ComputationSubgraph",
    "computation_subgraph",
    "computation_subgraphs_batch",
    "BatchSampleStats",
]


@dataclass(slots=True)
class ComputationSubgraph:
    """A sampled k-hop neighbourhood around ``target``.

    ``nodes[0]`` is always the target; ``adjacency`` holds per-type
    normalized CSR matrices indexed consistently with ``nodes``.
    """

    target: int
    nodes: list[int]
    adjacency: dict[BehaviorType, sp.csr_matrix] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def merged(self) -> sp.csr_matrix:
        """Sum the typed adjacencies into one homogeneous matrix.

        Built from the concatenated COO triples of every type in one
        construction (duplicate coordinates sum on conversion), instead of
        accumulating ``total + matrix`` per type.
        """
        n = len(self.nodes)
        if not self.adjacency:
            return sp.csr_matrix((n, n))
        coos = [matrix.tocoo() for matrix in self.adjacency.values()]
        return sp.csr_matrix(
            (
                np.concatenate([c.data for c in coos]),
                (
                    np.concatenate([c.row for c in coos]),
                    np.concatenate([c.col for c in coos]),
                ),
            ),
            shape=(n, n),
        )


def computation_subgraph(
    bn: BehaviorNetwork,
    target: int,
    hops: int = 2,
    fanout: int | None = 25,
    allowed: set[int] | None = None,
    edge_types: Sequence[BehaviorType] | None = None,
    rng: np.random.Generator | None = None,
) -> ComputationSubgraph:
    """Sample the computation subgraph ``G_v`` for ``target``.

    Parameters
    ----------
    bn:
        The behavior network to sample from.
    target:
        The user the detection request targets; included even if isolated.
    hops:
        Neighbourhood radius ``k`` (the paper uses 2-layer GNNs).
    fanout:
        Per-node, per-type neighbour cap.  ``None`` keeps every neighbour;
        otherwise the top-``fanout`` by edge weight are kept (or sampled
        proportionally to weight when ``rng`` is supplied), which bounds the
        subgraph size in the presence of public-resource cliques.
    allowed:
        If given, restrict expansion to these nodes (the paper's ``G_v`` only
        contains users having transactions).
    edge_types:
        Edge types to traverse and export (defaults to all types in BN).
    rng:
        Optional generator enabling weighted sampling instead of top-k.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    types = tuple(edge_types) if edge_types is not None else tuple(sorted(bn.edge_types()))

    selected: list[int] = [target]
    seen: set[int] = {target}
    frontier = [target]
    for _ in range(hops):
        next_frontier: list[int] = []
        for node in frontier:
            for btype in types:
                neighbors = _select_neighbors(bn, node, btype, fanout, rng)
                for neighbor in neighbors:
                    if neighbor in seen:
                        continue
                    if allowed is not None and neighbor not in allowed:
                        continue
                    seen.add(neighbor)
                    selected.append(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier

    adjacency = typed_adjacency(bn, selected, types, normalize=True)
    return ComputationSubgraph(target=target, nodes=selected, adjacency=adjacency)


@dataclass(frozen=True, slots=True)
class BatchSampleStats:
    """Coalescing accounting for one :func:`computation_subgraphs_batch` call."""

    requests: int
    sampled_nodes: int  # sum of per-request subgraph sizes
    unique_nodes: int  # size of the union node set
    expansions: int  # (node, type) frontier expansions requested
    unique_expansions: int  # distinct (node, type) pairs actually expanded
    #: Request indices served from an incomplete frontier because one or
    #: more shards were down (always empty on the single-network path).
    partial: tuple[int, ...] = ()

    @property
    def coalescing(self) -> float:
        """Sampled-to-unique node ratio — >1 means frontiers overlapped."""
        return self.sampled_nodes / max(1, self.unique_nodes)


def computation_subgraphs_batch(
    bn: BehaviorNetwork,
    targets: Sequence[int],
    hops: int = 2,
    fanout: int | None = 25,
    allowed: set[int] | None = None,
    edge_types: Sequence[BehaviorType] | None = None,
    selection_cache: dict[tuple[int, BehaviorType], list[int]] | None = None,
) -> tuple[list[ComputationSubgraph], BatchSampleStats]:
    """Sample every target's ``G_v`` with the union frontier coalesced.

    Returns subgraphs that are bit-for-bit what per-target
    :func:`computation_subgraph` calls produce — same node order, same CSR
    bits — but shares work across requests two ways:

    * neighbour selection is memoized per ``(node, type)``: deterministic
      top-``fanout`` selection depends only on the node, so a hub expanded
      by many requests is ranked once and each request replays the cached
      list through its own BFS bookkeeping;
    * adjacency extraction masks the snapshot's edge arrays once per type
      against the *union* node set (the O(E) part), then slices each
      request's entries out of the union block with O(E_union) index maps.

    Weighted sampling (the scalar path's ``rng``) is intentionally not
    offered: random draws are per-request by construction and would defeat
    the memoization; the serving path uses deterministic top-k.

    ``selection_cache`` lets a caller serving many batches against one
    pinned BN version carry the per-``(node, type)`` rankings across calls
    (the BN server does this keyed on ``bn.version``); entries are only
    valid for the graph state and ``fanout`` they were ranked under, so the
    owner must drop the dict when either changes.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    types = tuple(edge_types) if edge_types is not None else tuple(sorted(bn.edge_types()))

    if selection_cache is None:
        selection_cache = {}
    expansions = 0
    touched: set[tuple[int, BehaviorType]] = set()
    node_lists: list[list[int]] = []
    for target in targets:
        selected: list[int] = [target]
        seen: set[int] = {target}
        frontier = [target]
        for _ in range(hops):
            next_frontier: list[int] = []
            for node in frontier:
                for btype in types:
                    expansions += 1
                    key = (node, btype)
                    touched.add(key)
                    neighbors = selection_cache.get(key)
                    if neighbors is None:
                        neighbors = _select_neighbors(bn, node, btype, fanout, None)
                        selection_cache[key] = neighbors
                    for neighbor in neighbors:
                        if neighbor in seen:
                            continue
                        if allowed is not None and neighbor not in allowed:
                            continue
                        seen.add(neighbor)
                        selected.append(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        node_lists.append(selected)

    union_nodes: list[int] = []
    union_index: dict[int, int] = {}
    for nodes in node_lists:
        for uid in nodes:
            if uid not in union_index:
                union_index[uid] = len(union_nodes)
                union_nodes.append(uid)
    union_lookup = _output_index(bn, union_nodes)
    # Entries are indexed into the union node list and keep snapshot edge
    # order; a per-request membership mask therefore reproduces exactly the
    # entry sequence the scalar typed_adjacency builds its CSR from.
    typed_entries = {
        btype: _typed_entries(bn, union_lookup, btype, normalize=True)
        for btype in types
    }

    subgraphs: list[ComputationSubgraph] = []
    request_of_union = np.full(len(union_nodes), -1, dtype=np.int64)
    for target, nodes in zip(targets, node_lists):
        n = len(nodes)
        positions = np.asarray([union_index[uid] for uid in nodes], dtype=np.int64)
        request_of_union[positions] = np.arange(n, dtype=np.int64)
        adjacency: dict[BehaviorType, sp.csr_matrix] = {}
        for btype in types:
            iu, iv, weights = typed_entries[btype]
            riu = request_of_union[iu]
            riv = request_of_union[iv]
            keep = (riu >= 0) & (riv >= 0)
            iu_kept, iv_kept, w_kept = riu[keep], riv[keep], weights[keep]
            adjacency[btype] = sp.csr_matrix(
                (
                    np.concatenate([w_kept, w_kept]),
                    (
                        np.concatenate([iu_kept, iv_kept]),
                        np.concatenate([iv_kept, iu_kept]),
                    ),
                ),
                shape=(n, n),
            )
        request_of_union[positions] = -1
        subgraphs.append(
            ComputationSubgraph(target=target, nodes=nodes, adjacency=adjacency)
        )

    stats = BatchSampleStats(
        requests=len(node_lists),
        sampled_nodes=sum(len(nodes) for nodes in node_lists),
        unique_nodes=len(union_nodes),
        expansions=expansions,
        unique_expansions=len(touched),
    )
    return subgraphs, stats


def _select_neighbors(
    bn: BehaviorNetwork,
    node: int,
    btype: BehaviorType,
    fanout: int | None,
    rng: np.random.Generator | None,
) -> list[int]:
    neighbors = bn.neighbors(node, btype)
    if fanout is None or len(neighbors) <= fanout:
        return neighbors
    weights = np.asarray([bn.weight(node, v, btype) for v in neighbors])
    if rng is None:
        order = np.argsort(-weights, kind="stable")[:fanout]
        return [neighbors[i] for i in order]
    support = np.flatnonzero(weights > 0)
    if len(support) < fanout:
        # Too few neighbours carry probability mass for a ``replace=False``
        # draw: keep the whole support and top up deterministically with the
        # first zero-weight neighbours in index order.
        zero = np.flatnonzero(weights <= 0)[: fanout - len(support)]
        chosen = np.concatenate([support, zero])
    else:
        probabilities = weights / weights.sum()
        chosen = rng.choice(len(neighbors), size=fanout, replace=False, p=probabilities)
    return [neighbors[i] for i in chosen]
