"""Training loop for node-classifying GNNs (HAG and the GNN baselines).

Implements the paper's optimization protocol — Adam at learning rate 5e-4 —
with class-imbalance-aware BCE, optional mini-batching over the training
nodes, early stopping on validation AUC and best-state restoration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..eval.metrics import roc_auc_score
from ..nn import Tensor
from ..obs.profiling import NullProfiler, TrainProfiler

__all__ = ["TrainConfig", "TrainResult", "train_node_classifier"]


@dataclass(slots=True)
class TrainConfig:
    """Hyperparameters of the training loop (paper defaults)."""

    epochs: int = 150
    lr: float = 5e-4
    weight_decay: float = 0.0
    #: ``None`` trains full-batch (one step per epoch); the paper's 256 is
    #: also supported.
    batch_size: int | None = None
    #: positive-class weight in the BCE loss; ``None`` -> n_neg / n_pos.
    pos_weight: float | None = None
    patience: int = 25
    min_epochs: int = 20
    seed: int = 0
    verbose: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent hyperparameters."""
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1 or None")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    def streams(self) -> dict[str, np.random.Generator]:
        """Named, independent rng streams, all derived from ``seed``.

        ``SeedSequence.spawn`` guarantees the streams are statistically
        independent, and keying them by *name* pins which consumer owns
        which stream: ``shuffle`` (epoch batch order), ``sample`` (weighted
        neighbour draws), ``init`` (weight initialization, for callers that
        build the model from the config), ``workers`` (per-fork derived
        seeds).  One seed therefore drives every source of randomness in a
        training run, and consumers never share a stream — which is what
        makes same-seed runs bit-identical regardless of how many worker
        processes participate (workers get spawned seeds; they never
        consume from the parent's streams).
        """
        children = np.random.SeedSequence(self.seed).spawn(4)
        names = ("shuffle", "sample", "init", "workers")
        return {
            name: np.random.default_rng(child)
            for name, child in zip(names, children)
        }


@dataclass(slots=True)
class TrainResult:
    """Training history and the selected model state."""

    train_losses: list[float] = field(default_factory=list)
    val_aucs: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_auc: float = float("nan")


def train_node_classifier(
    model: nn.Module,
    forward: Callable[[Tensor], Tensor],
    features: np.ndarray,
    labels: np.ndarray,
    train_idx: np.ndarray,
    val_idx: np.ndarray | None = None,
    config: TrainConfig | None = None,
    profiler: TrainProfiler | None = None,
) -> TrainResult:
    """Train ``model`` whose ``forward(x)`` returns per-node logits.

    The graph structure is closed over by ``forward`` (each model family
    pairs features with its own aggregators), which keeps this loop agnostic
    to homogeneous/heterogeneous graph inputs.

    Parameters
    ----------
    model:
        Module owning the parameters (for optimizer and state snapshots).
    forward:
        ``x -> logits`` over all nodes; the loss is masked to ``train_idx``.
    features, labels:
        Full node feature matrix and binary labels.
    train_idx, val_idx:
        Integer node indices.  Early stopping monitors AUC on ``val_idx``
        (falls back to train loss when absent).
    profiler:
        Optional :class:`~repro.obs.profiling.TrainProfiler` recording
        per-epoch wall time and ``forward``/``backward``/``step``/
        ``validation`` stage timings.
    """
    config = config or TrainConfig()
    config.validate()
    profiler = profiler if profiler is not None else NullProfiler()
    rng = np.random.default_rng(config.seed)
    labels = np.asarray(labels, dtype=np.float64)
    train_idx = np.asarray(train_idx, dtype=np.int64)

    train_labels = labels[train_idx]
    n_pos = float(train_labels.sum())
    n_neg = float(len(train_labels) - n_pos)
    if config.pos_weight is not None:
        pos_weight = config.pos_weight
    elif n_pos > 0:
        pos_weight = max(1.0, n_neg / n_pos)
    else:
        pos_weight = 1.0

    optimizer = nn.Adam(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    x = Tensor(features)
    result = TrainResult()
    best_state: dict[str, np.ndarray] | None = None
    best_metric = -np.inf
    stale = 0

    for epoch in range(config.epochs):
        with profiler.epoch(epoch):
            model.train()
            if config.batch_size is None:
                batches = [train_idx]
            else:
                shuffled = rng.permutation(train_idx)
                batches = [
                    shuffled[i : i + config.batch_size]
                    for i in range(0, len(shuffled), config.batch_size)
                ]
            epoch_loss = 0.0
            for batch in batches:
                optimizer.zero_grad()
                with profiler.stage("forward"):
                    logits = forward(x)
                    loss = nn.bce_with_logits(
                        logits.index_select(batch), labels[batch], pos_weight=pos_weight
                    )
                with profiler.stage("backward"):
                    loss.backward()
                with profiler.stage("step"):
                    optimizer.step()
                epoch_loss += loss.item() * len(batch)
                profiler.count_batch(len(batch))
            epoch_loss /= len(train_idx)
            result.train_losses.append(epoch_loss)
            profiler.record_loss(epoch_loss)

            if val_idx is not None and len(val_idx) > 0:
                with profiler.stage("validation"):
                    model.eval()
                    with nn.no_grad():
                        val_logits = forward(x).numpy()[val_idx]
                    val_labels = labels[val_idx]
                    n_val_pos = int(val_labels.sum())
                    if 0 < n_val_pos < len(val_labels):
                        result.val_aucs.append(roc_auc_score(val_labels, val_logits))
                    # Early-stop on validation AUC when the validation set
                    # carries enough positives for the AUC to be stable; tiny
                    # validation sets saturate AUC within an epoch or two, so
                    # fall back to the (continuous) validation loss there.
                    if n_val_pos >= 20 and len(val_labels) - n_val_pos >= 20:
                        metric = result.val_aucs[-1]
                    else:
                        metric = -_weighted_bce(val_logits, val_labels, pos_weight)
            else:
                metric = -epoch_loss

            if config.verbose:
                print(f"epoch {epoch:3d}  loss {epoch_loss:.4f}  metric {metric:.4f}")

        if metric > best_metric + 1e-6:
            best_metric = metric
            result.best_epoch = epoch
            best_state = model.state_dict()
            stale = 0
        else:
            stale += 1
            if epoch + 1 >= config.min_epochs and stale >= config.patience:
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    if result.val_aucs and result.best_epoch < len(result.val_aucs):
        result.best_val_auc = result.val_aucs[result.best_epoch]
    model.eval()
    return result


def _weighted_bce(logits: np.ndarray, labels: np.ndarray, pos_weight: float) -> float:
    """Numerically stable weighted BCE on raw numpy arrays."""
    per_example = np.maximum(logits, 0.0) - logits * labels + np.log1p(
        np.exp(-np.abs(logits))
    )
    weights = np.where(labels > 0.5, pos_weight, 1.0)
    return float((per_example * weights).sum() / weights.sum())
