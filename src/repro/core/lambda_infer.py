"""Lambda-architecture batch layer: checkpointable HAG aggregation state.

Turbo's paper serves every request by sampling a fresh k-hop subgraph and
running full HAG inference.  *BRIGHT* and *GNNs in Real-Time Fraud Detection
with Lambda Architecture* (PAPERS.md) split the same workload into a **batch
layer** that periodically precomputes per-node aggregation state over the
full BN, and a **speed layer** that answers requests from that state plus
only the edges ingested since the last batch pass.

This module is the batch layer's core: storage- and serving-agnostic.

* :class:`HAGState` — the versioned, serializable per-node state one batch
  pass produces: exact replayed scores, the feature provenance that gates
  cache hits (which transaction/time each score was computed for), the
  sampled-subgraph membership CSR that prices staleness, and every SAO
  tower's layer-``k`` hidden states from a full-graph pass
  (:meth:`repro.core.hag.HAG.layer_states`).  Round-trips losslessly
  through a flat ``dict[str, np.ndarray]`` (:meth:`HAGState.to_arrays` /
  :meth:`HAGState.from_arrays`), which is exactly what
  :class:`~repro.system.storage.LocalDatabase` checkpoints and
  :class:`~repro.network.shm.SharedSnapshotStore` publishes.

* :func:`materialize` — the full-graph batch pass.  Scores are an
  **all-targets replay** of the exact serving path: the union-frontier
  sampler (:func:`~repro.network.sampling.computation_subgraphs_batch`)
  over every target, then the packed per-request-block forward
  (:meth:`~repro.core.hag.HAG.predict_subgraphs`).  Both are pinned
  bit-for-bit equal to the scalar path, so a cached score is *bit-exact*
  with what the fresh sampled path would compute — a full-graph embedding
  cache could not promise that, because the sampled path's aggregation is
  row-normalized within each target's own fanout-truncated subgraph.

The speed layer that serves from this state lives in
:mod:`repro.system.lambda_layer`; staleness accounting rides on
:meth:`repro.network.bn.BehaviorNetwork.track_deltas`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

import scipy.sparse as sp

from .. import nn
from ..nn import Tensor
from ..nn.sparse import csr_gather_rows
from ..network.adjacency import typed_adjacency
from ..network.sampled_graph import SampledGraph, build_sampled_graph
from ..network.sampling import (
    BatchSampleStats,
    ComputationSubgraph,
    computation_subgraphs_batch,
)
from .hag import HAG, prepare_aggregators
from .sao import neighbor_mean_matrix

__all__ = [
    "HAGState",
    "MaterializeStats",
    "SliceResult",
    "materialize",
    "materialize_fullgraph",
    "rematerialize",
    "score_slice",
]

#: ``meta`` array layout of a serialized state (see :meth:`HAGState.to_arrays`).
_META_LEN = 3
#: Prefix separating layer-state arrays from the fixed per-node columns.
_LAYER_PREFIX = "state:"


@dataclass(slots=True)
class HAGState:
    """Versioned per-node aggregation state of one lambda batch pass.

    Keyed on ``bn_version`` — the facade version of the BN the pass ran
    against; a served score is only meaningful relative to that graph
    state plus whatever delta the speed layer accounts on top.

    Per-node columns (aligned with the sorted ``node_ids``):

    * ``scores`` — the exact probability the fresh sampled path computes
      for the node's latest application at its audit time;
    * ``txn_ids`` / ``nows`` — the transaction and as-of time each score
      was computed for.  A request is only a cache hit when both match:
      the target feature row depends on them, so a newer transaction must
      fall through to the fresh path;
    * ``subgraph_indptr`` / ``subgraph_nodes`` — CSR over each target's
      sampled subgraph node set.  Staleness of a cached score is the
      number of delta edge touches that landed inside this set — a
      conservative superset of what could have changed the score, and
      exactly zero when no edges arrived.

    ``layers`` holds the full-graph pass artifacts: every SAO tower's
    layer-``k`` hidden state and the fused (CFO) embedding, keyed
    ``tower{t}.layer{k}`` / ``fused``, one row per ``node_ids`` entry.
    """

    bn_version: int
    hops: int
    fanout: int | None
    node_ids: np.ndarray
    scores: np.ndarray
    txn_ids: np.ndarray
    nows: np.ndarray
    subgraph_indptr: np.ndarray
    subgraph_nodes: np.ndarray
    layers: dict[str, np.ndarray] = field(default_factory=dict)
    _positions: dict[int, int] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        if not len(self.scores) == len(self.txn_ids) == len(self.nows) == n:
            raise ValueError("per-node columns must share one length")
        if len(self.subgraph_indptr) != n + 1:
            raise ValueError("subgraph_indptr must have num_nodes + 1 entries")
        if n and np.any(np.diff(self.node_ids) <= 0):
            raise ValueError("node_ids must be strictly increasing")

    @property
    def num_nodes(self) -> int:
        """Targets covered by this state."""
        return len(self.node_ids)

    def position_of(self, uid: int) -> int | None:
        """Row of ``uid`` in the per-node columns (``None`` if uncovered)."""
        positions = self._positions
        if positions is None:
            positions = {int(u): i for i, u in enumerate(self.node_ids)}
            self._positions = positions
        return positions.get(int(uid))

    def subgraph_of(self, position: int) -> np.ndarray:
        """Node ids of the sampled subgraph behind ``scores[position]``."""
        lo = int(self.subgraph_indptr[position])
        hi = int(self.subgraph_indptr[position + 1])
        return self.subgraph_nodes[lo:hi]

    def lookup(self, uid: int, txn_id: int, now: float) -> tuple[float, int] | None:
        """Cached score for ``(uid, txn_id, now)``; ``None`` unless exact.

        Eligibility is exact by construction: the cached score was computed
        from the feature row of ``txn_ids[row]`` observed at ``nows[row]``,
        so any other transaction or as-of time must take the fresh path.
        """
        position = self.position_of(uid)
        if position is None:
            return None
        if int(self.txn_ids[position]) != int(txn_id):
            return None
        if float(self.nows[position]) != float(now):
            return None
        return float(self.scores[position]), position

    def staleness_of(self, position: int, touched: Mapping[int, int]) -> int:
        """Delta edge touches inside the target's cached subgraph node set.

        ``touched`` is :meth:`~repro.network.bn.BehaviorNetwork.delta_touched`
        (per-node counts since the batch pass).  Zero iff nothing the cached
        score could have seen changed — the bit-exactness guarantee.
        """
        if not touched:
            return 0
        return sum(
            touched.get(int(node), 0) for node in self.subgraph_of(position)
        )

    # ------------------------------------------------------------------
    # Serialization (storage checkpoints + shared-memory publication)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten to named numpy arrays (lossless; see :meth:`from_arrays`).

        The payload shape is what both backends want: a
        :class:`~repro.system.storage.LocalDatabase` ``put`` checkpoints
        the dict as one value, and a
        :class:`~repro.network.shm.SharedSnapshotStore` publishes each
        array as one zero-copy shared-memory region.
        """
        arrays = {
            "meta": np.asarray(
                [
                    self.bn_version,
                    self.hops,
                    -1 if self.fanout is None else self.fanout,
                ],
                dtype=np.int64,
            ),
            "node_ids": np.asarray(self.node_ids, dtype=np.int64),
            "scores": np.asarray(self.scores, dtype=np.float64),
            "txn_ids": np.asarray(self.txn_ids, dtype=np.int64),
            "nows": np.asarray(self.nows, dtype=np.float64),
            "subgraph_indptr": np.asarray(self.subgraph_indptr, dtype=np.int64),
            "subgraph_nodes": np.asarray(self.subgraph_nodes, dtype=np.int64),
        }
        for name, value in self.layers.items():
            arrays[_LAYER_PREFIX + name] = np.asarray(value)
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "HAGState":
        """Rebuild a state from :meth:`to_arrays` output (or a shm view)."""
        meta = np.asarray(arrays["meta"], dtype=np.int64)
        if len(meta) != _META_LEN:
            raise ValueError("malformed HAGState meta array")
        fanout = int(meta[2])
        return cls(
            bn_version=int(meta[0]),
            hops=int(meta[1]),
            fanout=None if fanout < 0 else fanout,
            node_ids=np.asarray(arrays["node_ids"], dtype=np.int64),
            scores=np.asarray(arrays["scores"], dtype=np.float64),
            txn_ids=np.asarray(arrays["txn_ids"], dtype=np.int64),
            nows=np.asarray(arrays["nows"], dtype=np.float64),
            subgraph_indptr=np.asarray(arrays["subgraph_indptr"], dtype=np.int64),
            subgraph_nodes=np.asarray(arrays["subgraph_nodes"], dtype=np.int64),
            layers={
                name[len(_LAYER_PREFIX):]: np.asarray(value)
                for name, value in arrays.items()
                if name.startswith(_LAYER_PREFIX)
            },
        )


def materialize(
    model: HAG,
    bn,
    targets: Sequence[int],
    txn_ids: Sequence[int],
    nows: Sequence[float],
    feature_fn: Callable[[int, Sequence[int]], np.ndarray],
    *,
    hops: int,
    fanout: int | None,
    edge_type_order: Sequence,
    allowed: set[int] | None = None,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
    selection_cache: dict | None = None,
    chunk: int = 256,
    layer_features: np.ndarray | None = None,
) -> tuple[HAGState, BatchSampleStats]:
    """One full-graph batch pass; returns ``(state, sample_stats)``.

    ``targets`` / ``txn_ids`` / ``nows`` describe every node to precompute
    (they are sorted together by node id).  ``feature_fn(k, nodes)``
    returns the raw feature matrix for sorted-target ``k``'s subgraph
    ``nodes`` — exactly what the feature module would assemble for a live
    request on that transaction at that time; ``transform`` is the serving
    scaler (applied here so the replay matches the prediction server
    bit-for-bit).

    Scoring replays the serving path per target — union-frontier sampling
    (with the selection memoized per ``(node, type)`` across all targets)
    and the packed per-request-block forward — in ``chunk``-sized slices
    to bound peak memory; each slice is bit-exact per request regardless
    of slicing.

    ``layer_features`` (rows aligned with the sorted targets, already
    scaled) additionally runs one full-graph
    :meth:`~repro.core.hag.HAG.layer_states` pass over the induced
    full-graph adjacency and stores every tower's layer-``k`` hidden state
    plus the fused embedding in ``state.layers``.  ``None`` skips the
    layer pass (scores alone are enough to serve).
    """
    if not len(targets) == len(txn_ids) == len(nows):
        raise ValueError("targets, txn_ids and nows must share one length")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    node_ids = np.asarray(targets, dtype=np.int64)
    if len(node_ids) != len(np.unique(node_ids)):
        raise ValueError("targets must be unique")
    order = np.argsort(node_ids, kind="stable")
    node_ids = node_ids[order]
    txn_arr = np.asarray(txn_ids, dtype=np.int64)[order]
    now_arr = np.asarray(nows, dtype=np.float64)[order]

    subgraphs, stats = computation_subgraphs_batch(
        bn,
        node_ids.tolist(),
        hops=hops,
        fanout=fanout,
        allowed=allowed,
        selection_cache=selection_cache,
    )

    n = len(subgraphs)
    scores = np.zeros(n, dtype=np.float64)
    for start in range(0, n, chunk):
        block = subgraphs[start : start + chunk]
        matrices = []
        for offset, subgraph in enumerate(block):
            matrix = feature_fn(start + offset, subgraph.nodes)
            matrices.append(matrix if transform is None else transform(matrix))
        probabilities = model.predict_subgraphs(
            block, matrices, edge_type_order=edge_type_order
        )
        scores[start : start + len(block)] = probabilities

    sizes = np.asarray([subgraph.num_nodes for subgraph in subgraphs], dtype=np.int64)
    indptr = np.concatenate(([0], np.cumsum(sizes)))
    flat_nodes = (
        np.concatenate(
            [np.asarray(subgraph.nodes, dtype=np.int64) for subgraph in subgraphs]
        )
        if subgraphs
        else np.empty(0, dtype=np.int64)
    )

    layers: dict[str, np.ndarray] = {}
    if layer_features is not None and n:
        layers = _layer_pass(
            model, bn, node_ids, layer_features, edge_type_order, None
        )

    state = HAGState(
        bn_version=int(bn.version),
        hops=int(hops),
        fanout=fanout,
        node_ids=node_ids,
        scores=scores,
        txn_ids=txn_arr,
        nows=now_arr,
        subgraph_indptr=indptr,
        subgraph_nodes=flat_nodes,
        layers=layers,
    )
    return state, stats


@dataclass(frozen=True, slots=True)
class MaterializeStats:
    """Work accounting for one :func:`materialize_fullgraph` /
    :func:`rematerialize` call.

    ``rows_computed`` counts target scores actually recomputed (the full
    pass recomputes all ``total_rows``; the incremental pass only the
    affected cone).  ``edges_touched`` counts induced per-target adjacency
    entries processed by the scoring replay.  ``cone_rows`` is the score
    cone's size in target rows (equals ``total_rows`` on a full pass),
    ``layer_rows`` the layer-state rows recomputed (0 when the layer pass
    is skipped).  ``slices`` is how many executor slices scored the sweep.
    """

    mode: str
    total_rows: int
    rows_computed: int
    edges_touched: int
    cone_rows: int
    layer_rows: int
    slices: int = 1

    @property
    def work_fraction(self) -> float:
        """Recomputed share of the covered rows (1.0 on a full pass)."""
        return self.rows_computed / max(1, self.total_rows)


@dataclass(frozen=True, slots=True)
class SliceResult:
    """One contiguous slice of a full-graph scoring sweep.

    Arrays are aligned with the slice's targets in sorted-target order:
    ``scores`` per target, ``indptr``/``flat_nodes`` the per-target sampled
    subgraph CSR (node *ids*), ``expanded`` the per-target count of BFS
    frontier nodes expanded (the first ``expanded[k]`` entries of row ``k``
    are exactly the expanded nodes), ``edges`` the induced adjacency
    entries processed.  Cheap to ship across processes: five flat arrays.
    """

    scores: np.ndarray
    indptr: np.ndarray
    flat_nodes: np.ndarray
    expanded: np.ndarray
    edges: int

    def to_arrays(self) -> dict[str, np.ndarray]:
        return {
            "scores": np.asarray(self.scores, dtype=np.float64),
            "indptr": np.asarray(self.indptr, dtype=np.int64),
            "flat_nodes": np.asarray(self.flat_nodes, dtype=np.int64),
            "expanded": np.asarray(self.expanded, dtype=np.int64),
            "edges": np.asarray([self.edges], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "SliceResult":
        return cls(
            scores=np.asarray(arrays["scores"], dtype=np.float64),
            indptr=np.asarray(arrays["indptr"], dtype=np.int64),
            flat_nodes=np.asarray(arrays["flat_nodes"], dtype=np.int64),
            expanded=np.asarray(arrays["expanded"], dtype=np.int64),
            edges=int(np.asarray(arrays["edges"])[0]),
        )


def _score_packed_chunk(
    model: HAG,
    matrices: Sequence[np.ndarray],
    sizes: Sequence[int],
    parts: Mapping,
    edge_type_order: Sequence,
) -> np.ndarray:
    """One packed forward over a chunk's pre-offset typed COO triples.

    The CFO fast path of :func:`score_slice`: equivalent to stacking each
    target's canonical per-type CSR block-diagonally
    (:meth:`~repro.core.hag.HAG.predict_subgraphs`), but the conversion to
    canonical CSR happens once per ``(chunk, type)``.  Bit-exact because
    the triples carry no duplicate coordinates — construction is placement,
    not summation — and every dense op downstream is row-local under
    ``nn.row_blocks``.
    """
    boundaries = np.concatenate(
        ([0], np.cumsum(np.asarray(sizes, dtype=np.int64)))
    )
    total = int(boundaries[-1])
    packed = np.vstack(matrices)
    adjacencies = []
    for btype in edge_type_order:
        triples = parts.get(btype, ())
        if triples:
            iu = np.concatenate([t[0] for t in triples])
            iv = np.concatenate([t[1] for t in triples])
            w = np.concatenate([t[2] for t in triples])
        else:
            iu = iv = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=np.float64)
        adjacencies.append(
            sp.csr_matrix(
                (
                    np.concatenate([w, w]),
                    (np.concatenate([iu, iv]), np.concatenate([iv, iu])),
                ),
                shape=(total, total),
            )
        )
    aggregators = prepare_aggregators(adjacencies)
    with nn.row_blocks(boundaries):
        probabilities = model.predict_proba(packed, aggregators)
    return probabilities[boundaries[:-1]]


def score_slice(
    model: HAG,
    sampled: SampledGraph,
    uids: np.ndarray,
    indices: np.ndarray,
    feature_fn: Callable[[int, Sequence[int]], np.ndarray],
    *,
    hops: int,
    edge_type_order: Sequence,
    allowed_mask: np.ndarray | None,
    transform: Callable[[np.ndarray], np.ndarray] | None,
    chunk: int,
) -> SliceResult:
    """Replay the per-target serving path for ``uids[indices]`` off the
    sampled-adjacency CSR.

    Per-request semantics are identical to the union-frontier batch
    sampler: same BFS discovery order over the same memoized selections,
    same induced normalized adjacency bits, same packed per-request-block
    forward — but each target costs O(its subgraph) instead of O(union
    edge list), which is what makes the sweep scale.  ``feature_fn`` is
    called with the *global* sorted-target index (``indices[k]``), exactly
    like :func:`materialize` calls it.
    """
    indices = np.asarray(indices, dtype=np.int64)
    n = len(indices)
    positions = sampled.positions_of(uids[indices])
    types = sampled.types
    scores = np.zeros(n, dtype=np.float64)
    expanded = np.zeros(n, dtype=np.int64)
    node_arrays: list[np.ndarray] = []
    edges = 0
    expand_types = len(types) if hops >= 1 else 0
    # CFO models take one block-diagonal aggregator per type, so the whole
    # chunk's adjacency can be assembled as offset COO triples and converted
    # to canonical CSR once per (chunk, type) instead of once per (target,
    # type) — the dominant cost of the sweep.  Coordinates are unique (the
    # incidence pairs are deduplicated and loop-free), so the canonical CSR
    # is a pure placement of the same values with the same sorted-row
    # structure :func:`_block_diag_csr` produces: every downstream row-local
    # op sees identical bits.  The merged-adjacency (CFO-) path sums typed
    # matrices per subgraph, where scipy's operand order matters; it keeps
    # the per-target replay.
    packed_types = bool(getattr(model, "use_cfo", False))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block: list[ComputationSubgraph] = []
        matrices: list[np.ndarray] = []
        sizes_block: list[int] = []
        parts_block: dict = {btype: [] for btype in types}
        offset = 0
        for k in range(start, stop):
            pos = int(positions[k])
            uid = int(uids[indices[k]])
            if pos < 0:
                plist = np.asarray([-1], dtype=np.int64)
                nodes = np.asarray([uid], dtype=np.int64)
                expanded[k] = 1 if expand_types else 0
            else:
                plist, exp = sampled.subgraph_positions(pos, hops, allowed_mask)
                nodes = sampled.node_ids[plist]
                expanded[k] = exp if expand_types else 0
            entries = sampled.induced_entries(plist, types)
            size = len(plist)
            if packed_types:
                for btype in types:
                    iu, iv, w = entries[btype]
                    edges += len(w)
                    if len(w):
                        # induced_entries reuses scratch: copy now.
                        parts_block[btype].append(
                            (iu + offset, iv + offset, w.copy())
                        )
                offset += size
                sizes_block.append(size)
            else:
                adjacency: dict = {}
                for btype in types:
                    iu, iv, w = entries[btype]
                    edges += len(w)
                    adjacency[btype] = sp.csr_matrix(
                        (
                            np.concatenate([w, w]),
                            (np.concatenate([iu, iv]), np.concatenate([iv, iu])),
                        ),
                        shape=(size, size),
                    )
                block.append(
                    ComputationSubgraph(
                        target=uid, nodes=nodes, adjacency=adjacency
                    )
                )
            matrix = feature_fn(int(indices[k]), nodes)
            matrices.append(matrix if transform is None else transform(matrix))
            node_arrays.append(nodes)
        if packed_types:
            scores[start:stop] = _score_packed_chunk(
                model, matrices, sizes_block, parts_block, edge_type_order
            )
        else:
            probabilities = model.predict_subgraphs(
                block, matrices, edge_type_order=edge_type_order
            )
            scores[start:stop] = probabilities
    sizes = np.asarray([len(a) for a in node_arrays], dtype=np.int64)
    indptr = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    flat = (
        np.concatenate(node_arrays) if node_arrays else np.empty(0, dtype=np.int64)
    )
    return SliceResult(
        scores=scores, indptr=indptr, flat_nodes=flat, expanded=expanded, edges=edges
    )


def _layer_adjacency(
    model: HAG, bn, node_ids: np.ndarray, edge_type_order: Sequence
) -> list[sp.csr_matrix]:
    """Raw per-aggregator adjacency of the full-graph layer pass.

    One matrix per SAO tower: the induced normalized typed adjacencies in
    ``edge_type_order``, or their sum for the CFO(-) single-tower ablation.
    """
    types = tuple(edge_type_order)
    adjacency = typed_adjacency(bn, node_ids.tolist(), types, normalize=True)
    if model.use_cfo:
        return [adjacency[t] for t in types]
    # The CFO(-) ablation runs one tower on the merged graph; sum the
    # typed matrices so the layer pass matches its forward.
    merged = adjacency[types[0]]
    for btype in types[1:]:
        merged = merged + adjacency[btype]
    return [merged.tocsr()]


def _layer_pass(
    model: HAG,
    bn,
    node_ids: np.ndarray,
    layer_features: np.ndarray,
    edge_type_order: Sequence,
    observer: Callable[[str], None] | None,
) -> dict[str, np.ndarray]:
    """One full-graph :meth:`~repro.core.hag.HAG.layer_states` pass."""
    if layer_features.shape[0] != len(node_ids):
        raise ValueError("layer_features rows must align with sorted targets")
    aggregators = prepare_aggregators(
        _layer_adjacency(model, bn, node_ids, edge_type_order)
    )
    model.eval()
    with nn.no_grad():
        fused, states = model.layer_states(
            Tensor(layer_features), aggregators, observer
        )
    model.train()
    layers: dict[str, np.ndarray] = {}
    for t, tower_states in enumerate(states):
        for k, hidden in enumerate(tower_states):
            layers[f"tower{t}.layer{k}"] = hidden.numpy()
    layers["fused"] = fused.numpy()
    return layers


def _sample_stats(
    results: Sequence[SliceResult], n_types: int, requests: int
) -> BatchSampleStats:
    """Scalar-path-equivalent :class:`BatchSampleStats` for a sweep.

    ``expansions`` counts ``(node, type)`` frontier expansions exactly like
    the union sampler (every expanded node costs one per traversed type);
    ``unique_expansions`` counts distinct such pairs across the sweep.
    """
    flats = [r.flat_nodes for r in results if len(r.flat_nodes)]
    sampled_nodes = int(sum(len(f) for f in flats))
    unique_nodes = int(len(np.unique(np.concatenate(flats)))) if flats else 0
    expansions = 0
    expanded_parts: list[np.ndarray] = []
    for r in results:
        expansions += int(r.expanded.sum()) * n_types
        if len(r.expanded):
            gid_indptr, gidx = csr_gather_rows_with_counts(r.indptr, r.expanded)
            expanded_parts.append(r.flat_nodes[gidx])
    unique_expanded = (
        int(len(np.unique(np.concatenate(expanded_parts)))) if expanded_parts else 0
    )
    return BatchSampleStats(
        requests=requests,
        sampled_nodes=sampled_nodes,
        unique_nodes=unique_nodes,
        expansions=expansions,
        unique_expansions=unique_expanded * n_types,
    )


def csr_gather_rows_with_counts(
    indptr: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the first ``counts[r]`` entries of every CSR row ``r``."""
    starts = indptr[:-1]
    counts = np.minimum(np.asarray(counts, dtype=np.int64), np.diff(indptr))
    out_indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out_indptr[1:])
    total = int(out_indptr[-1])
    if not total:
        return out_indptr, np.empty(0, dtype=np.int64)
    gidx = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_indptr[:-1], counts)
        + np.repeat(starts, counts)
    )
    return out_indptr, gidx


def materialize_fullgraph(
    model: HAG,
    bn,
    targets: Sequence[int],
    txn_ids: Sequence[int],
    nows: Sequence[float],
    feature_fn: Callable[[int, Sequence[int]], np.ndarray],
    *,
    hops: int,
    fanout: int | None,
    edge_type_order: Sequence,
    allowed: set[int] | None = None,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
    sampled: SampledGraph | None = None,
    chunk: int = 256,
    layer_features: np.ndarray | None = None,
    executor: Callable[
        [Sequence[tuple[int, int]]], Sequence[SliceResult | None]
    ] | None = None,
    slices: int = 1,
    observer: Callable[[str], None] | None = None,
) -> tuple[HAGState, BatchSampleStats, MaterializeStats]:
    """Full-graph batch pass off the global sampled-adjacency CSR.

    Produces the same :class:`HAGState` contract as :func:`materialize` —
    per-target scores bit-exact with the serving replay (pinned by tests
    and the ``BENCH_lambda_fullgraph`` gates), identical layer-state
    arrays from the same full-graph layer pass — but replaces the union
    sampler's O(targets x union-edges) per-request masking with
    O(sum subgraph size) gathers off the :class:`SampledGraph`, which is
    what lets the sweep scale to millions of users.

    ``executor`` (optional) shards the scoring sweep: it receives the
    ``slices`` contiguous ``(lo, hi)`` bounds over the sorted targets and
    returns one :class:`SliceResult` per bound (``None`` means that worker
    died; the slice is recomputed in-process — degrade, don't die).  The
    :class:`~repro.system.shard_router.ShardWorkerPool` provides one via
    ``lambda_materialize_executor``.  ``observer`` receives stage names
    (``"scores"``, each layer, ``"fused"``) as they complete.
    """
    if not len(targets) == len(txn_ids) == len(nows):
        raise ValueError("targets, txn_ids and nows must share one length")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    node_ids = np.asarray(targets, dtype=np.int64)
    if len(node_ids) != len(np.unique(node_ids)):
        raise ValueError("targets must be unique")
    order = np.argsort(node_ids, kind="stable")
    node_ids = node_ids[order]
    txn_arr = np.asarray(txn_ids, dtype=np.int64)[order]
    now_arr = np.asarray(nows, dtype=np.float64)[order]

    if sampled is None:
        sampled = build_sampled_graph(bn, fanout)
    if sampled.version != int(bn.version):
        raise ValueError("sampled graph version does not match bn.version")
    if sampled.fanout != fanout:
        raise ValueError("sampled graph fanout does not match the request")
    allowed_mask = sampled.allowed_mask(allowed)

    n = len(node_ids)
    if executor is not None and slices > 1 and n:
        cuts = np.linspace(0, n, slices + 1).astype(np.int64)
        bounds = [
            (int(cuts[i]), int(cuts[i + 1]))
            for i in range(slices)
            if cuts[i] < cuts[i + 1]
        ]
    else:
        bounds = [(0, n)]
    results: list[SliceResult | None]
    if executor is not None and len(bounds) > 1:
        results = list(executor(bounds))
    else:
        results = [None] * len(bounds)
    for i, (lo, hi) in enumerate(bounds):
        if results[i] is None:
            results[i] = score_slice(
                model,
                sampled,
                node_ids,
                np.arange(lo, hi, dtype=np.int64),
                feature_fn,
                hops=hops,
                edge_type_order=edge_type_order,
                allowed_mask=allowed_mask,
                transform=transform,
                chunk=chunk,
            )
    slice_results: list[SliceResult] = results  # type: ignore[assignment]
    if observer is not None:
        observer("scores")

    scores = (
        np.concatenate([r.scores for r in slice_results])
        if slice_results
        else np.empty(0, dtype=np.float64)
    )
    flat_nodes = (
        np.concatenate([r.flat_nodes for r in slice_results])
        if slice_results
        else np.empty(0, dtype=np.int64)
    )
    sizes_parts = [np.diff(r.indptr) for r in slice_results]
    sizes = (
        np.concatenate(sizes_parts) if sizes_parts else np.empty(0, dtype=np.int64)
    )
    indptr = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    stats = _sample_stats(slice_results, len(sampled.types), n)

    layers: dict[str, np.ndarray] = {}
    if layer_features is not None and n:
        layers = _layer_pass(
            model, bn, node_ids, layer_features, edge_type_order, observer
        )

    state = HAGState(
        bn_version=int(bn.version),
        hops=int(hops),
        fanout=fanout,
        node_ids=node_ids,
        scores=scores,
        txn_ids=txn_arr,
        nows=now_arr,
        subgraph_indptr=indptr,
        subgraph_nodes=flat_nodes,
        layers=layers,
    )
    mstats = MaterializeStats(
        mode="full",
        total_rows=n,
        rows_computed=n,
        edges_touched=int(sum(r.edges for r in slice_results)),
        cone_rows=n,
        layer_rows=n if layers else 0,
        slices=len(bounds),
    )
    return state, stats, mstats


def rematerialize(
    model: HAG,
    bn,
    prior: HAGState,
    targets: Sequence[int],
    txn_ids: Sequence[int],
    nows: Sequence[float],
    feature_fn: Callable[[int, Sequence[int]], np.ndarray],
    *,
    hops: int,
    fanout: int | None,
    edge_type_order: Sequence,
    allowed: set[int] | None = None,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
    sampled: SampledGraph | None = None,
    chunk: int = 256,
    touched: Mapping[int, int] | None = None,
    layer_row_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    observer: Callable[[str], None] | None = None,
) -> tuple[HAGState, BatchSampleStats, MaterializeStats]:
    """Incremental batch pass: recompute only the delta's affected cone.

    ``prior`` is the state of an *ancestor* version of ``bn`` computed with
    the same ``hops``/``fanout``; ``touched`` is
    :meth:`~repro.network.bn.BehaviorNetwork.delta_touched` accumulated
    since that pass.  The affected cone is every target that can reach a
    touched node within ``hops`` steps of the **current** selection graph
    (reverse-BFS over :class:`SampledGraph`), plus targets whose feature
    provenance changed (new transaction / as-of time) and targets new to
    the sweep.  Anything outside the cone kept its selection rows, induced
    adjacency (weights *and* degrees), and feature rows — so its cached
    score and subgraph row are copied bit-for-bit.

    Layer states are spliced the same way: rows within ``L`` undirected
    hops of a seed (over the target-induced adjacency, ``L`` = SAO depth)
    are recomputed through the rectangular
    :meth:`~repro.core.hag.HAG.layer_states_rows` path — fed by
    ``layer_row_fn(global_rows) -> scaled feature rows`` for the cone's
    layer-0 inputs — and all other rows are byte-copies of ``prior``.
    Raises ``ValueError`` when ``prior`` is not a valid ancestor
    (hops/fanout mismatch, or missing layer arrays while the model expects
    them) — callers fall back to :func:`materialize_fullgraph`.
    """
    if int(prior.hops) != int(hops) or prior.fanout != fanout:
        raise ValueError("prior state hops/fanout do not match the request")
    if not len(targets) == len(txn_ids) == len(nows):
        raise ValueError("targets, txn_ids and nows must share one length")
    node_ids = np.asarray(targets, dtype=np.int64)
    if len(node_ids) != len(np.unique(node_ids)):
        raise ValueError("targets must be unique")
    order = np.argsort(node_ids, kind="stable")
    node_ids = node_ids[order]
    txn_arr = np.asarray(txn_ids, dtype=np.int64)[order]
    now_arr = np.asarray(nows, dtype=np.float64)[order]
    n = len(node_ids)

    if sampled is None:
        sampled = build_sampled_graph(bn, fanout)
    if sampled.version != int(bn.version):
        raise ValueError("sampled graph version does not match bn.version")
    if sampled.fanout != fanout:
        raise ValueError("sampled graph fanout does not match the request")
    allowed_mask = sampled.allowed_mask(allowed)

    want_layers = bool(prior.layers) and layer_row_fn is not None
    if want_layers:
        expected = [
            f"tower{t}.layer{k}"
            for t in range(model.n_types)
            for k in range(len(model.hidden))
        ] + ["fused"]
        if any(name not in prior.layers for name in expected):
            raise ValueError("prior state lacks the model's layer arrays")

    # --- map new targets onto prior rows --------------------------------
    prior_rows = np.searchsorted(prior.node_ids, node_ids)
    prior_rows = np.minimum(prior_rows, max(prior.num_nodes - 1, 0))
    has_prior = (
        (prior.node_ids[prior_rows] == node_ids)
        if prior.num_nodes
        else np.zeros(n, dtype=bool)
    )
    provenance_changed = has_prior & (
        (txn_arr != prior.txn_ids[prior_rows])
        | (now_arr != prior.nows[prior_rows])
    )
    target_seeds = provenance_changed | ~has_prior

    # --- affected cone over the current selection graph -----------------
    touched = touched or {}
    touched_uids = (
        np.fromiter(touched.keys(), dtype=np.int64, count=len(touched))
        if touched
        else np.empty(0, dtype=np.int64)
    )
    target_positions = sampled.positions_of(node_ids)
    seed_positions = np.concatenate(
        [
            sampled.positions_of(touched_uids),
            target_positions[target_seeds],
        ]
    )
    seed_positions = seed_positions[seed_positions >= 0]
    cone_mask = np.zeros(sampled.num_nodes, dtype=bool)
    if len(seed_positions):
        cone_mask[sampled.reverse_reachable(seed_positions, hops)] = True
    affected = target_seeds | ((target_positions >= 0) & cone_mask[target_positions])
    affected_idx = np.flatnonzero(affected)

    result = score_slice(
        model,
        sampled,
        node_ids,
        affected_idx,
        feature_fn,
        hops=hops,
        edge_type_order=edge_type_order,
        allowed_mask=allowed_mask,
        transform=transform,
        chunk=chunk,
    )
    if observer is not None:
        observer("scores")

    # --- splice scores + subgraph CSR -----------------------------------
    scores = np.zeros(n, dtype=np.float64)
    keep_idx = np.flatnonzero(~affected)
    if len(keep_idx) and not np.all(has_prior[keep_idx]):
        raise ValueError("unaffected target missing from the prior state")
    scores[keep_idx] = prior.scores[prior_rows[keep_idx]]
    scores[affected_idx] = result.scores
    sizes = np.zeros(n, dtype=np.int64)
    sizes[affected_idx] = np.diff(result.indptr)
    kept_prior = prior_rows[keep_idx]
    sizes[keep_idx] = (
        prior.subgraph_indptr[kept_prior + 1] - prior.subgraph_indptr[kept_prior]
    )
    indptr = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    flat_nodes = np.empty(int(indptr[-1]), dtype=np.int64)
    _, gidx_a = csr_gather_rows(indptr, affected_idx)
    flat_nodes[gidx_a] = result.flat_nodes
    _, gidx_k = csr_gather_rows(indptr, keep_idx)
    _, src_k = csr_gather_rows(prior.subgraph_indptr, kept_prior)
    flat_nodes[gidx_k] = prior.subgraph_nodes[src_k]
    stats = _sample_stats([result], len(sampled.types), len(affected_idx))

    # --- splice layer states --------------------------------------------
    def mapped(name: str) -> np.ndarray:
        """Prior layer array re-rowed onto the new target ordering."""
        src = prior.layers[name]
        out = np.zeros((n, src.shape[1]), dtype=src.dtype)
        out[has_prior] = src[prior_rows[has_prior]]
        return out

    layers: dict[str, np.ndarray] = {}
    layer_rows = 0
    if want_layers and n:
        depth = len(model.hidden)
        member_mask = np.zeros(sampled.num_nodes, dtype=bool)
        registered = target_positions >= 0
        member_mask[target_positions[registered]] = True
        # graph position -> target row for registered targets
        row_of_position = np.full(sampled.num_nodes, -1, dtype=np.int64)
        row_of_position[target_positions[registered]] = np.flatnonzero(registered)
        cone_positions = (
            sampled.undirected_reachable(seed_positions, depth, member_mask)
            if len(seed_positions)
            else np.empty(0, dtype=np.int64)
        )
        rows_mask = np.zeros(n, dtype=bool)
        rows_mask[row_of_position[cone_positions]] = True
        # unregistered provenance-changed/new targets have no graph
        # position but still need fresh (isolated) layer rows
        rows_mask |= target_seeds & ~registered
        rows = np.flatnonzero(rows_mask)
        layer_rows = len(rows)

        if len(rows):
            mats = _layer_adjacency(model, bn, node_ids, edge_type_order)
            rect_aggregators = [
                nn.PreparedAggregator(neighbor_mean_matrix(m)[rows])
                for m in mats
            ]
            need = np.zeros(n, dtype=bool)
            need[rows] = True
            for agg in rect_aggregators:
                need[np.unique(agg.matrix.indices)] = True
            need_rows = np.flatnonzero(need)
            x_full = np.zeros((n, model.in_dim), dtype=np.float64)
            x_full[need_rows] = layer_row_fn(need_rows)

            assembled = {
                name: mapped(name) for name in prior.layers if name != "fused"
            }

            def inputs_fn(t: int, k: int, fresh_prev: np.ndarray | None):
                if k == 0:
                    return x_full
                arr = assembled[f"tower{t}.layer{k - 1}"]
                arr[rows] = fresh_prev
                return arr

            model.eval()
            with nn.no_grad():
                fused, states = model.layer_states_rows(
                    rows, inputs_fn, rect_aggregators, observer
                )
            model.train()
            for t, tower_states in enumerate(states):
                for k, hidden in enumerate(tower_states):
                    name = f"tower{t}.layer{k}"
                    arr = assembled[name]
                    arr[rows] = hidden.numpy()
                    layers[name] = arr
            fused_full = mapped("fused")
            fused_full[rows] = fused.numpy()
            layers["fused"] = fused_full
        else:
            layers = {name: mapped(name) for name in prior.layers}
            if observer is not None:
                observer("fused")
    elif prior.layers and n:
        # Scores-only refresh (no layer_row_fn): carry the prior arrays
        # over, re-rowed onto the new target ordering (new targets get
        # zero rows — they have no checkpointed layer state yet).
        layers = {name: mapped(name) for name in prior.layers}

    state = HAGState(
        bn_version=int(bn.version),
        hops=int(hops),
        fanout=fanout,
        node_ids=node_ids,
        scores=scores,
        txn_ids=txn_arr,
        nows=now_arr,
        subgraph_indptr=indptr,
        subgraph_nodes=flat_nodes,
        layers=layers,
    )
    mstats = MaterializeStats(
        mode="incremental",
        total_rows=n,
        rows_computed=len(affected_idx),
        edges_touched=result.edges,
        cone_rows=len(affected_idx),
        layer_rows=layer_rows,
    )
    return state, stats, mstats
