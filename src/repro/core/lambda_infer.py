"""Lambda-architecture batch layer: checkpointable HAG aggregation state.

Turbo's paper serves every request by sampling a fresh k-hop subgraph and
running full HAG inference.  *BRIGHT* and *GNNs in Real-Time Fraud Detection
with Lambda Architecture* (PAPERS.md) split the same workload into a **batch
layer** that periodically precomputes per-node aggregation state over the
full BN, and a **speed layer** that answers requests from that state plus
only the edges ingested since the last batch pass.

This module is the batch layer's core: storage- and serving-agnostic.

* :class:`HAGState` — the versioned, serializable per-node state one batch
  pass produces: exact replayed scores, the feature provenance that gates
  cache hits (which transaction/time each score was computed for), the
  sampled-subgraph membership CSR that prices staleness, and every SAO
  tower's layer-``k`` hidden states from a full-graph pass
  (:meth:`repro.core.hag.HAG.layer_states`).  Round-trips losslessly
  through a flat ``dict[str, np.ndarray]`` (:meth:`HAGState.to_arrays` /
  :meth:`HAGState.from_arrays`), which is exactly what
  :class:`~repro.system.storage.LocalDatabase` checkpoints and
  :class:`~repro.network.shm.SharedSnapshotStore` publishes.

* :func:`materialize` — the full-graph batch pass.  Scores are an
  **all-targets replay** of the exact serving path: the union-frontier
  sampler (:func:`~repro.network.sampling.computation_subgraphs_batch`)
  over every target, then the packed per-request-block forward
  (:meth:`~repro.core.hag.HAG.predict_subgraphs`).  Both are pinned
  bit-for-bit equal to the scalar path, so a cached score is *bit-exact*
  with what the fresh sampled path would compute — a full-graph embedding
  cache could not promise that, because the sampled path's aggregation is
  row-normalized within each target's own fanout-truncated subgraph.

The speed layer that serves from this state lives in
:mod:`repro.system.lambda_layer`; staleness accounting rides on
:meth:`repro.network.bn.BehaviorNetwork.track_deltas`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from .. import nn
from ..nn import Tensor
from ..network.adjacency import typed_adjacency
from ..network.sampling import BatchSampleStats, computation_subgraphs_batch
from .hag import HAG, prepare_aggregators

__all__ = ["HAGState", "materialize"]

#: ``meta`` array layout of a serialized state (see :meth:`HAGState.to_arrays`).
_META_LEN = 3
#: Prefix separating layer-state arrays from the fixed per-node columns.
_LAYER_PREFIX = "state:"


@dataclass(slots=True)
class HAGState:
    """Versioned per-node aggregation state of one lambda batch pass.

    Keyed on ``bn_version`` — the facade version of the BN the pass ran
    against; a served score is only meaningful relative to that graph
    state plus whatever delta the speed layer accounts on top.

    Per-node columns (aligned with the sorted ``node_ids``):

    * ``scores`` — the exact probability the fresh sampled path computes
      for the node's latest application at its audit time;
    * ``txn_ids`` / ``nows`` — the transaction and as-of time each score
      was computed for.  A request is only a cache hit when both match:
      the target feature row depends on them, so a newer transaction must
      fall through to the fresh path;
    * ``subgraph_indptr`` / ``subgraph_nodes`` — CSR over each target's
      sampled subgraph node set.  Staleness of a cached score is the
      number of delta edge touches that landed inside this set — a
      conservative superset of what could have changed the score, and
      exactly zero when no edges arrived.

    ``layers`` holds the full-graph pass artifacts: every SAO tower's
    layer-``k`` hidden state and the fused (CFO) embedding, keyed
    ``tower{t}.layer{k}`` / ``fused``, one row per ``node_ids`` entry.
    """

    bn_version: int
    hops: int
    fanout: int | None
    node_ids: np.ndarray
    scores: np.ndarray
    txn_ids: np.ndarray
    nows: np.ndarray
    subgraph_indptr: np.ndarray
    subgraph_nodes: np.ndarray
    layers: dict[str, np.ndarray] = field(default_factory=dict)
    _positions: dict[int, int] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        if not len(self.scores) == len(self.txn_ids) == len(self.nows) == n:
            raise ValueError("per-node columns must share one length")
        if len(self.subgraph_indptr) != n + 1:
            raise ValueError("subgraph_indptr must have num_nodes + 1 entries")
        if n and np.any(np.diff(self.node_ids) <= 0):
            raise ValueError("node_ids must be strictly increasing")

    @property
    def num_nodes(self) -> int:
        """Targets covered by this state."""
        return len(self.node_ids)

    def position_of(self, uid: int) -> int | None:
        """Row of ``uid`` in the per-node columns (``None`` if uncovered)."""
        positions = self._positions
        if positions is None:
            positions = {int(u): i for i, u in enumerate(self.node_ids)}
            self._positions = positions
        return positions.get(int(uid))

    def subgraph_of(self, position: int) -> np.ndarray:
        """Node ids of the sampled subgraph behind ``scores[position]``."""
        lo = int(self.subgraph_indptr[position])
        hi = int(self.subgraph_indptr[position + 1])
        return self.subgraph_nodes[lo:hi]

    def lookup(self, uid: int, txn_id: int, now: float) -> tuple[float, int] | None:
        """Cached score for ``(uid, txn_id, now)``; ``None`` unless exact.

        Eligibility is exact by construction: the cached score was computed
        from the feature row of ``txn_ids[row]`` observed at ``nows[row]``,
        so any other transaction or as-of time must take the fresh path.
        """
        position = self.position_of(uid)
        if position is None:
            return None
        if int(self.txn_ids[position]) != int(txn_id):
            return None
        if float(self.nows[position]) != float(now):
            return None
        return float(self.scores[position]), position

    def staleness_of(self, position: int, touched: Mapping[int, int]) -> int:
        """Delta edge touches inside the target's cached subgraph node set.

        ``touched`` is :meth:`~repro.network.bn.BehaviorNetwork.delta_touched`
        (per-node counts since the batch pass).  Zero iff nothing the cached
        score could have seen changed — the bit-exactness guarantee.
        """
        if not touched:
            return 0
        return sum(
            touched.get(int(node), 0) for node in self.subgraph_of(position)
        )

    # ------------------------------------------------------------------
    # Serialization (storage checkpoints + shared-memory publication)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten to named numpy arrays (lossless; see :meth:`from_arrays`).

        The payload shape is what both backends want: a
        :class:`~repro.system.storage.LocalDatabase` ``put`` checkpoints
        the dict as one value, and a
        :class:`~repro.network.shm.SharedSnapshotStore` publishes each
        array as one zero-copy shared-memory region.
        """
        arrays = {
            "meta": np.asarray(
                [
                    self.bn_version,
                    self.hops,
                    -1 if self.fanout is None else self.fanout,
                ],
                dtype=np.int64,
            ),
            "node_ids": np.asarray(self.node_ids, dtype=np.int64),
            "scores": np.asarray(self.scores, dtype=np.float64),
            "txn_ids": np.asarray(self.txn_ids, dtype=np.int64),
            "nows": np.asarray(self.nows, dtype=np.float64),
            "subgraph_indptr": np.asarray(self.subgraph_indptr, dtype=np.int64),
            "subgraph_nodes": np.asarray(self.subgraph_nodes, dtype=np.int64),
        }
        for name, value in self.layers.items():
            arrays[_LAYER_PREFIX + name] = np.asarray(value)
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "HAGState":
        """Rebuild a state from :meth:`to_arrays` output (or a shm view)."""
        meta = np.asarray(arrays["meta"], dtype=np.int64)
        if len(meta) != _META_LEN:
            raise ValueError("malformed HAGState meta array")
        fanout = int(meta[2])
        return cls(
            bn_version=int(meta[0]),
            hops=int(meta[1]),
            fanout=None if fanout < 0 else fanout,
            node_ids=np.asarray(arrays["node_ids"], dtype=np.int64),
            scores=np.asarray(arrays["scores"], dtype=np.float64),
            txn_ids=np.asarray(arrays["txn_ids"], dtype=np.int64),
            nows=np.asarray(arrays["nows"], dtype=np.float64),
            subgraph_indptr=np.asarray(arrays["subgraph_indptr"], dtype=np.int64),
            subgraph_nodes=np.asarray(arrays["subgraph_nodes"], dtype=np.int64),
            layers={
                name[len(_LAYER_PREFIX):]: np.asarray(value)
                for name, value in arrays.items()
                if name.startswith(_LAYER_PREFIX)
            },
        )


def materialize(
    model: HAG,
    bn,
    targets: Sequence[int],
    txn_ids: Sequence[int],
    nows: Sequence[float],
    feature_fn: Callable[[int, Sequence[int]], np.ndarray],
    *,
    hops: int,
    fanout: int | None,
    edge_type_order: Sequence,
    allowed: set[int] | None = None,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
    selection_cache: dict | None = None,
    chunk: int = 256,
    layer_features: np.ndarray | None = None,
) -> tuple[HAGState, BatchSampleStats]:
    """One full-graph batch pass; returns ``(state, sample_stats)``.

    ``targets`` / ``txn_ids`` / ``nows`` describe every node to precompute
    (they are sorted together by node id).  ``feature_fn(k, nodes)``
    returns the raw feature matrix for sorted-target ``k``'s subgraph
    ``nodes`` — exactly what the feature module would assemble for a live
    request on that transaction at that time; ``transform`` is the serving
    scaler (applied here so the replay matches the prediction server
    bit-for-bit).

    Scoring replays the serving path per target — union-frontier sampling
    (with the selection memoized per ``(node, type)`` across all targets)
    and the packed per-request-block forward — in ``chunk``-sized slices
    to bound peak memory; each slice is bit-exact per request regardless
    of slicing.

    ``layer_features`` (rows aligned with the sorted targets, already
    scaled) additionally runs one full-graph
    :meth:`~repro.core.hag.HAG.layer_states` pass over the induced
    full-graph adjacency and stores every tower's layer-``k`` hidden state
    plus the fused embedding in ``state.layers``.  ``None`` skips the
    layer pass (scores alone are enough to serve).
    """
    if not len(targets) == len(txn_ids) == len(nows):
        raise ValueError("targets, txn_ids and nows must share one length")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    node_ids = np.asarray(targets, dtype=np.int64)
    if len(node_ids) != len(np.unique(node_ids)):
        raise ValueError("targets must be unique")
    order = np.argsort(node_ids, kind="stable")
    node_ids = node_ids[order]
    txn_arr = np.asarray(txn_ids, dtype=np.int64)[order]
    now_arr = np.asarray(nows, dtype=np.float64)[order]

    subgraphs, stats = computation_subgraphs_batch(
        bn,
        node_ids.tolist(),
        hops=hops,
        fanout=fanout,
        allowed=allowed,
        selection_cache=selection_cache,
    )

    n = len(subgraphs)
    scores = np.zeros(n, dtype=np.float64)
    for start in range(0, n, chunk):
        block = subgraphs[start : start + chunk]
        matrices = []
        for offset, subgraph in enumerate(block):
            matrix = feature_fn(start + offset, subgraph.nodes)
            matrices.append(matrix if transform is None else transform(matrix))
        probabilities = model.predict_subgraphs(
            block, matrices, edge_type_order=edge_type_order
        )
        scores[start : start + len(block)] = probabilities

    sizes = np.asarray([subgraph.num_nodes for subgraph in subgraphs], dtype=np.int64)
    indptr = np.concatenate(([0], np.cumsum(sizes)))
    flat_nodes = (
        np.concatenate(
            [np.asarray(subgraph.nodes, dtype=np.int64) for subgraph in subgraphs]
        )
        if subgraphs
        else np.empty(0, dtype=np.int64)
    )

    layers: dict[str, np.ndarray] = {}
    if layer_features is not None and n:
        if layer_features.shape[0] != n:
            raise ValueError("layer_features rows must align with sorted targets")
        types = tuple(edge_type_order)
        adjacency = typed_adjacency(bn, node_ids.tolist(), types, normalize=True)
        if model.use_cfo:
            aggregators = prepare_aggregators([adjacency[t] for t in types])
        else:
            # The CFO(-) ablation runs one tower on the merged graph; sum
            # the typed matrices so the layer pass matches its forward.
            merged = adjacency[types[0]]
            for btype in types[1:]:
                merged = merged + adjacency[btype]
            aggregators = prepare_aggregators([merged.tocsr()])
        model.eval()
        with nn.no_grad():
            fused, states = model.layer_states(Tensor(layer_features), aggregators)
        model.train()
        for t, tower_states in enumerate(states):
            for k, hidden in enumerate(tower_states):
                layers[f"tower{t}.layer{k}"] = hidden.numpy()
        layers["fused"] = fused.numpy()

    state = HAGState(
        bn_version=int(bn.version),
        hops=int(hops),
        fanout=fanout,
        node_ids=node_ids,
        scores=scores,
        txn_ids=txn_arr,
        nows=now_arr,
        subgraph_indptr=indptr,
        subgraph_nodes=flat_nodes,
        layers=layers,
    )
    return state, stats
