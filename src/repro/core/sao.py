"""Self-aware Aggregation Operator (SAO) — Section IV-A, Eq. 5–9.

BN's implicit relations form *cliques*; Theorem 1 shows that GCN-style
aggregation maps every node of a clique to the same expected hidden feature
after one round (over-smoothing).  SAO counteracts this with a learned,
node-wise gate between a node's own representation and its aggregated
neighbourhood::

    h_v' = ReLU(alpha_self * W_ls h_v + alpha_neigh * W_ln h_N(v))      (5)
    h_N(v) = (1/deg(v)) * sum_u w_uv h_u                                 (6)
    alpha'_self  = p^T tanh([W_s h_v ; W_s h_v])                         (7)
    alpha'_neigh = p^T tanh([W_n h_N ; W_s h_v])                         (8)
    (alpha_self, alpha_neigh) = softmax(alpha'_self, alpha'_neigh)       (9)

With ``use_attention=False`` the gate is removed (both coefficients fixed to
1), reducing Eq. 5 to the skip-connection form of Eq. 4 — this is the SAO(-)
ablation of Table V.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..nn import Tensor

__all__ = ["SAOLayer", "neighbor_mean_matrix"]


def neighbor_mean_matrix(
    adjacency: sp.spmatrix | nn.PreparedAggregator,
) -> sp.csr_matrix:
    """Aggregation matrix for Eq. 6: row ``v`` holds ``w_uv / deg(v)``.

    We read ``deg(v)`` as the *weighted* degree on the (type-normalized) BN
    weights — consistent with the paper's ``deg'`` definition in Section
    III-A — so every non-empty row sums to one.  Dividing by the neighbour
    count instead would shrink the already-normalized weights a second time
    and starve the neighbourhood branch of gradient signal.
    """
    csr = nn.as_csr(adjacency)
    weighted_degree = np.asarray(csr.sum(axis=1)).ravel()
    inv = np.divide(
        1.0,
        weighted_degree,
        out=np.zeros_like(weighted_degree),
        where=weighted_degree > 0,
    )
    return (sp.diags(inv) @ csr).tocsr()


class SAOLayer(nn.Module):
    """One SAO layer operating on a single homogeneous subgraph ``G^r``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        att_dim: int,
        rng: np.random.Generator,
        use_attention: bool = True,
        activation: bool = True,
    ) -> None:
        super().__init__()
        self.use_attention = use_attention
        self.activation = activation
        self.w_self = nn.Linear(in_dim, out_dim, rng)  # W_ls
        self.w_neigh = nn.Linear(in_dim, out_dim, rng)  # W_ln
        if use_attention:
            self.att_self = nn.xavier_uniform((in_dim, att_dim), rng)  # W_s
            self.att_neigh = nn.xavier_uniform((in_dim, att_dim), rng)  # W_n
            self.p = nn.normal((2 * att_dim,), rng, std=0.1)

    def forward(
        self, h: Tensor, aggregator: sp.spmatrix | nn.PreparedAggregator
    ) -> Tensor:
        """Apply SAO given node features ``h`` and the Eq. 6 aggregator.

        Without attention the aggregate and the neighbour affine fuse into
        one :func:`~repro.nn.spmm_affine` node (bit-exact with the unfused
        chain).  The attention path keeps the explicit ``spmm``: Eq. 8
        needs the raw ``h_N(v)`` for the ``W_n`` projection, so the
        intermediate cannot be eliminated there.
        """
        if not self.use_attention:
            z_self = self.w_self(h)
            z_neigh = nn.spmm_affine(
                aggregator, h, self.w_neigh.weight, self.w_neigh.bias
            )
            out = z_self + z_neigh
            return out.relu() if self.activation else out
        return self.combine(h, nn.spmm(aggregator, h))

    def combine(self, h: Tensor, h_neigh: Tensor) -> Tensor:
        """Everything after neighbourhood aggregation: the per-row mixing.

        Split out of :meth:`forward` because it is *row-local* — row ``v``
        of the output depends only on row ``v`` of ``h`` and ``h_neigh``.
        The lambda incremental rematerialization exploits this: it feeds a
        rectangular aggregation (cone rows of ``A`` against the full
        previous layer) through the exact same op sequence as the
        full-graph pass.
        """
        z_self = self.w_self(h)
        z_neigh = self.w_neigh(h_neigh)
        if not self.use_attention:
            out = z_self + z_neigh
            return out.relu() if self.activation else out

        proj_self = h @ self.att_self  # W_s h_v
        proj_neigh = h_neigh @ self.att_neigh  # W_n h_N
        score_self = nn.concat([proj_self, proj_self], axis=1).tanh() @ self.p
        score_neigh = nn.concat([proj_neigh, proj_self], axis=1).tanh() @ self.p
        alphas = nn.stack([score_self, score_neigh], axis=1).softmax(axis=1)
        alpha_self = alphas[:, 0].reshape(-1, 1)
        alpha_neigh = alphas[:, 1].reshape(-1, 1)
        out = alpha_self * z_self + alpha_neigh * z_neigh
        return out.relu() if self.activation else out

    def attention_coefficients(
        self, h: Tensor, aggregator: sp.spmatrix | nn.PreparedAggregator
    ) -> np.ndarray:
        """Return the per-node ``(alpha_self, alpha_neigh)`` pairs (for analysis)."""
        if not self.use_attention:
            return np.ones((h.shape[0], 2))
        with nn.no_grad():
            h_neigh = nn.spmm(aggregator, h)
            proj_self = h @ self.att_self
            proj_neigh = h_neigh @ self.att_neigh
            score_self = nn.concat([proj_self, proj_self], axis=1).tanh() @ self.p
            score_neigh = nn.concat([proj_neigh, proj_self], axis=1).tanh() @ self.p
            alphas = nn.stack([score_self, score_neigh], axis=1).softmax(axis=1)
        return alphas.numpy()
