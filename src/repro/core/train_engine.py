"""Parallel training engine: presampling, prefetch, data-parallel gradients.

:func:`~repro.core.minibatch.train_with_neighbor_sampling` re-runs
``sample_khop_nodes`` + ``induced_adjacencies`` for every batch of every
epoch, from the raw adjacency matrices, in the compute thread, in one
process.  This module removes all four costs while keeping the float
trajectory *bit-identical*:

* **Epoch presampling** — :class:`PresampledGraph` builds the deterministic
  fanout selection once per training run (per-type selection CSRs plus one
  interleaved all-types CSR, the same incidence-CSR layout as
  :class:`~repro.network.sampled_graph.SampledGraph`), then every minibatch
  is a cheap BFS replay + induced slice over those CSRs.  Bit-exact against
  the pinned references ``sample_khop_nodes(..., rng=None)`` /
  ``induced_adjacencies`` — which also means presampling only supports the
  deterministic (``rng=None``) fanout policy; weighted *random* fanout
  draws depend on the rng stream position at each batch and cannot be
  hoisted out of the epoch loop.
* **Prefetch pipeline** — :class:`_Prefetcher` double-buffers minibatch
  assembly (subgraph slicing + columnar feature gather) on a background
  thread so batch ``t+1`` is built while batch ``t`` computes; the
  ``prefetch`` stage of the :class:`~repro.obs.profiling.TrainProfiler`
  records only the time the compute loop actually *waited*, which is the
  overlap proof the benchmark asserts on.
* **Multi-process data parallelism** — forked workers (the
  ``ShardWorkerPool`` pattern, see
  :mod:`repro.system.train_workers`) compute per-minibatch gradients off a
  :class:`~repro.network.shm.SharedSnapshotStore`-published segment holding
  the presampled CSRs and features.  Reduction is a **fixed-fold-order**
  sum: gradients are always folded left-to-right by *global batch index*
  (:func:`fold_gradients`), never by worker arrival order, so same-seed
  runs are bit-identical across worker counts {0, 1, 2, 4}.  Float
  caveat, documented once here: bit-exactness across worker counts holds
  because every worker computes over identically-shaped arrays; it is the
  *fold order* that parallelism could perturb, and pinning it removes the
  only degree of freedom.  (BLAS matmul is shape-dependent, but every
  configuration computes the same per-batch matmuls — nothing is resharded
  — so no allclose tolerance is needed anywhere in the parity suite.)

Determinism further requires that a parameter consumed twice inside one
batch's graph (SAO's attention vector ``p``) accumulates *within* the
batch before the cross-batch fold.  ``Tensor._accumulate`` would interleave
the two sums if batches shared one autograd accumulation, so the engine
always extracts per-batch gradient lists (:func:`_batch_gradient`) and
folds them explicitly — the in-process and pooled paths share that exact
code path.

Dropout restriction: module-local dropout rng streams advance per process,
so cross-worker parity only holds for dropout-free models (HAG's default).
``train_parallel`` refuses ``workers > 0`` when the model is carrying
active dropout is not detectable generically, so this is documented rather
than enforced; the parity tests pin the dropout-free case.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..eval.metrics import roc_auc_score
from ..nn import Tensor
from ..nn.sparse import csr_gather_rows
from ..obs.profiling import NullProfiler, TrainProfiler
from .hag import prepare_aggregators
from .minibatch import induced_adjacencies, sample_khop_nodes
from .trainer import TrainConfig, TrainResult, _weighted_bce

__all__ = [
    "PresampledGraph",
    "Minibatch",
    "ParallelTrainConfig",
    "assemble_minibatch",
    "fold_gradients",
    "train_parallel",
]

_NULL = NullProfiler()


class PresampledGraph:
    """Epoch-invariant sampling structure: fanout selection + BFS CSRs.

    Deterministic fanout selection (weight-descending, CSR-position
    tie-break — exactly ``sample_khop_nodes``'s ``rng=None`` policy) is a
    pure function of the adjacency, so it is computed **once** per training
    run instead of once per (batch, epoch):

    * ``sel_*`` — per-type selection CSRs: row ``v`` holds the neighbours
      that survive the fanout cap, in emission order (stored order for
      small rows, selection-rank order for capped rows);
    * ``all_*`` — the selection CSRs interleaved node-major/type-inner into
      one CSR, so one :func:`~repro.nn.sparse.csr_gather_rows` call per hop
      replays the whole frontier expansion;
    * ``adj_*`` — the original adjacency CSR parts, referenced (not
      copied) for the induced-subgraph slice, which is *not* fanout-capped.

    The layout mirrors :class:`~repro.network.sampled_graph.SampledGraph`'s
    incidence CSRs (PR 9); this variant differs in keying directly off the
    training adjacency matrices (no BN weight masking) because its contract
    is bit-exactness against :mod:`repro.core.minibatch`'s pinned
    references.
    """

    __slots__ = (
        "n",
        "fanout",
        "sel_indptr",
        "sel_indices",
        "all_indptr",
        "all_indices",
        "adj_indptr",
        "adj_indices",
        "adj_data",
        "_seen",
        "_stamp",
        "_lookup",
    )

    def __init__(
        self,
        n: int,
        fanout: int | None,
        sel_indptr: list[np.ndarray],
        sel_indices: list[np.ndarray],
        all_indptr: np.ndarray,
        all_indices: np.ndarray,
        adj_indptr: list[np.ndarray],
        adj_indices: list[np.ndarray],
        adj_data: list[np.ndarray],
    ) -> None:
        self.n = n
        self.fanout = fanout
        self.sel_indptr = sel_indptr
        self.sel_indices = sel_indices
        self.all_indptr = all_indptr
        self.all_indices = all_indices
        self.adj_indptr = adj_indptr
        self.adj_indices = adj_indices
        self.adj_data = adj_data
        # Persistent scratch (allocated lazily, reset after each use) so the
        # per-batch hot path allocates O(batch) not O(graph).
        self._seen: np.ndarray | None = None
        self._stamp: np.ndarray | None = None
        self._lookup: np.ndarray | None = None

    @classmethod
    def build(
        cls, adjacencies: Sequence[sp.spmatrix], fanout: int | None
    ) -> "PresampledGraph":
        """Precompute the selection CSRs for ``adjacencies``."""
        csrs = [a.tocsr() for a in adjacencies]
        if not csrs:
            raise ValueError("presampling requires at least one adjacency")
        n = csrs[0].shape[0]
        sel_indptr: list[np.ndarray] = []
        sel_indices: list[np.ndarray] = []
        for csr in csrs:
            indptr = np.asarray(csr.indptr, dtype=np.int64)
            indices = np.asarray(csr.indices, dtype=np.int64)
            counts = np.diff(indptr)
            if fanout == 0:
                sel_indptr.append(np.zeros(n + 1, dtype=np.int64))
                sel_indices.append(np.empty(0, dtype=np.int64))
                continue
            big = None if fanout is None else counts > fanout
            if big is None or not big.any():
                sel_indptr.append(indptr)
                sel_indices.append(indices)
                continue
            total = int(indptr[-1])
            rows = np.repeat(np.arange(n, dtype=np.int64), counts)
            starts = np.repeat(indptr[:-1], counts)
            pos = np.arange(total, dtype=np.int64) - starts
            # Within-row selection rank by (weight desc, position asc) —
            # the rank[by_rank] trick works because lexsort's primary key
            # keeps rows contiguous, so each row's sorted segment occupies
            # its own indptr span.
            by_rank = np.lexsort((pos, -csr.data, rows))
            rank = np.empty(total, dtype=np.int64)
            rank[by_rank] = np.arange(total, dtype=np.int64) - starts
            big_entry = big[rows]
            keep = np.flatnonzero(~big_entry | (rank < fanout))
            # Capped rows emit in rank order, small rows in stored order.
            key = np.where(big_entry, rank, pos)
            order = keep[np.lexsort((key[keep], rows[keep]))]
            out_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.minimum(counts, fanout), out=out_indptr[1:])
            sel_indptr.append(out_indptr)
            sel_indices.append(indices[order])
        all_indptr, all_indices = _interleave_csrs(n, sel_indptr, sel_indices)
        return cls(
            n=n,
            fanout=fanout,
            sel_indptr=sel_indptr,
            sel_indices=sel_indices,
            all_indptr=all_indptr,
            all_indices=all_indices,
            adj_indptr=[np.asarray(c.indptr, dtype=np.int64) for c in csrs],
            adj_indices=[np.asarray(c.indices, dtype=np.int64) for c in csrs],
            adj_data=[np.asarray(c.data) for c in csrs],
        )

    # ------------------------------------------------------------------
    # Per-batch replay (the hot path)
    # ------------------------------------------------------------------
    def sample(self, seeds: np.ndarray, hops: int) -> np.ndarray:
        """k-hop node set — bit-exact vs ``sample_khop_nodes(..., rng=None)``.

        One ``csr_gather_rows`` over the interleaved CSR replays a whole
        frontier expansion: the gather is frontier-node-major and each
        node's span is type-inner in selection order, exactly the candidate
        order ``_expand_frontier`` emits.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            return seeds.copy()
        _, first = np.unique(seeds, return_index=True)
        frontier = seeds[np.sort(first)]
        seen = self._seen
        if seen is None:
            seen = self._seen = np.zeros(self.n, dtype=bool)
        stamp = self._stamp
        if stamp is None:
            stamp = self._stamp = np.full(self.n, -1, dtype=np.int64)
        seen[frontier] = True
        chunks = [frontier]
        for _ in range(hops):
            if frontier.size == 0:
                break
            _, gidx = csr_gather_rows(self.all_indptr, frontier)
            candidates = self.all_indices[gidx]
            if candidates.size == 0:
                break
            # Reverse scatter -> earliest occurrence wins (first-occurrence
            # dedupe without a sort), then drop already-selected nodes.
            stamp[candidates[::-1]] = np.arange(
                candidates.size - 1, -1, -1, dtype=np.int64
            )
            ordered = candidates[stamp[candidates] == np.arange(candidates.size)]
            stamp[candidates] = -1
            fresh = ordered[~seen[ordered]]
            if fresh.size == 0:
                break
            seen[fresh] = True
            chunks.append(fresh)
            frontier = fresh
        out = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        seen[out] = False
        return out

    def induced(self, nodes: np.ndarray) -> list[sp.csr_matrix]:
        """Induced sub-CSRs over the *original* adjacency (fanout-free).

        Bit-exact (including within-row entry order) vs
        ``induced_adjacencies``: a CSR row gather preserves stored order
        and the boolean column filter preserves relative order, which are
        the same two invariants the dump-column variant relies on.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        k = len(nodes)
        lookup = self._lookup
        if lookup is None:
            lookup = self._lookup = np.full(self.n, -1, dtype=np.int32)
        lookup[nodes] = np.arange(k, dtype=np.int32)
        result: list[sp.csr_matrix] = []
        for indptr, indices, data in zip(
            self.adj_indptr, self.adj_indices, self.adj_data
        ):
            out_indptr, gidx = csr_gather_rows(indptr, nodes)
            cols = lookup[indices[gidx]]
            inside = cols >= 0
            lens = np.diff(out_indptr)
            row_of = np.repeat(np.arange(k, dtype=np.int64), lens)
            kept_counts = np.bincount(row_of[inside], minlength=k)
            sub_indptr = np.zeros(k + 1, dtype=np.int32)
            np.cumsum(kept_counts, out=sub_indptr[1:])
            sub = sp.csr_matrix((k, k))
            sub.data = data[gidx][inside]
            sub.indices = cols[inside]
            sub.indptr = sub_indptr
            result.append(sub)
        lookup[nodes] = -1
        return result

    # ------------------------------------------------------------------
    # Shared-memory round trip (worker publication)
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[dict[str, np.ndarray], dict]:
        """``(arrays, meta)`` for ``SharedSnapshotStore.publish``."""
        arrays: dict[str, np.ndarray] = {
            "all_indptr": self.all_indptr,
            "all_indices": self.all_indices,
        }
        for i in range(len(self.sel_indptr)):
            arrays[f"selp:{i}"] = self.sel_indptr[i]
            arrays[f"seli:{i}"] = self.sel_indices[i]
            arrays[f"adjp:{i}"] = self.adj_indptr[i]
            arrays[f"adji:{i}"] = self.adj_indices[i]
            arrays[f"adjd:{i}"] = self.adj_data[i]
        meta = {
            "n": int(self.n),
            "n_types": len(self.sel_indptr),
            "fanout": -1 if self.fanout is None else int(self.fanout),
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict
    ) -> "PresampledGraph":
        """Rebuild from a published segment's array views (zero copy)."""
        n_types = int(meta["n_types"])
        fanout = int(meta["fanout"])
        return cls(
            n=int(meta["n"]),
            fanout=None if fanout < 0 else fanout,
            sel_indptr=[arrays[f"selp:{i}"] for i in range(n_types)],
            sel_indices=[arrays[f"seli:{i}"] for i in range(n_types)],
            all_indptr=arrays["all_indptr"],
            all_indices=arrays["all_indices"],
            adj_indptr=[arrays[f"adjp:{i}"] for i in range(n_types)],
            adj_indices=[arrays[f"adji:{i}"] for i in range(n_types)],
            adj_data=[arrays[f"adjd:{i}"] for i in range(n_types)],
        )


def _interleave_csrs(
    num_nodes: int,
    indptrs: Sequence[np.ndarray],
    indices: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-type CSRs into one node-major, type-inner CSR.

    Row ``v`` of the output is type 0's row ``v``, then type 1's, etc.,
    each in its stored order — the candidate order of one frontier node in
    ``_expand_frontier``.  Built with a counting scatter: each entry's slot
    is ``row_base + type_offset + position``, no sort needed.
    """
    per_type_counts = [np.diff(p) for p in indptrs]
    total_counts = np.zeros(num_nodes, dtype=np.int64)
    for counts in per_type_counts:
        total_counts += counts
    all_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(total_counts, out=all_indptr[1:])
    all_indices = np.empty(int(all_indptr[-1]), dtype=np.int64)
    type_offset = np.zeros(num_nodes, dtype=np.int64)
    for counts, indptr, nbrs in zip(per_type_counts, indptrs, indices):
        if len(nbrs) == 0:
            continue
        row_base = np.repeat(all_indptr[:-1] + type_offset, counts)
        within = np.arange(len(nbrs), dtype=np.int64) - np.repeat(
            indptr[:-1], counts
        )
        all_indices[row_base + within] = nbrs
        type_offset += counts
    return all_indptr, all_indices


# ----------------------------------------------------------------------
# Minibatch assembly
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Minibatch:
    """One assembled training batch (everything the compute step needs)."""

    batch: np.ndarray
    nodes: np.ndarray
    aggregators: list
    features: np.ndarray
    labels: np.ndarray


def assemble_minibatch(
    pre: PresampledGraph,
    features: np.ndarray,
    labels: np.ndarray,
    batch: np.ndarray,
    hops: int,
    profiler: TrainProfiler | NullProfiler = _NULL,
) -> Minibatch:
    """Slice one batch's subgraph + features from the presampled structure."""
    with profiler.stage("sampling"):
        nodes = pre.sample(batch, hops)
    with profiler.stage("induction"):
        aggregators = prepare_aggregators(pre.induced(nodes))
    with profiler.stage("gather"):
        batch_features = features[nodes]
        batch_labels = labels[batch]
    return Minibatch(batch, nodes, aggregators, batch_features, batch_labels)


def _batch_gradient(
    model: nn.Module,
    params: Sequence[Tensor],
    mb: Minibatch,
    pos_weight: float,
    profiler: TrainProfiler | NullProfiler = _NULL,
) -> tuple[list[np.ndarray], float]:
    """Loss gradients of one minibatch at the current parameters.

    Gradients are *stolen* off the parameters (read, then reset to None) so
    each batch's contribution is a standalone list.  A parameter used twice
    in one graph (SAO's ``p``) accumulates intra-batch here, inside
    ``backward`` — and the cross-batch sum happens only in
    :func:`fold_gradients`, in global batch order.  Workers and the parent
    both route through this function, which is what makes their float
    output interchangeable bit-for-bit.
    """
    x = Tensor(mb.features)
    with profiler.stage("forward"):
        logits = model.forward(x, mb.aggregators)
        loss = nn.bce_with_logits(
            logits.index_select(np.arange(len(mb.batch))),
            mb.labels,
            pos_weight=pos_weight,
        )
    with profiler.stage("backward"):
        loss.backward()
    grads: list[np.ndarray] = []
    for param in params:
        grads.append(
            param.grad if param.grad is not None else np.zeros_like(param.data)
        )
        param.grad = None
    return grads, float(loss.item())


def fold_gradients(
    per_batch: Sequence[Sequence[np.ndarray]], scale: float
) -> list[np.ndarray]:
    """Left-to-right fold of per-batch gradient lists, then mean scaling.

    The caller passes the lists in **global batch index** order — never in
    worker completion order — so the summed float bits are invariant to the
    worker count and to dispatch timing.  The fold mirrors
    ``Tensor._accumulate`` (copy the first contribution, then repeated
    ``a + g``), and ``scale == 1.0`` skips the multiply so a 1-batch group
    reproduces plain single-batch training exactly.
    """
    folded = [
        np.array(g, dtype=np.float64, copy=True) for g in per_batch[0]
    ]
    for grads in per_batch[1:]:
        for i, g in enumerate(grads):
            folded[i] = folded[i] + g
    if scale != 1.0:
        folded = [g * scale for g in folded]
    return folded


# ----------------------------------------------------------------------
# Prefetch pipeline
# ----------------------------------------------------------------------
class _Prefetcher:
    """Double-buffered minibatch assembly on a daemon thread.

    The bounded queue holds at most ``depth`` ready batches: batch ``t+1``
    (and ``t+2``) assemble while batch ``t`` computes, but memory stays
    bounded.  Assembly stages (``sampling``/``induction``/``gather``) are
    recorded from the worker thread while compute stages tick on the main
    thread — the stage names are disjoint, so the profiler's per-name
    accumulation never races.  The main loop's blocking ``get`` is timed as
    the ``prefetch`` stage: when the pipeline overlaps well it is near
    zero, and that is the number the benchmark asserts on.
    """

    _DONE = object()

    def __init__(
        self,
        build: Callable[[np.ndarray], Minibatch],
        batches: Sequence[np.ndarray],
        profiler: TrainProfiler | NullProfiler,
        depth: int = 2,
    ) -> None:
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._error: BaseException | None = None
        self._profiler = profiler
        self._thread = threading.Thread(
            target=self._run, args=(build, list(batches)), daemon=True
        )
        self._thread.start()

    def _run(self, build: Callable, batches: list) -> None:
        try:
            for batch in batches:
                self._queue.put(build(batch))
        except BaseException as exc:  # propagate to the consuming thread
            self._error = exc
        finally:
            self._queue.put(self._DONE)

    def __iter__(self):
        while True:
            with self._profiler.stage("prefetch"):
                item = self._queue.get()
            if item is self._DONE:
                self._thread.join()
                if self._error is not None:
                    raise self._error
                return
            yield item


# ----------------------------------------------------------------------
# Config + engine
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ParallelTrainConfig(TrainConfig):
    """:class:`~repro.core.trainer.TrainConfig` plus the engine's knobs."""

    #: gradients of this many consecutive batches are folded into one
    #: optimizer step (synchronous data parallelism with accumulation).
    #: The grouping is fixed by config — independent of ``workers`` — so
    #: the optimizer trajectory never depends on the degree of parallelism.
    sync_batches: int = 1
    #: number of forked gradient workers; 0 computes in-process.
    workers: int = 0
    #: double-buffer minibatch assembly on a background thread.
    prefetch: bool = True
    #: sample the k-hop structure once per run (vs per batch per epoch).
    presample: bool = True
    #: dispatch to one worker at a time (measurement mode: lets the
    #: benchmark time each worker's busy span uncontended on a small CPU
    #: and combine them under the deployment clock, as bench_sharding does).
    serialize_dispatch: bool = False

    def validate(self) -> None:
        # Explicit base call: dataclass(slots=True) rebuilds the class, so
        # zero-arg super() would see a stale __class__ cell.
        TrainConfig.validate(self)
        if self.sync_batches < 1:
            raise ValueError("sync_batches must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.workers > 0 and not self.presample:
            raise ValueError(
                "multi-process training requires presample=True (workers "
                "slice minibatches from the published presampled segment)"
            )


def train_parallel(
    model: nn.Module,
    adjacencies: Sequence[sp.spmatrix],
    features: np.ndarray,
    labels: np.ndarray,
    train_idx: np.ndarray,
    val_idx: np.ndarray | None = None,
    config: ParallelTrainConfig | None = None,
    hops: int = 2,
    fanout: int | None = 10,
    profiler: TrainProfiler | None = None,
) -> TrainResult:
    """Drop-in parallel replacement for ``train_with_neighbor_sampling``.

    Same protocol (shuffled batches, weighted BCE, per-epoch fanout-free
    validation subgraph, AUC early stopping, best-state restore) with the
    sampling hoisted out of the epoch loop, assembly prefetched, and
    gradient computation optionally fanned out to forked workers.  The
    fanout policy is deterministic (``rng=None``) — see the module
    docstring for why weighted-random fanout cannot be presampled.

    Randomness is threaded from ``config.seed`` through
    :meth:`TrainConfig.streams`: batch shuffling consumes the ``shuffle``
    stream and nothing else, so the epoch schedule is identical for every
    ``workers`` setting.
    """
    config = config or ParallelTrainConfig(batch_size=256)
    config.validate()
    profiler = profiler if profiler is not None else NullProfiler()
    if config.batch_size is None:
        raise ValueError("parallel training requires a batch size")
    csrs = [a.tocsr() for a in adjacencies]
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    train_idx = np.asarray(train_idx, dtype=np.int64)

    train_labels = labels[train_idx]
    n_pos = float(train_labels.sum())
    n_neg = float(len(train_labels) - n_pos)
    if config.pos_weight is not None:
        pos_weight = config.pos_weight
    elif n_pos > 0:
        pos_weight = max(1.0, n_neg / n_pos)
    else:
        pos_weight = 1.0

    params = model.parameters()
    optimizer = nn.Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    streams = config.streams()
    shuffle_rng = streams["shuffle"]

    pre: PresampledGraph | None = None
    if config.presample:
        with profiler.stage("presample"):
            pre = PresampledGraph.build(csrs, fanout)

    def build(batch: np.ndarray) -> Minibatch:
        if pre is not None:
            return assemble_minibatch(pre, features, labels, batch, hops, profiler)
        with profiler.stage("sampling"):
            nodes = sample_khop_nodes(csrs, batch, hops, fanout, None)
        with profiler.stage("induction"):
            aggregators = prepare_aggregators(induced_adjacencies(csrs, nodes))
        with profiler.stage("gather"):
            batch_features = features[nodes]
            batch_labels = labels[batch]
        return Minibatch(batch, nodes, aggregators, batch_features, batch_labels)

    pool = None
    store = None
    if config.workers > 0:
        from ..network.shm import SharedSnapshotStore
        from ..system.train_workers import TrainWorkerPool, publish_train_inputs

        store = SharedSnapshotStore(prefix=f"repro-train-{os.getpid()}")
        handle = publish_train_inputs(store, pre, features, labels, hops=hops)
        inputs = handle.segment if handle.shared else (handle.arrays, handle.meta)
        worker_seeds = [
            int(s) for s in streams["workers"].integers(0, 2**63 - 1, config.workers)
        ]
        pool = TrainWorkerPool(
            inputs,
            config.workers,
            model_payload=pickle.dumps(
                {"model": model, "pos_weight": pos_weight, "hops": hops}
            ),
            worker_seeds=worker_seeds,
        )

    result = TrainResult()
    best_state: dict[str, np.ndarray] | None = None
    best_metric = -np.inf
    stale = 0

    if val_idx is not None and len(val_idx) > 0:
        val_nodes = sample_khop_nodes(csrs, np.asarray(val_idx), hops, None)
        val_adjacencies = prepare_aggregators(induced_adjacencies(csrs, val_nodes))
        val_features = Tensor(features[val_nodes])
        val_positions = np.arange(len(val_idx))

    try:
        for epoch in range(config.epochs):
            with profiler.epoch(epoch):
                model.train()
                shuffled = shuffle_rng.permutation(train_idx)
                batches = [
                    shuffled[i : i + config.batch_size]
                    for i in range(0, len(shuffled), config.batch_size)
                ]
                if pool is not None:
                    epoch_loss = _pooled_epoch(
                        pool, model, params, optimizer, batches, config,
                        pos_weight, build, profiler,
                    )
                else:
                    epoch_loss = _inprocess_epoch(
                        model, params, optimizer, batches, config,
                        pos_weight, build, profiler,
                    )
                epoch_loss /= len(train_idx)
                result.train_losses.append(epoch_loss)
                profiler.record_loss(epoch_loss)

                if val_idx is not None and len(val_idx) > 0:
                    with profiler.stage("validation"):
                        model.eval()
                        with nn.no_grad():
                            val_logits = model.forward(
                                val_features, val_adjacencies
                            ).numpy()
                        scores = val_logits[val_positions]
                        val_labels = labels[val_idx]
                        n_val_pos = int(val_labels.sum())
                        if 0 < n_val_pos < len(val_labels):
                            result.val_aucs.append(
                                roc_auc_score(val_labels, scores)
                            )
                        if n_val_pos >= 20 and len(val_labels) - n_val_pos >= 20:
                            metric = result.val_aucs[-1]
                        else:
                            metric = -_weighted_bce(scores, val_labels, pos_weight)
                else:
                    metric = -epoch_loss

            if metric > best_metric + 1e-6:
                best_metric = metric
                result.best_epoch = epoch
                best_state = model.state_dict()
                stale = 0
            else:
                stale += 1
                if epoch + 1 >= config.min_epochs and stale >= config.patience:
                    break
    finally:
        if pool is not None:
            pool.close()
        if store is not None:
            store.close()

    if best_state is not None:
        model.load_state_dict(best_state)
    if result.val_aucs and result.best_epoch < len(result.val_aucs):
        result.best_val_auc = result.val_aucs[result.best_epoch]
    model.eval()
    return result


def _apply_step(
    optimizer: nn.Adam,
    params: Sequence[Tensor],
    per_batch: list[list[np.ndarray]],
    profiler: TrainProfiler | NullProfiler,
) -> None:
    """Fold one sync group's gradients (fixed order) and take one step."""
    with profiler.stage("reduce"):
        folded = fold_gradients(per_batch, 1.0 / len(per_batch))
        for param, grad in zip(params, folded):
            param.grad = grad
    with profiler.stage("step"):
        optimizer.step()
    for param in params:
        param.grad = None


def _inprocess_epoch(
    model: nn.Module,
    params: Sequence[Tensor],
    optimizer: nn.Adam,
    batches: list[np.ndarray],
    config: ParallelTrainConfig,
    pos_weight: float,
    build: Callable[[np.ndarray], Minibatch],
    profiler: TrainProfiler | NullProfiler,
) -> float:
    """One epoch with gradients computed in the parent process."""
    if config.prefetch:
        iterator = iter(_Prefetcher(build, batches, profiler))
    else:
        iterator = (build(batch) for batch in batches)
    epoch_loss = 0.0
    pending: list[list[np.ndarray]] = []
    for mb in iterator:
        grads, loss = _batch_gradient(model, params, mb, pos_weight, profiler)
        epoch_loss += loss * len(mb.batch)
        profiler.count_batch(len(mb.nodes))
        pending.append(grads)
        if len(pending) == config.sync_batches:
            _apply_step(optimizer, params, pending, profiler)
            pending = []
    if pending:
        _apply_step(optimizer, params, pending, profiler)
    return epoch_loss


def _pooled_epoch(
    pool,
    model: nn.Module,
    params: Sequence[Tensor],
    optimizer: nn.Adam,
    batches: list[np.ndarray],
    config: ParallelTrainConfig,
    pos_weight: float,
    build: Callable[[np.ndarray], Minibatch],
    profiler: TrainProfiler | NullProfiler,
) -> float:
    """One epoch with per-batch gradients computed by the worker pool.

    Each sync group's batches are assigned round-robin (batch ``i`` to
    worker ``i % workers``) and the results are slotted back by global
    batch index before :func:`_apply_step`, so the fold order — and hence
    the float trajectory — is identical to the in-process path.  A worker
    that died mid-group is failed over by recomputing its batches in the
    parent at the same parameter state, which is bit-identical to what the
    worker would have returned.

    Stage accounting: ``dispatch`` is parent wall time spent sending state
    and collecting results; ``workers_busy`` / ``workers_critical`` are the
    sum / max of in-child busy spans per step — the deployment-clock inputs
    (an epoch on a real multi-core host costs
    ``wall - workers_busy + workers_critical``).
    """
    epoch_loss = 0.0
    group_size = config.sync_batches
    for start in range(0, len(batches), group_size):
        group = batches[start : start + group_size]
        state = [param.data for param in params]
        n_workers = pool.n_workers
        assignment = [
            list(range(w, len(group), n_workers)) for w in range(n_workers)
        ]
        dispatch_started = time.perf_counter()
        if config.serialize_dispatch:
            raw = [
                pool.gradients(w, state, [group[i] for i in idxs])
                if idxs
                else None
                for w, idxs in enumerate(assignment)
            ]
        else:
            started = [
                bool(idxs)
                and pool.start_gradients(w, state, [group[i] for i in idxs])
                for w, idxs in enumerate(assignment)
            ]
            raw = [
                pool.finish(w) if started[w] else None
                for w in range(n_workers)
            ]
        profiler.add_stage_seconds(
            "dispatch", time.perf_counter() - dispatch_started
        )

        results: list[tuple[list[np.ndarray], float, int] | None]
        results = [None] * len(group)
        busy_spans: list[float] = []
        for w, idxs in enumerate(assignment):
            if not idxs:
                continue
            value = raw[w]
            if value is None:
                # Worker died: recompute its share in the parent.  The
                # parameters have not stepped since `state` was captured,
                # so the recomputation is bit-identical.
                for i in idxs:
                    mb = build(group[i])
                    grads, loss = _batch_gradient(
                        model, params, mb, pos_weight, profiler
                    )
                    results[i] = (grads, loss, len(mb.nodes))
                continue
            w_grads, w_losses, w_nodes, busy = value
            busy_spans.append(busy)
            for j, i in enumerate(idxs):
                results[i] = (w_grads[j], w_losses[j], w_nodes[j])
        if busy_spans:
            profiler.add_stage_seconds("workers_busy", sum(busy_spans))
            profiler.add_stage_seconds("workers_critical", max(busy_spans))

        for i, item in enumerate(results):
            grads, loss, n_nodes = item
            epoch_loss += loss * len(group[i])
            profiler.count_batch(n_nodes)
        _apply_step(optimizer, params, [item[0] for item in results], profiler)
    return epoch_loss
