"""Influence score and distribution (Definition 1; Fig. 9 case study).

The influence score ``S_i(j)`` of node ``i`` by node ``j`` is the sum of the
absolute entries of the Jacobian of ``i``'s final representation with respect
to ``j``'s input features; the influence distribution normalizes the scores
over ``j``.  We compute the Jacobian exactly with one backward pass per
output coordinate, which is affordable on case-study-sized subgraphs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..nn import Tensor

__all__ = ["influence_scores", "influence_scores_batch", "influence_distribution"]


def influence_scores(
    forward: Callable[[Tensor], Tensor],
    features: np.ndarray,
    node: int,
) -> np.ndarray:
    """``S_node(j)`` for every node ``j``, given an embedding ``forward``.

    ``forward`` maps an ``(n, d_in)`` feature tensor to ``(n, d_out)``
    node representations (e.g. ``lambda x: model.embeddings(x, aggs)``).
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if not 0 <= node < n:
        raise ValueError(f"node index {node} out of range")
    scores = np.zeros(n)
    x = Tensor(features, requires_grad=True)
    h = forward(x)
    d_out = h.shape[1] if h.ndim > 1 else 1
    for c in range(d_out):
        x.zero_grad()
        seed = np.zeros(h.shape)
        if h.ndim > 1:
            seed[node, c] = 1.0
        else:
            seed[node] = 1.0
        h.backward(seed)
        scores += np.abs(x.grad).sum(axis=1)
    return scores


def influence_scores_batch(
    forward: Callable[[Tensor], Tensor],
    features: np.ndarray,
    nodes: Sequence[int],
) -> np.ndarray:
    """``S_node(j)`` rows for several target nodes at once.

    The Jacobian seeds are constants — they do not depend on the forward
    values — so one forward graph serves every backward pass.  Row ``i``
    is bit-for-bit :func:`influence_scores` of ``nodes[i]`` (the same
    backward over the same DAG), but the forward (the expensive half on
    case-study subgraphs) is paid once instead of ``len(nodes)`` times.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    targets = [int(node) for node in nodes]
    for node in targets:
        if not 0 <= node < n:
            raise ValueError(f"node index {node} out of range")
    out = np.zeros((len(targets), n))
    x = Tensor(features, requires_grad=True)
    h = forward(x)
    d_out = h.shape[1] if h.ndim > 1 else 1
    for i, node in enumerate(targets):
        for c in range(d_out):
            x.zero_grad()
            seed = np.zeros(h.shape)
            if h.ndim > 1:
                seed[node, c] = 1.0
            else:
                seed[node] = 1.0
            h.backward(seed)
            out[i] += np.abs(x.grad).sum(axis=1)
    return out


def influence_distribution(
    forward: Callable[[Tensor], Tensor],
    features: np.ndarray,
    node: int,
) -> np.ndarray:
    """``D_node`` — influence scores normalized to sum to one."""
    scores = influence_scores(forward, features, node)
    total = scores.sum()
    if total <= 0:
        # An isolated node is influenced only by itself.
        result = np.zeros_like(scores)
        result[node] = 1.0
        return result
    return scores / total
