"""Neighbor-sampled mini-batch training (the paper's batch-256 protocol).

Full-graph training touches every node each step; the deployment-faithful
alternative — and the only one that scales past memory — is GraphSAGE-style
neighbor sampling: each step draws a batch of target nodes, expands a
fanout-capped k-hop frontier, and trains on the induced subgraph only.
The paper trains with batch size 256; this module reproduces that protocol
for HAG and the homogeneous GNNs alike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..eval.metrics import roc_auc_score
from ..nn import Tensor
from .hag import prepare_aggregators
from .trainer import TrainConfig, TrainResult, _weighted_bce

__all__ = ["sample_khop_nodes", "induced_adjacencies", "train_with_neighbor_sampling"]


def sample_khop_nodes(
    adjacencies: Sequence[sp.spmatrix],
    seeds: np.ndarray,
    hops: int = 2,
    fanout: int | None = 10,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Union k-hop node set around ``seeds`` with per-type fanout caps.

    Returns node indices with the seeds first (order preserved).
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    csrs = [a.tocsr() for a in adjacencies]
    seeds = np.asarray(seeds, dtype=np.int64)
    selected: list[int] = list(dict.fromkeys(int(s) for s in seeds))
    seen = set(selected)
    frontier = list(selected)
    for _ in range(hops):
        next_frontier: list[int] = []
        for node in frontier:
            for csr in csrs:
                start, stop = csr.indptr[node], csr.indptr[node + 1]
                neighbors = csr.indices[start:stop]
                if fanout is not None and len(neighbors) > fanout:
                    weights = csr.data[start:stop]
                    if rng is None:
                        keep = np.argsort(-weights, kind="stable")[:fanout]
                    else:
                        p = weights / weights.sum()
                        keep = rng.choice(len(neighbors), size=fanout, replace=False, p=p)
                    neighbors = neighbors[keep]
                for neighbor in neighbors:
                    v = int(neighbor)
                    if v not in seen:
                        seen.add(v)
                        selected.append(v)
                        next_frontier.append(v)
        frontier = next_frontier
    return np.asarray(selected, dtype=np.int64)


def induced_adjacencies(
    adjacencies: Sequence[sp.spmatrix], nodes: np.ndarray
) -> list[sp.csr_matrix]:
    """Node-induced sub-adjacency per type, indexed like ``nodes``."""
    return [a.tocsr()[np.ix_(nodes, nodes)].tocsr() for a in adjacencies]


def train_with_neighbor_sampling(
    model: nn.Module,
    adjacencies: Sequence[sp.spmatrix],
    features: np.ndarray,
    labels: np.ndarray,
    train_idx: np.ndarray,
    val_idx: np.ndarray | None = None,
    config: TrainConfig | None = None,
    hops: int = 2,
    fanout: int | None = 10,
) -> TrainResult:
    """Train a graph model on sampled batch subgraphs.

    ``model.forward(x, aggregators)`` must accept a feature tensor and a
    list of per-type aggregation matrices (HAG's interface; the homogeneous
    baselines can be adapted with a single-element list).
    """
    config = config or TrainConfig(batch_size=256)
    config.validate()
    if config.batch_size is None:
        raise ValueError("neighbor-sampled training requires a batch size")
    rng = np.random.default_rng(config.seed)
    labels = np.asarray(labels, dtype=np.float64)
    train_idx = np.asarray(train_idx, dtype=np.int64)

    train_labels = labels[train_idx]
    n_pos = float(train_labels.sum())
    n_neg = float(len(train_labels) - n_pos)
    if config.pos_weight is not None:
        pos_weight = config.pos_weight
    elif n_pos > 0:
        pos_weight = max(1.0, n_neg / n_pos)
    else:
        pos_weight = 1.0

    optimizer = nn.Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    result = TrainResult()
    best_state = None
    best_metric = -np.inf
    stale = 0

    # Validation is evaluated on its own (fanout-free) subgraph once per epoch.
    if val_idx is not None and len(val_idx) > 0:
        val_nodes = sample_khop_nodes(adjacencies, np.asarray(val_idx), hops, None)
        val_adjacencies = prepare_aggregators(induced_adjacencies(adjacencies, val_nodes))
        val_features = Tensor(features[val_nodes])
        val_positions = np.arange(len(val_idx))

    for epoch in range(config.epochs):
        model.train()
        shuffled = rng.permutation(train_idx)
        epoch_loss = 0.0
        for start in range(0, len(shuffled), config.batch_size):
            batch = shuffled[start : start + config.batch_size]
            nodes = sample_khop_nodes(adjacencies, batch, hops, fanout, rng)
            aggregators = prepare_aggregators(induced_adjacencies(adjacencies, nodes))
            x = Tensor(features[nodes])
            optimizer.zero_grad()
            logits = model.forward(x, aggregators)
            batch_positions = np.arange(len(batch))
            loss = nn.bce_with_logits(
                logits.index_select(batch_positions),
                labels[batch],
                pos_weight=pos_weight,
            )
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item() * len(batch)
        epoch_loss /= len(train_idx)
        result.train_losses.append(epoch_loss)

        if val_idx is not None and len(val_idx) > 0:
            model.eval()
            with nn.no_grad():
                val_logits = model.forward(val_features, val_adjacencies).numpy()
            scores = val_logits[val_positions]
            val_labels = labels[val_idx]
            n_val_pos = int(val_labels.sum())
            if 0 < n_val_pos < len(val_labels):
                result.val_aucs.append(roc_auc_score(val_labels, scores))
            if n_val_pos >= 20 and len(val_labels) - n_val_pos >= 20:
                metric = result.val_aucs[-1]
            else:
                metric = -_weighted_bce(scores, val_labels, pos_weight)
        else:
            metric = -epoch_loss

        if metric > best_metric + 1e-6:
            best_metric = metric
            result.best_epoch = epoch
            best_state = model.state_dict()
            stale = 0
        else:
            stale += 1
            if epoch + 1 >= config.min_epochs and stale >= config.patience:
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    if result.val_aucs and result.best_epoch < len(result.val_aucs):
        result.best_val_auc = result.val_aucs[result.best_epoch]
    model.eval()
    return result
