"""Neighbor-sampled mini-batch training (the paper's batch-256 protocol).

Full-graph training touches every node each step; the deployment-faithful
alternative — and the only one that scales past memory — is GraphSAGE-style
neighbor sampling: each step draws a batch of target nodes, expands a
fanout-capped k-hop frontier, and trains on the induced subgraph only.
The paper trains with batch size 256; this module reproduces that protocol
for HAG and the homogeneous GNNs alike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..eval.metrics import roc_auc_score
from ..nn import Tensor
from ..obs.profiling import NullProfiler, TrainProfiler
from .hag import prepare_aggregators
from .trainer import TrainConfig, TrainResult, _weighted_bce

__all__ = [
    "sample_khop_nodes",
    "sample_khop_nodes_reference",
    "induced_adjacencies",
    "induced_adjacencies_reference",
    "train_with_neighbor_sampling",
]


def _weighted_keep(
    weights: np.ndarray, fanout: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a weighted ``fanout``-subset draw without replacement.

    ``rng.choice(..., replace=False, p=p)`` raises when fewer than
    ``fanout`` entries carry probability mass; in that case keep the whole
    nonzero support and top up deterministically with the first zero-weight
    entries in index order.  Shared by the vectorized sampler and the
    reference so both consume the rng stream identically.
    """
    if fanout == 0:
        return np.empty(0, dtype=np.int64)
    support = np.flatnonzero(weights > 0)
    if len(support) < fanout:
        zero = np.flatnonzero(weights <= 0)[: fanout - len(support)]
        return np.concatenate([support, zero])
    p = weights / weights.sum()
    return rng.choice(len(weights), size=fanout, replace=False, p=p)


def _topk_rank_group(
    data: np.ndarray,
    flat: np.ndarray,
    counts: np.ndarray,
    excl: np.ndarray,
    segs: np.ndarray,
    fanout: int,
    keep: np.ndarray,
    key: np.ndarray,
) -> None:
    """Write top-``fanout`` survivors and their ranks for oversized segments.

    Each segment's elements are ranked by (weight desc, CSR position asc) —
    identical to the reference's stable argsort — with survivors marked in
    ``keep`` and their selection order in ``key``.  Two execution shapes:

    * a per-segment O(c) argpartition loop, used for few segments or for
      groups so skewed that padding to the longest segment would waste the
      batched work;
    * a padded ``(n_seg, max_count)`` batch (+inf padding sorts last): one
      stable row argsort when rows are narrow — dispatch-cheap and exact on
      ties — or an O(w) row partition plus explicit boundary-tie resolution
      in column order when rows are wide.

    Callers split mixed degree distributions into narrow/wide groups first
    so hub segments never inflate the padding of the bulk.
    """
    n_seg = len(segs)
    gcounts = counts[segs]
    gmax = int(gcounts.max())
    gtotal = int(gcounts.sum())
    wide = gmax > max(64, 2 * fanout)
    if n_seg <= 16 or (
        wide and (n_seg <= 256 or n_seg * gmax > 4 * gtotal)
    ):
        for s in segs:
            lo = int(excl[s])
            hi = lo + int(counts[s])
            w = data[flat[lo:hi]]
            top = np.argpartition(-w, fanout - 1)[:fanout]
            vstar = w[top].min()
            strict = np.flatnonzero(w > vstar)
            ties = np.flatnonzero(w == vstar)
            kept_idx = np.concatenate([strict, ties[: fanout - len(strict)]])
            order = kept_idx[np.argsort(-w[kept_idx], kind="stable")]
            keep[lo:hi] = False
            keep[lo + order] = True
            key[lo + order] = np.arange(fanout)
        return

    gexcl = np.concatenate(([0], np.cumsum(gcounts)[:-1]))
    gidx = np.repeat(excl[segs] - gexcl, gcounts) + np.arange(gtotal)
    w = data[flat[gidx]]
    brow = np.repeat(np.arange(n_seg), gcounts)
    bcol = np.arange(gtotal) - np.repeat(gexcl, gcounts)
    pad = np.full((n_seg, gmax), np.inf)
    pad[brow, bcol] = -w
    if not wide:
        order = np.argsort(pad, axis=1, kind="stable")
        ranks = np.empty((n_seg, gmax), dtype=np.int64)
        np.put_along_axis(
            ranks,
            order,
            np.broadcast_to(np.arange(gmax), (n_seg, gmax)),
            axis=1,
        )
        rflat = ranks[brow, bcol]
        keep[gidx] = rflat < fanout
        key[gidx] = rflat
    else:
        top = np.partition(pad, fanout - 1, axis=1)[:, fanout - 1]
        strict = pad < top[:, None]
        tie = pad == top[:, None]
        n_strict = strict.sum(axis=1)
        tie_rank = np.cumsum(tie, axis=1)
        kept2d = strict | (tie & (tie_rank <= (fanout - n_strict)[:, None]))
        # Rank the fanout survivors of each row by (weight desc, column
        # asc).  Extracting with the boolean mask walks rows in column
        # order, so a stable small argsort inherits the tie order.
        vals = pad[kept2d].reshape(n_seg, fanout)
        order = np.argsort(vals, axis=1, kind="stable")
        ranks = np.empty((n_seg, fanout), dtype=np.int64)
        np.put_along_axis(
            ranks,
            order,
            np.broadcast_to(np.arange(fanout), (n_seg, fanout)),
            axis=1,
        )
        kept_flat = kept2d[brow, bcol]
        keep[gidx] = kept_flat
        key[gidx[kept_flat]] = ranks.ravel()


def _expand_frontier(
    csrs: Sequence[sp.csr_matrix],
    frontier: np.ndarray,
    fanout: int | None,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """One hop of whole-frontier expansion via ``indptr``/``indices`` slicing.

    Returns candidate neighbour ids (duplicates included) ordered exactly
    like the reference loop: frontier-node-major, adjacency-matrix-inner,
    and within each (node, matrix) segment either the CSR's stored order
    (small segments) or the fanout selection order (capped segments).

    Each kept element's within-segment ranks are contiguous from zero, so
    its output position is ``base[segment] + type_offset + rank`` where the
    offsets come from cumulative kept-counts — the ordering is a direct
    counting scatter, no sort required.
    """
    n_types = len(csrs)
    n_front = len(frontier)
    if n_front == 0 or fanout == 0:
        # fanout 0 keeps nothing anywhere (and consumes no rng draws).
        return np.empty(0, dtype=np.int64)
    # One entry per type with candidates: (ti, neigh, counts, excl, seg,
    # key, keep); the last three stay None when every candidate is kept.
    parts: list[tuple] = []
    pending: list[tuple[int, int, int, int, int, np.ndarray]] = []
    # kept[ti, s] = how many neighbours survive for frontier node s, type ti.
    kept_counts = np.zeros((n_types, n_front), dtype=np.int64)

    for ti, csr in enumerate(csrs):
        starts = csr.indptr[frontier]
        stops = csr.indptr[frontier + 1]
        counts = (stops - starts).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            continue
        excl = np.concatenate(([0], np.cumsum(counts)[:-1]))
        flat = np.repeat(starts - excl, counts) + np.arange(total)
        kept_counts[ti] = counts if fanout is None else np.minimum(counts, fanout)
        seg = key = keep = None

        if fanout is not None:
            big = counts > fanout
            if np.any(big):
                seg = np.repeat(np.arange(n_front), counts)
                key = np.arange(total) - np.repeat(excl, counts)
                keep = np.ones(total, dtype=bool)
                if rng is None:
                    # Segment-wise top-k over the oversized segments only.
                    # Hub-style segments (wide) and bulk segments (narrow)
                    # get ranked as separate groups so a handful of
                    # hot-spot nodes never dictates the padding of the
                    # thousands of ordinary ones.
                    big_segs = np.flatnonzero(big)
                    bcounts = counts[big_segs]
                    wide = bcounts > max(64, 2 * fanout)
                    if wide.any() and not wide.all():
                        groups = (big_segs[~wide], big_segs[wide])
                    else:
                        groups = (big_segs,)
                    for group in groups:
                        _topk_rank_group(
                            csr.data, flat, counts, excl, group,
                            fanout, keep, key,
                        )
                else:
                    # Weighted draws consume the rng stream per oversized
                    # segment; queue them so the draws happen in the
                    # reference's (node, matrix) order across all matrices.
                    keep = ~big[seg]
                    part = len(parts)
                    for s in np.flatnonzero(big):
                        lo = int(excl[s])
                        hi = lo + int(counts[s])
                        pending.append(
                            (int(s), ti, part, lo, hi, csr.data[flat[lo:hi]])
                        )
        parts.append((ti, csr.indices[flat], counts, excl, seg, key, keep))

    if not parts:
        return np.empty(0, dtype=np.int64)

    if pending:
        pending.sort(key=lambda item: (item[0], item[1]))
        for _seg, _ti, part, lo, _hi, weights in pending:
            chosen = _weighted_keep(weights, fanout, rng)
            parts[part][6][lo + chosen] = True
            parts[part][5][lo + chosen] = np.arange(len(chosen))

    # Counting scatter: each kept element's output slot is the number of
    # kept elements that precede it in (segment, type, rank) order.
    totals_per_seg = kept_counts.sum(axis=0)
    base = np.concatenate(([0], np.cumsum(totals_per_seg)[:-1]))
    type_offset = np.cumsum(kept_counts, axis=0) - kept_counts
    out = np.empty(int(totals_per_seg.sum()), dtype=np.int64)
    for ti, neigh, counts, excl, seg, key, keep in parts:
        if key is None:
            # All kept: positions are contiguous per segment, so build them
            # with the same repeat-plus-arange trick used for `flat`.
            slot = base + type_offset[ti] - excl
            out[np.repeat(slot, counts) + np.arange(len(neigh))] = neigh
        else:
            kidx = np.flatnonzero(keep)
            segk = seg[kidx]
            out[base[segk] + type_offset[ti, segk] + key[kidx]] = neigh[kidx]
    return out


def sample_khop_nodes(
    adjacencies: Sequence[sp.spmatrix],
    seeds: np.ndarray,
    hops: int = 2,
    fanout: int | None = 10,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Union k-hop node set around ``seeds`` with per-type fanout caps.

    Returns node indices with the seeds first (order preserved).  The
    expansion is fully vectorized — whole frontiers at a time — and returns
    node sets *identical* to :func:`sample_khop_nodes_reference`, including
    order, fanout tie-breaking, and rng stream consumption.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    csrs = [a.tocsr() for a in adjacencies]
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        return seeds.copy()
    _, first = np.unique(seeds, return_index=True)
    frontier = seeds[np.sort(first)]
    if not csrs:
        return frontier
    chunks = [frontier]
    seen = np.zeros(csrs[0].shape[0], dtype=bool)
    seen[frontier] = True
    for _ in range(hops):
        if frontier.size == 0:
            break
        candidates = _expand_frontier(csrs, frontier, fanout, rng)
        if candidates.size == 0:
            break
        # First-occurrence dedupe, then drop already-selected nodes — the
        # vectorized equivalent of the reference's sequential `seen` check.
        # Scattering positions in reverse makes the earliest occurrence the
        # surviving write, so no sort is needed.
        stamp = np.full(seen.shape[0], -1, dtype=np.int32)
        stamp[candidates[::-1]] = np.arange(
            candidates.size - 1, -1, -1, dtype=np.int32
        )
        ordered = candidates[stamp[candidates] == np.arange(candidates.size)]
        fresh = ordered[~seen[ordered]]
        if fresh.size == 0:
            break
        seen[fresh] = True
        chunks.append(fresh)
        frontier = fresh
    return np.concatenate(chunks)


def sample_khop_nodes_reference(
    adjacencies: Sequence[sp.spmatrix],
    seeds: np.ndarray,
    hops: int = 2,
    fanout: int | None = 10,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-node Python-loop sampler; kept to pin :func:`sample_khop_nodes`."""
    if hops < 0:
        raise ValueError("hops must be non-negative")
    csrs = [a.tocsr() for a in adjacencies]
    seeds = np.asarray(seeds, dtype=np.int64)
    selected: list[int] = list(dict.fromkeys(int(s) for s in seeds))
    seen = set(selected)
    frontier = list(selected)
    for _ in range(hops):
        next_frontier: list[int] = []
        for node in frontier:
            for csr in csrs:
                start, stop = csr.indptr[node], csr.indptr[node + 1]
                neighbors = csr.indices[start:stop]
                if fanout is not None and len(neighbors) > fanout:
                    weights = csr.data[start:stop]
                    if rng is None:
                        keep = np.argsort(-weights, kind="stable")[:fanout]
                    else:
                        keep = _weighted_keep(weights, fanout, rng)
                    neighbors = neighbors[keep]
                for neighbor in neighbors:
                    v = int(neighbor)
                    if v not in seen:
                        seen.add(v)
                        selected.append(v)
                        next_frontier.append(v)
        frontier = next_frontier
    return np.asarray(selected, dtype=np.int64)


def induced_adjacencies(
    adjacencies: Sequence[sp.spmatrix], nodes: np.ndarray
) -> list[sp.csr_matrix]:
    """Node-induced sub-adjacency per type, indexed like ``nodes``.

    Gathers the kept rows with scipy's C row indexer, then remaps columns
    through a lookup array — O(edges touched), versus the full fancy-index
    machinery (column argsort plus O(columns) bookkeeping per matrix) of
    the reference path.  Out-of-subgraph neighbours are remapped to a dump
    column ``k`` and dropped by a single C-level column slice, so no numpy
    boolean compaction pass is needed.  ``nodes`` must not contain
    duplicates (the sampler never produces them).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    k = len(nodes)
    result: list[sp.csr_matrix] = []
    lookup: np.ndarray | None = None
    for a in adjacencies:
        csr = a.tocsr()
        if lookup is None or lookup.shape[0] != csr.shape[1]:
            lookup = np.full(csr.shape[1], k, dtype=np.int32)
            lookup[nodes] = np.arange(k, dtype=np.int32)
        rows = csr[nodes]
        # Reinterpret the (k, n) row slab as (k, k+1) by remapping columns
        # — attribute assignment skips re-validation — then drop column k.
        wide = sp.csr_matrix((k, k + 1))
        wide.data = rows.data
        wide.indices = lookup[rows.indices]
        wide.indptr = rows.indptr.astype(np.int32, copy=False)
        result.append(wide[:, :k])
    return result


def induced_adjacencies_reference(
    adjacencies: Sequence[sp.spmatrix], nodes: np.ndarray
) -> list[sp.csr_matrix]:
    """Double fancy-index induction; kept to pin :func:`induced_adjacencies`."""
    return [a.tocsr()[np.ix_(nodes, nodes)].tocsr() for a in adjacencies]


def train_with_neighbor_sampling(
    model: nn.Module,
    adjacencies: Sequence[sp.spmatrix],
    features: np.ndarray,
    labels: np.ndarray,
    train_idx: np.ndarray,
    val_idx: np.ndarray | None = None,
    config: TrainConfig | None = None,
    hops: int = 2,
    fanout: int | None = 10,
    profiler: TrainProfiler | None = None,
) -> TrainResult:
    """Train a graph model on sampled batch subgraphs.

    ``model.forward(x, aggregators)`` must accept a feature tensor and a
    list of per-type aggregation matrices (HAG's interface; the homogeneous
    baselines can be adapted with a single-element list).

    ``profiler`` (optional :class:`~repro.obs.profiling.TrainProfiler`)
    additionally times the ``sampling`` and ``induction`` stages and counts
    the sampled subgraph nodes of every batch.
    """
    config = config or TrainConfig(batch_size=256)
    config.validate()
    profiler = profiler if profiler is not None else NullProfiler()
    if config.batch_size is None:
        raise ValueError("neighbor-sampled training requires a batch size")
    rng = np.random.default_rng(config.seed)
    labels = np.asarray(labels, dtype=np.float64)
    train_idx = np.asarray(train_idx, dtype=np.int64)

    train_labels = labels[train_idx]
    n_pos = float(train_labels.sum())
    n_neg = float(len(train_labels) - n_pos)
    if config.pos_weight is not None:
        pos_weight = config.pos_weight
    elif n_pos > 0:
        pos_weight = max(1.0, n_neg / n_pos)
    else:
        pos_weight = 1.0

    optimizer = nn.Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    result = TrainResult()
    best_state = None
    best_metric = -np.inf
    stale = 0

    # Validation is evaluated on its own (fanout-free) subgraph once per epoch.
    if val_idx is not None and len(val_idx) > 0:
        val_nodes = sample_khop_nodes(adjacencies, np.asarray(val_idx), hops, None)
        val_adjacencies = prepare_aggregators(induced_adjacencies(adjacencies, val_nodes))
        val_features = Tensor(features[val_nodes])
        val_positions = np.arange(len(val_idx))

    for epoch in range(config.epochs):
        with profiler.epoch(epoch):
            model.train()
            shuffled = rng.permutation(train_idx)
            epoch_loss = 0.0
            for start in range(0, len(shuffled), config.batch_size):
                batch = shuffled[start : start + config.batch_size]
                with profiler.stage("sampling"):
                    nodes = sample_khop_nodes(adjacencies, batch, hops, fanout, rng)
                with profiler.stage("induction"):
                    aggregators = prepare_aggregators(
                        induced_adjacencies(adjacencies, nodes)
                    )
                x = Tensor(features[nodes])
                optimizer.zero_grad()
                with profiler.stage("forward"):
                    logits = model.forward(x, aggregators)
                    batch_positions = np.arange(len(batch))
                    loss = nn.bce_with_logits(
                        logits.index_select(batch_positions),
                        labels[batch],
                        pos_weight=pos_weight,
                    )
                with profiler.stage("backward"):
                    loss.backward()
                with profiler.stage("step"):
                    optimizer.step()
                epoch_loss += loss.item() * len(batch)
                profiler.count_batch(len(nodes))
            epoch_loss /= len(train_idx)
            result.train_losses.append(epoch_loss)
            profiler.record_loss(epoch_loss)

            if val_idx is not None and len(val_idx) > 0:
                with profiler.stage("validation"):
                    model.eval()
                    with nn.no_grad():
                        val_logits = model.forward(
                            val_features, val_adjacencies
                        ).numpy()
                    scores = val_logits[val_positions]
                    val_labels = labels[val_idx]
                    n_val_pos = int(val_labels.sum())
                    if 0 < n_val_pos < len(val_labels):
                        result.val_aucs.append(roc_auc_score(val_labels, scores))
                    if n_val_pos >= 20 and len(val_labels) - n_val_pos >= 20:
                        metric = result.val_aucs[-1]
                    else:
                        metric = -_weighted_bce(scores, val_labels, pos_weight)
            else:
                metric = -epoch_loss

        if metric > best_metric + 1e-6:
            best_metric = metric
            result.best_epoch = epoch
            best_state = model.state_dict()
            stale = 0
        else:
            stale += 1
            if epoch + 1 >= config.min_epochs and stale >= config.patience:
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    if result.val_aucs and result.best_epoch < len(result.val_aucs):
        result.best_val_auc = result.val_aucs[result.best_epoch]
    model.eval()
    return result
