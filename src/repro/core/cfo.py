"""Cross-type Fusion Operator (CFO) — Section IV-B, Eq. 10–15.

BN is a superposition of homogeneous subgraphs ``G^r``; the certainty of an
edge varies by type (a shared device is near-certain, a shared public Wi-Fi
is weak evidence), and the usefulness of a type also varies per node.  CFO
fuses the per-type embeddings produced by SAO towers with *node-wise*
attention (micro level, Eq. 12) and a per-type transformation matrix
``M_r`` (macro level, Eq. 13)::

    H_v       = (h_v,1, ..., h_v,|R|)                     (11)  (d_k x |R|)
    alpha_v,r = softmax_r(v_r^T tanh(W_r H_v))^T          (12)  (|R| vector)
    fused_v,r = M_r^T H_v alpha_v,r                       (13)  (d_m vector)

The operator returns the concatenation of the per-type fused vectors
(``d_m * |R|``), which the classification MLP consumes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import nn
from ..nn import Tensor

__all__ = ["CFOLayer"]


class CFOLayer(nn.Module):
    """Fuse ``|R|`` per-type node embeddings into one representation."""

    def __init__(
        self,
        n_types: int,
        embed_dim: int,
        att_dim: int,
        out_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if n_types < 1:
            raise ValueError("CFO needs at least one edge type")
        self.n_types = n_types
        self.embed_dim = embed_dim  # d_k
        self.out_dim = out_dim  # d_m
        # Per-type attention parameters (Eq. 12): W_r in R^{d_a x d_k},
        # v_r in R^{d_a}; and macro transformation M_r in R^{d_k x d_m}.
        self.w_att = [nn.xavier_uniform((embed_dim, att_dim), rng) for _ in range(n_types)]
        self.v_att = [nn.normal((att_dim,), rng, std=0.1) for _ in range(n_types)]
        self.m_trans = [nn.xavier_uniform((embed_dim, out_dim), rng) for _ in range(n_types)]

    @property
    def output_dim(self) -> int:
        return self.out_dim * self.n_types

    def forward(self, type_embeddings: Sequence[Tensor]) -> Tensor:
        """``type_embeddings[r]`` has shape ``(n, d_k)``; returns ``(n, d_m*|R|)``."""
        if len(type_embeddings) != self.n_types:
            raise ValueError(
                f"expected {self.n_types} type embeddings, got {len(type_embeddings)}"
            )
        # H: (n, |R|, d_k) — node-wise stacked type embeddings (Eq. 11).
        h = nn.stack(list(type_embeddings), axis=1)
        fused: list[Tensor] = []
        for r in range(self.n_types):
            # tanh(W_r H_v): (n, |R|, d_a); scores v_r^T(...): (n, |R|).
            projected = (h @ self.w_att[r]).tanh()
            scores = projected @ self.v_att[r]
            alpha = scores.softmax(axis=1)  # (n, |R|) — Eq. 12
            # H_v alpha_v,r: weighted mix over types, then macro M_r^T (Eq. 13).
            mixed = (alpha.reshape(alpha.shape[0], self.n_types, 1) * h).sum(axis=1)
            fused.append(mixed @ self.m_trans[r])
        return nn.concat(fused, axis=1)

    def attention_matrix(self, type_embeddings: Sequence[Tensor]) -> np.ndarray:
        """Per-node attention coefficients ``alpha_v`` (n, |R|, |R|) for analysis."""
        with nn.no_grad():
            h = nn.stack(list(type_embeddings), axis=1)
            rows = []
            for r in range(self.n_types):
                projected = (h @ self.w_att[r]).tanh()
                scores = projected @ self.v_att[r]
                rows.append(scores.softmax(axis=1).numpy())
        return np.stack(rows, axis=1)
