"""The paper's primary contribution: SAO, CFO, HAG, and its training loop."""

from .cfo import CFOLayer
from .hag import HAG, prepare_aggregators
from .influence import (
    influence_distribution,
    influence_scores,
    influence_scores_batch,
)
from .lambda_infer import HAGState, materialize
from .minibatch import (
    induced_adjacencies,
    induced_adjacencies_reference,
    sample_khop_nodes,
    sample_khop_nodes_reference,
    train_with_neighbor_sampling,
)
from .sao import SAOLayer, neighbor_mean_matrix
from .train_engine import (
    Minibatch,
    ParallelTrainConfig,
    PresampledGraph,
    assemble_minibatch,
    fold_gradients,
    train_parallel,
)
from .trainer import TrainConfig, TrainResult, train_node_classifier

__all__ = [
    "SAOLayer",
    "neighbor_mean_matrix",
    "CFOLayer",
    "HAG",
    "prepare_aggregators",
    "HAGState",
    "materialize",
    "TrainConfig",
    "TrainResult",
    "train_node_classifier",
    "influence_scores",
    "influence_scores_batch",
    "influence_distribution",
    "sample_khop_nodes",
    "sample_khop_nodes_reference",
    "induced_adjacencies",
    "induced_adjacencies_reference",
    "train_with_neighbor_sampling",
    "PresampledGraph",
    "Minibatch",
    "ParallelTrainConfig",
    "assemble_minibatch",
    "fold_gradients",
    "train_parallel",
]
