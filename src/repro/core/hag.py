"""HAG — Heterogeneous Adaptive Graph neural network (Section IV).

Architecture (paper settings: ``k = 2`` layers with 128 and 64 hidden units,
attention layers of 64 units, cascaded by an MLP with 32 hidden units):

1. per edge type ``r``, a tower of :class:`~repro.core.sao.SAOLayer` operating
   on the homogeneous subgraph ``G^r`` produces the type embedding
   ``h_v,r`` (Eq. 10);
2. :class:`~repro.core.cfo.CFOLayer` fuses the type embeddings with
   node-wise cross-type attention (Eq. 11–15);
3. an MLP head maps the fused representation to a fraud logit.

Ablation switches map onto Table V:

* ``use_sao=False`` → SAO(-): Eq. 5's gate removed (plain skip-connection);
* ``use_cfo=False`` → CFO(-): edge types collapsed into one merged graph,
  a single SAO tower, no fusion;
* both false → Both(-).

HAG is inductive: ``forward`` takes whatever adjacency it is given, so
prediction on a sampled computation subgraph uses exactly the same code path
as training on the full BN.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from .. import nn
from ..nn import Tensor
from ..network.sampling import ComputationSubgraph
from .cfo import CFOLayer
from .sao import SAOLayer, neighbor_mean_matrix

__all__ = ["HAG", "prepare_aggregators"]


def _block_diag_csr(
    blocks: Sequence[sp.csr_matrix | None], sizes: Sequence[int]
) -> sp.csr_matrix:
    """Block-diagonal CSR assembled by direct index concatenation.

    Equivalent to ``sp.block_diag(blocks, format="csr")`` for square CSR
    blocks — same indptr/indices/data, hence bit-identical downstream row
    reductions — but without the COO round-trip, and ``None`` entries stand
    in for all-zero blocks so callers never materialize empty matrices.
    """
    total = int(sum(sizes))
    indptr = np.zeros(total + 1, dtype=np.int64)
    indices_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    row = 0
    offset = 0
    nnz = 0
    for block, n in zip(blocks, sizes):
        if block is not None and block.nnz:
            indptr[row + 1 : row + n + 1] = nnz + block.indptr[1:]
            indices_parts.append(block.indices.astype(np.int64) + offset)
            data_parts.append(block.data)
            nnz += int(block.indptr[-1])
        else:
            indptr[row + 1 : row + n + 1] = nnz
        row += n
        offset += n
    indices = (
        np.concatenate(indices_parts)
        if indices_parts
        else np.empty(0, dtype=np.int64)
    )
    data = np.concatenate(data_parts) if data_parts else np.empty(0)
    return sp.csr_matrix((data, indices, indptr), shape=(total, total))


def prepare_aggregators(
    adjacencies: Sequence[sp.spmatrix] | sp.spmatrix,
) -> list[nn.PreparedAggregator]:
    """Convert raw per-type adjacency matrices to Eq. 6 aggregators.

    Each aggregator is wrapped in :class:`repro.nn.PreparedAggregator` so a
    training run builds its CSR transpose at most once (and a forward-only
    pass never builds it) — see ``docs/PERFORMANCE.md``.
    """
    if sp.issparse(adjacencies):
        adjacencies = [adjacencies]
    return [nn.PreparedAggregator(neighbor_mean_matrix(a)) for a in adjacencies]


class HAG(nn.Module):
    """The full HAG classifier.

    Parameters
    ----------
    in_dim:
        Node feature dimensionality (``X_{u+tau}`` + ``X_s``).
    n_types:
        Number of BN edge types ``|R|`` (ignored when ``use_cfo=False``).
    rng:
        Generator for weight initialization.
    hidden:
        SAO tower widths (the paper uses ``(128, 64)``).
    att_dim:
        Hidden size of the SAO attention layers (paper: 64).
    cfo_att_dim / cfo_out_dim:
        CFO attention size ``d_a`` and per-type output size ``d_m``.
    mlp_hidden:
        Classification head widths (paper: ``(32,)``).
    use_sao / use_cfo:
        Table V ablation switches.
    """

    def __init__(
        self,
        in_dim: int,
        n_types: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = (128, 64),
        att_dim: int = 64,
        cfo_att_dim: int = 64,
        cfo_out_dim: int = 16,
        mlp_hidden: Sequence[int] = (32,),
        use_sao: bool = True,
        use_cfo: bool = True,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if not hidden:
            raise ValueError("at least one SAO layer width is required")
        self.in_dim = in_dim
        self.use_sao = use_sao
        self.use_cfo = use_cfo
        self.n_types = n_types if use_cfo else 1
        self.hidden = tuple(hidden)

        widths = [in_dim, *hidden]
        self.towers = nn.ModuleList(
            nn.ModuleList(
                SAOLayer(a, b, att_dim, rng, use_attention=use_sao)
                for a, b in zip(widths[:-1], widths[1:])
            )
            for _ in range(self.n_types)
        )
        if use_cfo:
            self.cfo: CFOLayer | None = CFOLayer(
                n_types=self.n_types,
                embed_dim=hidden[-1],
                att_dim=cfo_att_dim,
                out_dim=cfo_out_dim,
                rng=rng,
            )
            head_in = self.cfo.output_dim
        else:
            self.cfo = None
            head_in = hidden[-1]
        self.head = nn.MLP(head_in, mlp_hidden, 1, rng, dropout=dropout)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def layer_states(
        self,
        x: Tensor,
        aggregators: Sequence[sp.csr_matrix],
        observer: Callable[[str], None] | None = None,
    ) -> tuple[Tensor, list[list[Tensor]]]:
        """Fused representation plus every tower's per-layer hidden states.

        ``states[t][k]`` is tower ``t``'s output after SAO layer ``k`` —
        the layer-``k`` aggregation state the lambda batch layer
        checkpoints (:mod:`repro.core.lambda_infer`).  The computation is
        exactly :meth:`embeddings`; the intermediate tensors are simply
        kept instead of discarded.

        ``observer`` (if given) is called with a stage name after each SAO
        layer (``"tower{t}.layer{k}"``) and after fusion (``"fused"``) —
        the lambda batch tier derives per-layer span timings from the call
        sequence.
        """
        if len(aggregators) != self.n_types:
            raise ValueError(
                f"expected {self.n_types} aggregators, got {len(aggregators)}"
            )
        type_embeddings: list[Tensor] = []
        states: list[list[Tensor]] = []
        for t, (tower, aggregator) in enumerate(zip(self.towers, aggregators)):
            h = x
            tower_states: list[Tensor] = []
            for k, layer in enumerate(tower):
                h = layer(h, aggregator)
                tower_states.append(h)
                if observer is not None:
                    observer(f"tower{t}.layer{k}")
            states.append(tower_states)
            type_embeddings.append(h)
        fused = self.cfo(type_embeddings) if self.cfo is not None else type_embeddings[0]
        if observer is not None:
            observer("fused")
        return fused, states

    def layer_states_rows(
        self,
        rows: np.ndarray,
        inputs_fn: Callable[[int, int, np.ndarray | None], np.ndarray],
        aggregators: Sequence[sp.csr_matrix],
        observer: Callable[[str], None] | None = None,
    ) -> tuple[Tensor, list[list[Tensor]]]:
        """:meth:`layer_states` restricted to ``rows`` of the output.

        The incremental rematerialization path: each aggregator is the
        *rectangular* slice ``A_mean[rows]`` of the full Eq. 6 aggregation
        matrix, and ``inputs_fn(t, k, fresh_prev)`` returns the **full**
        layer-``k`` input matrix for tower ``t`` — prior-state rows outside
        the cone, freshly computed rows (``fresh_prev``, aligned with
        ``rows``; ``None`` for ``k == 0``) inside it.  Because
        :meth:`SAOLayer.combine <repro.core.sao.SAOLayer.combine>` is
        row-local and a CSR row slice preserves each kept row's entries
        bit-for-bit, every ``spmm``/``combine`` here reproduces exactly the
        cone rows the full pass would compute (up to BLAS reduction order
        in the dense products, which is why untouched rows are *copied*
        from the prior state rather than recomputed).
        """
        if len(aggregators) != self.n_types:
            raise ValueError(
                f"expected {self.n_types} aggregators, got {len(aggregators)}"
            )
        type_embeddings: list[Tensor] = []
        states: list[list[Tensor]] = []
        for t, (tower, aggregator) in enumerate(zip(self.towers, aggregators)):
            fresh_prev: np.ndarray | None = None
            tower_states: list[Tensor] = []
            for k, layer in enumerate(tower):
                full_prev = inputs_fn(t, k, fresh_prev)
                h = layer.combine(
                    Tensor(full_prev[rows]),
                    nn.spmm(aggregator, Tensor(full_prev)),
                )
                tower_states.append(h)
                fresh_prev = h.numpy()
                if observer is not None:
                    observer(f"tower{t}.layer{k}")
            states.append(tower_states)
            type_embeddings.append(tower_states[-1])
        fused = self.cfo(type_embeddings) if self.cfo is not None else type_embeddings[0]
        if observer is not None:
            observer("fused")
        return fused, states

    def embeddings(
        self, x: Tensor, aggregators: Sequence[sp.csr_matrix]
    ) -> Tensor:
        """Fused node representation before the MLP head."""
        return self.layer_states(x, aggregators)[0]

    def head_proba(self, embedding: np.ndarray) -> np.ndarray:
        """Fraud probabilities from an already-fused node representation.

        The inference-only counterpart of ``head``: scores nodes whose
        fused embeddings were precomputed by a batch pass (the lambda
        batch layer's full-graph materialization) without re-running the
        towers.
        """
        self.eval()
        with nn.no_grad():
            logits = self.head(Tensor(embedding)).flatten()
        self.train()
        return 1.0 / (1.0 + np.exp(-logits.numpy()))

    def forward(
        self, x: Tensor, aggregators: Sequence[sp.csr_matrix]
    ) -> Tensor:
        """Fraud logits, shape ``(n,)``."""
        return self.head(self.embeddings(x, aggregators)).flatten()

    def predict_proba(
        self, x: np.ndarray, aggregators: Sequence[sp.csr_matrix]
    ) -> np.ndarray:
        """Fraud probabilities for every node (no autograd recording)."""
        self.eval()
        with nn.no_grad():
            logits = self.forward(Tensor(x), aggregators)
        self.train()
        return 1.0 / (1.0 + np.exp(-logits.numpy()))

    def predict_subgraph(
        self,
        subgraph: ComputationSubgraph,
        features: np.ndarray,
        edge_type_order: Sequence | None = None,
    ) -> float:
        """Inductive prediction: fraud probability of the subgraph's target.

        ``features`` holds one row per ``subgraph.nodes`` entry;
        ``edge_type_order`` fixes the adjacency ordering so it matches the
        towers the model was trained with.
        """
        if features.shape[0] != subgraph.num_nodes:
            raise ValueError("feature rows must align with subgraph nodes")
        if self.use_cfo:
            if edge_type_order is None:
                edge_type_order = sorted(subgraph.adjacency)
            n = subgraph.num_nodes
            empty = sp.csr_matrix((n, n))
            adjacencies = [
                subgraph.adjacency.get(btype, empty) for btype in edge_type_order
            ]
        else:
            adjacencies = [subgraph.merged()]
        aggregators = prepare_aggregators(adjacencies)
        return float(self.predict_proba(features, aggregators)[0])

    def predict_subgraphs(
        self,
        subgraphs: Sequence[ComputationSubgraph],
        features: Sequence[np.ndarray],
        edge_type_order: Sequence | None = None,
    ) -> list[float]:
        """Batched inductive prediction: one packed forward, bit-exact per request.

        ``features[i]`` holds one row per ``subgraphs[i].nodes`` entry.  The
        per-request node blocks are stacked row-wise, the per-type adjacencies
        become block-diagonal aggregators, and the whole batch runs through the
        same ``forward`` as :meth:`predict_subgraph` exactly once.  Aggregation,
        nonlinearities, softmax and the CFO's stacked 3-D matmuls are row-local,
        so they run genuinely packed; dense 2-D matmuls are evaluated per
        request block under :class:`repro.nn.row_blocks`, making each returned
        probability bit-for-bit the value :meth:`predict_subgraph` would
        compute for that subgraph alone.

        ``edge_type_order`` is required when the model uses CFO: the scalar
        path's per-subgraph default (``sorted(subgraph.adjacency)``) is not
        well defined for a shared packed pass.
        """
        if len(subgraphs) != len(features):
            raise ValueError("one feature matrix per subgraph is required")
        if not subgraphs:
            return []
        for subgraph, rows in zip(subgraphs, features):
            if rows.shape[0] != subgraph.num_nodes:
                raise ValueError("feature rows must align with subgraph nodes")
        sizes = [subgraph.num_nodes for subgraph in subgraphs]
        boundaries = np.concatenate(([0], np.cumsum(sizes, dtype=np.int64)))
        packed = np.vstack(features)
        if self.use_cfo:
            if edge_type_order is None:
                raise ValueError(
                    "edge_type_order is required for batched CFO inference"
                )
            adjacencies = [
                _block_diag_csr(
                    [subgraph.adjacency.get(btype) for subgraph in subgraphs],
                    sizes,
                )
                for btype in edge_type_order
            ]
        else:
            adjacencies = [
                _block_diag_csr(
                    [subgraph.merged() for subgraph in subgraphs], sizes
                )
            ]
        aggregators = prepare_aggregators(adjacencies)
        with nn.row_blocks(boundaries):
            probabilities = self.predict_proba(packed, aggregators)
        return [float(p) for p in probabilities[boundaries[:-1]]]
