"""Concept-drift simulation: fraud tactics that evolve over time.

The paper's introduction motivates Turbo with the weakness of hard-coded
defenses: block-lists only catch *observed* values, and scorecards "suffer
from the concept drift problem as fraud tactics evolve".  This module makes
that failure mode measurable: it generates a sequence of evaluation periods
in which the grey industry rotates its resources and upgrades its identity
packaging, so that defenses anchored to past observations decay while
behaviour-graph detection keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import GeneratorConfig
from .entities import Dataset
from .generator import LeasingPlatformSimulator

__all__ = [
    "DriftPeriod",
    "DriftScenario",
    "FraudBurst",
    "generate_drift_scenario",
    "fraud_burst_schedule",
]


@dataclass(slots=True)
class DriftPeriod:
    """One evaluation period of the drift scenario."""

    index: int
    dataset: Dataset
    #: how far fraud tactics have evolved in this period, in [0, 1].
    drift_level: float


@dataclass(slots=True)
class DriftScenario:
    """A training period followed by progressively drifted test periods."""

    train: Dataset
    periods: list[DriftPeriod] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class FraudBurst:
    """One fraud-attack wave on the serving timeline, derived from a drift period.

    The grey industry does not spread its activity evenly: each drift
    period corresponds to a coordinated campaign, and on the serving side
    that campaign shows up as a traffic spike whose ``intensity`` (offered
    load multiplier) grows with how far the tactics have drifted.
    ``repro.system.loadgen`` turns these into burst windows of its traffic
    pattern; this class stays datagen-level so the dependency keeps
    pointing system -> datagen, never the reverse.
    """

    period_index: int
    drift_level: float
    #: window on the simulated serving clock, seconds, half-open [start, end).
    start: float
    end: float
    #: offered-load multiplier while the burst is active (>= 1).
    intensity: float


def fraud_burst_schedule(
    scenario: DriftScenario,
    start: float = 0.0,
    burst_seconds: float = 600.0,
    gap_seconds: float = 600.0,
    max_intensity: float = 4.0,
) -> tuple[FraudBurst, ...]:
    """Lay a drift scenario's periods out as attack waves on a timeline.

    One burst per :class:`DriftPeriod`, in period order, each ``burst_seconds``
    long and separated by ``gap_seconds`` of calm; the first burst begins one
    gap after ``start``.  Intensity interpolates from 1 (no drift) to
    ``max_intensity`` (fully drifted), so later, more-evolved campaigns hit
    the platform harder — the load-test harness uses exactly this to align
    its traffic spikes with the scenario that produced them.
    """
    if burst_seconds <= 0:
        raise ValueError("burst_seconds must be positive")
    if gap_seconds < 0:
        raise ValueError("gap_seconds cannot be negative")
    if max_intensity < 1.0:
        raise ValueError("max_intensity must be >= 1")
    bursts: list[FraudBurst] = []
    at = start + gap_seconds
    for period in scenario.periods:
        bursts.append(
            FraudBurst(
                period_index=period.index,
                drift_level=period.drift_level,
                start=at,
                end=at + burst_seconds,
                intensity=1.0 + (max_intensity - 1.0) * period.drift_level,
            )
        )
        at += burst_seconds + gap_seconds
    return tuple(bursts)


def _drifted_config(base: GeneratorConfig, level: float) -> GeneratorConfig:
    """Evolve the fraud tactics by ``level`` in [0, 1].

    Drift dimensions (all motivated by the grey-industry arms race):

    * identity packaging improves — more fraudsters look normal on paper;
    * crews get more careful — footprints spread over longer horizons and
      fewer members share SIM cards;
    * rings shrink and diversify devices, diluting the clique signal.

    Resource rotation (new devices / IPs / SIMs per period) is inherent:
    every generated period mints fresh identifier pools, exactly like a
    fraud crew discarding burned hardware.
    """
    if not 0.0 <= level <= 1.0:
        raise ValueError("drift level must be in [0, 1]")
    config = GeneratorConfig(**{
        f: getattr(base, f) for f in base.__dataclass_fields__
    })
    config.p_packaged_identity = min(0.95, base.p_packaged_identity + 0.3 * level)
    config.p_careful_fraudster = min(0.9, base.p_careful_fraudster + 0.4 * level)
    config.p_ring_shares_sims = max(0.1, base.p_ring_shares_sims - 0.4 * level)
    config.mean_ring_size = max(
        config.min_ring_size + 1.0, base.mean_ring_size - 3.0 * level
    )
    config.members_per_ring_device = max(
        1.5, base.members_per_ring_device - 1.0 * level
    )
    return config


def generate_drift_scenario(
    base: GeneratorConfig | None = None,
    n_periods: int = 3,
    max_drift: float = 1.0,
    seed: int = 0,
) -> DriftScenario:
    """Generate a train period plus ``n_periods`` increasingly drifted ones.

    Each period is a fresh population (new users *and* new fraud
    infrastructure); only the tactics parameters evolve.  Detectors are
    meant to be fit on ``scenario.train`` and evaluated on each period.
    """
    if n_periods < 1:
        raise ValueError("need at least one drift period")
    base = base or GeneratorConfig()
    train = LeasingPlatformSimulator(base, seed=seed, namespace="p0:").generate(
        name="drift-train"
    )
    scenario = DriftScenario(train=train)
    for index in range(1, n_periods + 1):
        level = max_drift * index / n_periods
        config = _drifted_config(base, level)
        dataset = LeasingPlatformSimulator(
            config, seed=seed + 100 + index, namespace=f"p{index}:"
        ).generate(name=f"drift-{index}")
        scenario.periods.append(
            DriftPeriod(index=index, dataset=dataset, drift_level=level)
        )
    return scenario
