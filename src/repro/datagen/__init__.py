"""Synthetic data generation for the deposit-free leasing scenario.

Substitute for the proprietary Jimi Store dataset; see DESIGN.md §2 for the
substitution rationale.
"""

from .behavior_types import (
    DETERMINISTIC_TYPES,
    EDGE_TYPES,
    PROBABILISTIC_TYPES,
    BehaviorType,
)
from .config import GeneratorConfig
from .entities import DAY, HOUR, MINUTE, SECOND, BehaviorLog, Dataset, Transaction, User
from .datasets import DatasetStatistics, dataset_statistics, make_d1, make_d2
from .drift import (
    DriftPeriod,
    DriftScenario,
    FraudBurst,
    fraud_burst_schedule,
    generate_drift_scenario,
)
from .generator import LeasingPlatformSimulator, UserPersona
from .scale import EdgeChunk, ScaleConfig, edge_stream, sample_targets

__all__ = [
    "BehaviorType",
    "EDGE_TYPES",
    "DETERMINISTIC_TYPES",
    "PROBABILISTIC_TYPES",
    "GeneratorConfig",
    "LeasingPlatformSimulator",
    "UserPersona",
    "User",
    "Transaction",
    "BehaviorLog",
    "Dataset",
    "DatasetStatistics",
    "dataset_statistics",
    "make_d1",
    "make_d2",
    "ScaleConfig",
    "EdgeChunk",
    "edge_stream",
    "sample_targets",
    "DriftPeriod",
    "DriftScenario",
    "FraudBurst",
    "fraud_burst_schedule",
    "generate_drift_scenario",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
]
