"""Synthetic deposit-free leasing platform (stand-in for Jimi Store data).

The proprietary dataset of the paper cannot be redistributed, so this module
generates a population whose *measurable behavioural structure* matches what
Section III-B reports:

* **time burst** — fraudsters' behavior logs concentrate in a short window
  around their application, normal users' logs spread uniformly;
* **temporal aggregation** — logs sharing the same ``(type, value)`` occur at
  small pairwise time intervals for fraudsters (ring activity windows of 0–3
  days) but spread smoothly for normal users;
* **homophily** — fraud rings share devices / SIMs / IPs / locations, so
  fraudster neighbourhoods in BN are fraud-dense;
* **structural difference** — ring resource sharing plus bursty co-occurrence
  gives fraudster nodes larger (weighted) degrees.

Public resources (shared Wi-Fi, exit IPs, mall locations) inject the
*uncertainty* the paper emphasises: big cliques of unrelated normal users
that the inverse weight assignment must down-weight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .behavior_types import BehaviorType
from .config import GeneratorConfig
from .entities import DAY, HOUR, BehaviorLog, Dataset, Transaction, User

__all__ = ["LeasingPlatformSimulator", "UserPersona"]


@dataclass(slots=True)
class UserPersona:
    """The (hidden) resource identity of a user, driving log emission."""

    uid: int
    devices: list[str]
    imeis: list[str]
    sims: list[str]
    home_ip: str
    home_wifi: str
    home_grid: str
    workplace: str | None = None
    work_ip: str | None = None
    work_wifi: str | None = None
    work_grid: str | None = None
    delivery_grid: str | None = None
    #: proxy/VPN exit IPs this user sometimes routes through (privacy tools
    #: whose exits overlap with the grey industry's farm proxies).
    vpn_ips: list[str] | None = None


class LeasingPlatformSimulator:
    """Generates a :class:`~repro.datagen.entities.Dataset`.

    Parameters
    ----------
    config:
        Generation knobs; see :class:`~repro.datagen.config.GeneratorConfig`.
    seed:
        Seed for the internal ``numpy.random.Generator``; generation is fully
        deterministic given ``(config, seed)``.
    namespace:
        Optional prefix applied to every generated identifier (device ids,
        IPs, ...).  Independently generated datasets should use distinct
        namespaces so their identifier spaces do not collide — e.g. the
        concept-drift scenario, where each period's crews run fresh hardware.
    """

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        seed: int = 0,
        namespace: str = "",
    ) -> None:
        self.config = config or GeneratorConfig()
        self.config.validate()
        self.namespace = namespace
        self.rng = np.random.default_rng(seed)
        self._uid = 0
        self._txn_id = 0
        self._counters: dict[str, int] = {}
        #: devices that keep their own SIM (café terminals, family tablets):
        #: whoever uses the device logs its resident IMSI.
        self._resident_sims: dict[str, str] = {}
        self._farm_ips: list[str] = []
        self._cgnat_ips: list[str] = []
        self._public_pools: dict[str, list[str]] | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, name: str = "synthetic") -> Dataset:
        """Run the simulation and return the complete dataset."""
        cfg = self.config
        dataset = Dataset(name=name, start_time=0.0, end_time=cfg.span_seconds)

        n_fraud = int(round(cfg.n_users * cfg.fraud_rate))
        n_ring_fraud = int(round(n_fraud * cfg.ring_fraction))
        n_lone_fraud = n_fraud - n_ring_fraud
        n_normal = cfg.n_users - n_fraud

        public = self._make_public_pools()
        self._public_pools = public
        workplaces = self._make_workplaces(n_normal)
        # Grey-industry infrastructure shared *across* rings (device-farm
        # proxy exits).  This links rings to each other, giving fraudster
        # nodes the larger n-hop degrees of Fig. 4h while keeping those
        # cliques fraud-dense (homophily, Fig. 4d).
        self._farm_ips = [self._fresh("farm_ip") for _ in range(cfg.n_farm_ips)]
        n_cgnat = max(1, int(round(n_normal * cfg.p_cgnat_household / (2.5 * cfg.households_per_cgnat_ip))))
        self._cgnat_ips = [self._fresh("cgnat_ip") for _ in range(n_cgnat)]

        self._spawn_normal_users(dataset, n_normal, public, workplaces)
        self._spawn_fraud_rings(dataset, n_ring_fraud, public)
        self._spawn_lone_fraudsters(dataset, n_lone_fraud, public)
        if cfg.rejected_applicant_fraction > 0:
            n_rejected = int(round(cfg.n_users * cfg.rejected_applicant_fraction))
            self._spawn_rejected_applicants(dataset, n_rejected, public)

        dataset.logs.sort(key=lambda log: log.timestamp)
        dataset.transactions.sort(key=lambda txn: txn.created_at)
        return dataset

    # ------------------------------------------------------------------
    # Resource pools
    # ------------------------------------------------------------------
    def _pick_popular(self, n: int) -> int:
        """Zipf-like index choice: rank-1 items draw most of the traffic."""
        weights = 1.0 / np.arange(1.0, n + 1.0)
        return int(self.rng.choice(n, p=weights / weights.sum()))

    def _fresh(self, prefix: str) -> str:
        index = self._counters.get(prefix, 0)
        self._counters[prefix] = index + 1
        return f"{self.namespace}{prefix}_{index}"

    def _make_public_pools(self) -> dict[str, list[str]]:
        cfg = self.config
        return {
            "wifi": [self._fresh("pub_wifi") for _ in range(cfg.n_public_wifi)],
            "ip": [self._fresh("pub_ip") for _ in range(cfg.n_public_ip)],
            "grid": [self._fresh("pub_grid") for _ in range(cfg.n_public_gps)],
            # Internet-café terminals and demo phones: shared devices (with
            # their resident SIM) that connect unrelated legitimate users.
            "device": [self._fresh("cafe_dev") for _ in range(cfg.n_cafe_devices)],
        }

    def _make_workplaces(self, n_normal: int) -> list[dict[str, str]]:
        count = max(1, int(round(n_normal / self.config.users_per_workplace)))
        workplaces = []
        for _ in range(count):
            wid = self._fresh("wp")
            workplaces.append(
                {
                    "id": wid,
                    "ip": f"{wid}_ip",
                    "wifi": f"{wid}_wifi",
                    "grid": f"{wid}_grid",
                }
            )
        return workplaces

    # ------------------------------------------------------------------
    # Normal users
    # ------------------------------------------------------------------
    def _spawn_normal_users(
        self,
        dataset: Dataset,
        count: int,
        public: dict[str, list[str]],
        workplaces: list[dict[str, str]],
    ) -> None:
        cfg = self.config
        rng = self.rng
        spawned = 0
        while spawned < count:
            # A fraction of users share a household: same Wi-Fi, exit IP and
            # location grid, and sometimes a family device.  These are dense
            # legitimate cliques a graph model must not confuse with rings.
            roll = rng.random()
            is_dorm = roll < cfg.p_dorm_group
            if is_dorm:
                size = int(rng.integers(cfg.dorm_size_min, cfg.dorm_size_max + 1))
            elif roll < cfg.p_dorm_group + cfg.p_household_member:
                size = int(rng.integers(2, cfg.household_size_max + 1))
            else:
                size = 1
            size = min(size, count - spawned)
            if rng.random() < cfg.p_cgnat_household and self._cgnat_ips:
                home_ip = self._cgnat_ips[int(rng.integers(len(self._cgnat_ips)))]
            else:
                home_ip = self._fresh("home_ip")
            home = {
                "ip": home_ip,
                "wifi": self._fresh("home_wifi"),
                "grid": self._fresh("home_grid"),
            }
            shared_devices: list[str] = []
            if is_dorm:
                shared_devices = [
                    self._fresh("dorm_dev") for _ in range(cfg.dorm_shared_devices)
                ]
            elif size > 1 and rng.random() < cfg.p_household_shared_device:
                shared_devices = [self._fresh("dev")]
            members: list[tuple[User, UserPersona]] = []
            for _ in range(size):
                registered = rng.uniform(0.0, 0.85 * cfg.span_seconds)
                user = self._new_user(registered, is_fraud=False)
                self._fill_normal_profile(user)
                if is_dorm:
                    self._adjust_student_profile(user)
                shared = None
                if shared_devices:
                    shared = shared_devices[int(rng.integers(len(shared_devices)))]
                persona = self._normal_persona(user.uid, home, shared)
                if rng.random() < cfg.p_normal_vpn_user and self._farm_ips:
                    persona.vpn_ips = list(
                        rng.choice(self._farm_ips, size=min(2, len(self._farm_ips)), replace=False)
                    )
                if rng.random() < cfg.workplace_participation and workplaces:
                    wp = workplaces[rng.integers(len(workplaces))]
                    persona.workplace = wp["id"]
                    persona.work_ip = wp["ip"]
                    persona.work_wifi = wp["wifi"]
                    persona.work_grid = wp["grid"]
                persona.delivery_grid = persona.home_grid
                members.append((user, persona))

            for user, persona in members:
                dataset.users.append(user)
                home_times = self._emit_normal_sessions(dataset, user, persona, public)
                self._make_normal_transactions(dataset, user, persona)
                # Household co-presence: when one member is online at home in
                # the evening, the others often are too — these co-occurrences
                # give legitimate households ring-like BN edge weights.
                for other_user, other_persona in members:
                    if other_user.uid == user.uid:
                        continue
                    copresence = 0.3 if is_dorm else cfg.p_household_copresence
                    for t in home_times:
                        if t < other_user.registered_at:
                            continue
                        if rng.random() < copresence:
                            # Same evening, not the same minute: the pair is
                            # caught by the coarser windows of the hierarchy
                            # but only sometimes by the 1-hour one.
                            jittered = float(
                                np.clip(
                                    t + rng.normal(0.0, 90 * 60),
                                    other_user.registered_at,
                                    cfg.span_seconds,
                                )
                            )
                            self._emit_session(
                                dataset, other_user.uid, other_persona, jittered, "home", public
                            )
                spawned += 1

    def _normal_persona(
        self,
        uid: int,
        home: dict[str, str] | None = None,
        shared_device: str | None = None,
    ) -> UserPersona:
        rng = self.rng
        devices = [self._fresh("dev")]
        if shared_device is not None:
            devices.append(shared_device)
            # A shared device keeps its resident SIM, so every household
            # member using it logs the same IMSI.
            self._resident_sims.setdefault(shared_device, f"sim_of_{shared_device}")
        elif rng.random() < self.config.p_second_device:
            devices.append(self._fresh("dev"))
        if home is None:
            home = {
                "ip": self._fresh("home_ip"),
                "wifi": self._fresh("home_wifi"),
                "grid": self._fresh("home_grid"),
            }
        return UserPersona(
            uid=uid,
            devices=devices,
            imeis=[f"imei_{d}" for d in devices],
            sims=[self._fresh("sim")],
            home_ip=home["ip"],
            home_wifi=home["wifi"],
            home_grid=home["grid"],
        )

    def _emit_normal_sessions(
        self,
        dataset: Dataset,
        user: User,
        persona: UserPersona,
        public: dict[str, list[str]],
    ) -> list[float]:
        """Normal logs scatter over the whole membership (Fig. 4a).

        Returns the home-session times so household co-presence can mirror
        them for the other members.
        """
        cfg = self.config
        rng = self.rng
        home_times: list[float] = []
        n_sessions = max(
            cfg.normal_sessions_min, rng.poisson(cfg.normal_sessions_mean)
        )
        # Real activity is clumpy: sessions cluster around "active days"
        # rather than arriving as a homogeneous Poisson process, so the
        # burstiness statistics of normal users overlap with fraudsters'.
        n_clusters = max(3, n_sessions // 3)
        centers = rng.uniform(user.registered_at, cfg.span_seconds, size=n_clusters)
        times = centers[rng.integers(n_clusters, size=n_sessions)]
        times = times + rng.normal(0.0, 6 * HOUR, size=n_sessions)
        times = np.clip(times, user.registered_at, cfg.span_seconds)
        # Young users (students) hang out in internet cafés and malls far
        # more, which plants fraud-adjacent profiles inside the public
        # cliques that rings also camp in: only the (inverse, hierarchical)
        # edge weights distinguish a bystander from a ring member.
        p_public = cfg.p_public_session * (2.5 if user.age < 25.0 else 1.0)
        for t in np.sort(times):
            place = "home"
            roll = rng.random()
            if persona.workplace is not None and roll < cfg.p_work_session:
                place = "work"
            elif roll < cfg.p_work_session + p_public:
                place = "public"
            t = float(t)
            if place == "home":
                # Home usage concentrates in the evening, so household
                # members co-occur in the same small epochs day after day —
                # their accumulated BN weights rival a fraud ring's.
                hour = rng.normal(20.5, 2.5) % 24.0
                t = float(np.floor(t / DAY) * DAY + hour * HOUR)
                t = float(np.clip(t, user.registered_at, cfg.span_seconds))
                home_times.append(t)
            self._emit_session(dataset, user.uid, persona, t, place, public)
        return home_times

    def _emit_session(
        self,
        dataset: Dataset,
        uid: int,
        persona: UserPersona,
        t: float,
        place: str,
        public: dict[str, list[str]],
        device_index: int | None = None,
        ip_override: str | None = None,
    ) -> None:
        rng = self.rng
        if device_index is None:
            device_index = int(rng.integers(len(persona.devices)))
        device = persona.devices[device_index]
        imei = persona.imeis[device_index]
        if place == "public" and rng.random() < self.config.p_cafe_device:
            device = public["device"][int(rng.integers(len(public["device"])))]
            imei = f"imei_{device}"
            self._resident_sims.setdefault(device, f"sim_of_{device}")
        resident_sim = self._resident_sims.get(device)
        if resident_sim is not None:
            sim = resident_sim
        else:
            sim = persona.sims[int(rng.integers(len(persona.sims)))]

        if place == "work":
            ip, wifi, grid = persona.work_ip, persona.work_wifi, persona.work_grid
        elif place == "public":
            # Popularity-skewed choice: a few hotspots capture most traffic,
            # which is what makes them dense, uncertain cliques.
            spot = self._pick_popular(len(public["wifi"]))
            wifi = public["wifi"][spot]
            grid = public["grid"][spot % len(public["grid"])]
            ip = public["ip"][self._pick_popular(len(public["ip"]))]
        else:
            ip, wifi, grid = persona.home_ip, persona.home_wifi, persona.home_grid
            if (
                persona.vpn_ips
                and rng.random() < self.config.p_vpn_session
            ):
                ip = persona.vpn_ips[int(rng.integers(len(persona.vpn_ips)))]
        if ip_override is not None:
            ip = ip_override

        jitter = rng.uniform(0.0, 10 * 60, size=6)
        logs = dataset.logs
        logs.append(BehaviorLog(uid, BehaviorType.DEVICE_ID, device, t + jitter[0]))
        logs.append(BehaviorLog(uid, BehaviorType.IMEI, imei, t + jitter[1]))
        logs.append(BehaviorLog(uid, BehaviorType.IMSI, sim, t + jitter[2]))
        logs.append(BehaviorLog(uid, BehaviorType.IPV4, ip, t + jitter[3]))
        logs.append(BehaviorLog(uid, BehaviorType.WIFI_MAC, wifi, t + jitter[4]))
        logs.append(BehaviorLog(uid, BehaviorType.GPS_100, grid, t + jitter[5]))
        if rng.random() < 0.3:
            precise = f"{grid}@{rng.integers(10**6)}"
            logs.append(BehaviorLog(uid, BehaviorType.GPS, precise, t + jitter[5]))
        if place == "work" and persona.workplace is not None:
            logs.append(
                BehaviorLog(uid, BehaviorType.WORKPLACE, persona.workplace, t + jitter[0])
            )

    def _make_normal_transactions(
        self, dataset: Dataset, user: User, persona: UserPersona
    ) -> None:
        cfg = self.config
        rng = self.rng
        n_apps = max(1, rng.poisson(cfg.normal_applications_mean))
        # Users register because they want to lease: the first application
        # comes shortly after registration (otherwise account age would be a
        # give-away separating normal users from freshly-registered rings).
        first = user.registered_at + rng.uniform(
            HOUR, cfg.first_application_within_days * DAY
        )
        first = min(first, cfg.span_seconds)
        times = [first]
        if n_apps > 1:
            lo = min(first + HOUR, cfg.span_seconds)
            times.extend(rng.uniform(lo, cfg.span_seconds, size=n_apps - 1))
        # A small share of ordinary users default and keep the goods, which
        # makes them fraudsters under the payment-based label even though
        # nothing in their behavior or graph gives them away.
        defaults = rng.random() < cfg.p_normal_default
        times = np.sort(times)
        for i, t in enumerate(times):
            is_default = defaults and i == len(times) - 1
            if is_default:
                user.is_fraud = True
            txn = self._new_transaction(user, float(t), fraud=is_default)
            dataset.transactions.append(txn)
            self._emit_delivery_logs(dataset, user.uid, persona, float(t))

    def _emit_delivery_logs(
        self, dataset: Dataset, uid: int, persona: UserPersona, t: float
    ) -> None:
        grid = persona.delivery_grid or persona.home_grid
        dataset.logs.append(BehaviorLog(uid, BehaviorType.GPS_DEV_100, grid, t))
        precise = f"{grid}@{self.rng.integers(10**6)}"
        dataset.logs.append(BehaviorLog(uid, BehaviorType.GPS_DEV, precise, t))

    # ------------------------------------------------------------------
    # Fraud rings
    # ------------------------------------------------------------------
    def _spawn_fraud_rings(
        self, dataset: Dataset, total_members: int, public: dict[str, list[str]]
    ) -> None:
        cfg = self.config
        rng = self.rng
        sizes: list[int] = []
        remaining = total_members
        while remaining > 0:
            size = int(
                np.clip(
                    rng.poisson(cfg.mean_ring_size),
                    cfg.min_ring_size,
                    cfg.max_ring_size,
                )
            )
            size = min(size, max(remaining, cfg.min_ring_size))
            sizes.append(size)
            remaining -= size
        # Fraud campaigns come in waves: several rings strike within the same
        # few days (sharing the farm proxies), which produces the cross-ring
        # connectivity behind the large fraudster degrees of Fig. 4h.
        n_waves = max(1, len(sizes) // cfg.rings_per_wave)
        waves = rng.uniform(
            0.05 * cfg.span_seconds, 0.9 * cfg.span_seconds, size=n_waves
        )
        for ring_id, size in enumerate(sizes):
            wave = waves[int(rng.integers(n_waves))]
            ring_start = wave + rng.uniform(0.0, cfg.wave_spread_days * DAY)
            self._spawn_one_ring(dataset, ring_id, size, public, ring_start)

    def _spawn_one_ring(
        self,
        dataset: Dataset,
        ring_id: int,
        size: int,
        public: dict[str, list[str]],
        ring_start: float | None = None,
    ) -> None:
        cfg = self.config
        rng = self.rng
        if ring_start is None:
            ring_start = rng.uniform(0.05 * cfg.span_seconds, 0.92 * cfg.span_seconds)
        ring_start = float(np.clip(ring_start, 0.0, 0.95 * cfg.span_seconds))
        window = rng.uniform(0.5 * DAY, cfg.ring_window_days_max * DAY)

        n_devices = max(1, math.ceil(size / cfg.members_per_ring_device))
        n_sims = max(1, math.ceil(size / cfg.members_per_ring_sim))
        devices = [self._fresh("ring_dev") for _ in range(n_devices)]
        imeis = [f"imei_{d}" for d in devices]
        share_sims = rng.random() < cfg.p_ring_shares_sims
        sims = [self._fresh("ring_sim") for _ in range(n_sims)]
        ring_ips = [self._fresh("ring_ip") for _ in range(1 + int(size > 8))]
        if rng.random() < cfg.p_ring_in_public and self._public_pools is not None:
            # The ring camps in a public place: its Wi-Fi/location clique
            # will also contain innocent bystanders.
            spot = self._pick_popular(len(self._public_pools["wifi"]))
            ring_wifi = self._public_pools["wifi"][spot]
            ring_grid = self._public_pools["grid"][spot % len(self._public_pools["grid"])]
        else:
            ring_wifi = self._fresh("ring_wifi")
            ring_grid = self._fresh("ring_grid")
        delivery_grid = self._fresh("ring_delivery")
        # Device farms run their accounts in synchronized batches: the crew's
        # sessions cluster around shared "operation slots", which is what
        # drives the minute-scale temporal aggregation of Fig. 4c and the
        # heavy fraud edge weights of Fig. 4i.
        ring_slots = np.sort(
            rng.uniform(ring_start - 0.5 * DAY, ring_start + window, size=20)
        )

        for _ in range(size):
            # Half the ring uses freshly-registered accounts, half uses aged
            # stolen/purchased accounts — account age alone must not separate.
            if rng.random() < 0.5:
                registered = ring_start - rng.uniform(0.0, 7 * DAY)
            else:
                registered = ring_start - rng.uniform(30 * DAY, 300 * DAY)
            registered = max(0.0, registered)
            # The label follows the payments, not the crew: an affiliate who
            # keeps paying is, by the paper's definition, not a fraudster.
            pays = rng.random() < cfg.p_ring_member_pays
            user = self._new_user(registered, is_fraud=not pays, ring_id=ring_id)
            user.packaged_identity = rng.random() < cfg.p_packaged_identity
            if user.packaged_identity:
                self._fill_normal_profile(user)
            else:
                self._fill_fraud_profile(user)
            dataset.users.append(user)

            if rng.random() < cfg.p_peripheral_member:
                # Peripheral members look mostly like normal users: own
                # device/SIM/home, plus a thin link into the ring.
                own = self._fresh("dev")
                ring_device_idx = int(rng.integers(len(devices)))
                persona = UserPersona(
                    uid=user.uid,
                    devices=[own, devices[ring_device_idx]],
                    imeis=[f"imei_{own}", imeis[ring_device_idx]],
                    sims=[self._fresh("sim")],
                    home_ip=self._fresh("home_ip"),
                    home_wifi=self._fresh("home_wifi"),
                    home_grid=(
                        ring_grid if rng.random() < 0.5 else self._fresh("home_grid")
                    ),
                )
            else:
                persona = UserPersona(
                    uid=user.uid,
                    devices=list(devices),
                    imeis=list(imeis),
                    sims=list(sims) if share_sims else [self._fresh("sim")],
                    home_ip=ring_ips[int(rng.integers(len(ring_ips)))],
                    home_wifi=ring_wifi,
                    home_grid=ring_grid,
                )
                if rng.random() < cfg.p_member_own_device:
                    own = self._fresh("dev")
                    persona.devices.append(own)
                    persona.imeis.append(f"imei_{own}")
            if rng.random() < cfg.p_shared_delivery:
                persona.delivery_grid = delivery_grid
            else:
                persona.delivery_grid = self._fresh("home_grid")

            app_time = ring_start + rng.uniform(0.0, window)
            txn = self._new_transaction(user, app_time, fraud=user.is_fraud)
            dataset.transactions.append(txn)
            self._emit_fraud_sessions(
                dataset, user, persona, app_time, public, slots=ring_slots
            )
            self._emit_delivery_logs(dataset, user.uid, persona, app_time)

    def _emit_fraud_sessions(
        self,
        dataset: Dataset,
        user: User,
        persona: UserPersona,
        app_time: float,
        public: dict[str, list[str]],
        slots: np.ndarray | None = None,
    ) -> None:
        """Fraud logs burst around the application time (Fig. 4b).

        Ring members with ``slots`` synchronize most sessions to the crew's
        operation slots (batched account farming).
        """
        cfg = self.config
        rng = self.rng
        n_sessions = max(4, rng.poisson(cfg.fraud_sessions_mean))
        careful = rng.random() < cfg.p_careful_fraudster
        if careful:
            # Careful fraudsters spread their footprint over ~two weeks,
            # diluting the time-burst signal the detector could lean on.
            before = cfg.careful_spread_days * DAY
        else:
            before = cfg.fraud_burst_before
        lo = max(user.registered_at, app_time - before)
        hi = min(cfg.span_seconds, app_time + cfg.fraud_burst_after)
        times = rng.uniform(lo, hi, size=n_sessions)
        if slots is not None and not careful:
            synced = rng.random(n_sessions) < 0.8
            chosen = slots[rng.integers(len(slots), size=n_sessions)]
            chosen = chosen + rng.normal(0.0, 10 * 60, size=n_sessions)
            times = np.where(synced, np.clip(chosen, lo, hi), times)
        for t in np.sort(times):
            # Device farms route part of their traffic through shared proxy
            # exits (cross-ring infrastructure) and occasionally through
            # public resources, blending fraudsters into public cliques.
            roll = rng.random()
            ip_override = None
            place = "home"
            if roll < cfg.p_farm_proxy_session and self._farm_ips:
                ip_override = self._farm_ips[int(rng.integers(len(self._farm_ips)))]
            elif roll < cfg.p_farm_proxy_session + 0.15:
                place = "public"
            self._emit_session(
                dataset, user.uid, persona, float(t), place, public, ip_override=ip_override
            )

    # ------------------------------------------------------------------
    # Lone fraudsters
    # ------------------------------------------------------------------
    def _spawn_lone_fraudsters(
        self, dataset: Dataset, count: int, public: dict[str, list[str]]
    ) -> None:
        """Fraudsters without a ring: normal-looking graph, bad features."""
        cfg = self.config
        rng = self.rng
        for _ in range(count):
            registered = rng.uniform(0.0, 0.9 * cfg.span_seconds)
            user = self._new_user(registered, is_fraud=True, ring_id=None)
            self._fill_fraud_profile(user)
            dataset.users.append(user)

            persona = self._normal_persona(user.uid)
            persona.delivery_grid = persona.home_grid
            app_time = rng.uniform(
                registered + HOUR, min(cfg.span_seconds, registered + 60 * DAY)
            )
            txn = self._new_transaction(user, app_time, fraud=True)
            dataset.transactions.append(txn)
            self._emit_fraud_sessions(dataset, user, persona, app_time, public)
            self._emit_delivery_logs(dataset, user.uid, persona, app_time)

    # ------------------------------------------------------------------
    # D2-style rejected applicants
    # ------------------------------------------------------------------
    def _spawn_rejected_applicants(
        self, dataset: Dataset, count: int, public: dict[str, list[str]]
    ) -> None:
        """Applicants Jimi's original rule system would reject (D2 positives).

        The paper's D2 counts applications rejected by the original risk
        management system as positive samples; these are dominated by sloppy
        fraud attempts with blatantly bad profiles and heavy resource reuse,
        which is why Table IV's absolute metrics are far higher than D1's.
        """
        cfg = self.config
        rng = self.rng
        remaining = count
        ring_id = 10_000  # keep rejected-crew ids disjoint from regular rings
        while remaining > 0:
            size = int(np.clip(rng.poisson(12.0), 4, 40))
            size = min(size, max(remaining, 4))
            self._spawn_one_ring(dataset, ring_id, size, public)
            # Overwrite the profile/labels of the crew just created: blatant
            # fraud features (never packaged) and rejected-by-rules marks.
            # Rejection itself makes the application a positive sample under
            # D2's labeling, so the payment-based relabeling of ring
            # affiliates does not apply here.
            for user in dataset.users[-size:]:
                user.packaged_identity = False
                user.is_fraud = True
                self._fill_fraud_profile(user)
                user.credit_score -= rng.uniform(20.0, 80.0)
                user.third_party_score = float(
                    np.clip(user.third_party_score - 0.2, 0.01, 1.0)
                )
            for txn in dataset.transactions[-size:]:
                txn.rejected_by_rules = True
                txn.is_fraud = True
            remaining -= size
            ring_id += 1

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def _new_user(
        self, registered_at: float, is_fraud: bool, ring_id: int | None = None
    ) -> User:
        user = User(uid=self._uid, registered_at=registered_at, is_fraud=is_fraud, ring_id=ring_id)
        self._uid += 1
        return user

    def _fill_normal_profile(self, user: User) -> None:
        rng = self.rng
        user.age = float(np.clip(rng.normal(33.0, 8.0), 18.0, 65.0))
        user.credit_score = float(np.clip(rng.normal(680.0, 50.0), 350.0, 850.0))
        user.income_level = float(np.clip(rng.normal(3.2, 0.8), 0.5, 8.0))
        user.occupation_code = int(rng.integers(0, 8))
        user.phone_verified = rng.random() < 0.97
        user.id_verified = rng.random() < 0.99
        user.third_party_score = float(np.clip(rng.beta(6.0, 2.0), 0.01, 1.0))
        user.historical_leases = int(rng.poisson(1.1))

    def _adjust_student_profile(self, user: User) -> None:
        """Dorm residents: young, thin credit file — fraud-adjacent features."""
        rng = self.rng
        user.age = float(rng.uniform(18.0, 24.0))
        user.credit_score = float(np.clip(user.credit_score - rng.uniform(20, 60), 350, 850))
        user.income_level = float(np.clip(user.income_level - 1.0, 0.5, 8.0))
        user.historical_leases = 0

    def _fill_fraud_profile(self, user: User) -> None:
        rng = self.rng
        user.age = float(np.clip(rng.normal(28.0, 7.0), 18.0, 65.0))
        user.credit_score = float(np.clip(rng.normal(625.0, 65.0), 350.0, 850.0))
        user.income_level = float(np.clip(rng.normal(2.7, 0.9), 0.5, 8.0))
        user.occupation_code = int(rng.choice([0, 1, 2, 7], p=[0.4, 0.3, 0.2, 0.1]))
        user.phone_verified = rng.random() < 0.9
        user.id_verified = rng.random() < 0.95
        user.third_party_score = float(np.clip(rng.beta(4.0, 2.5), 0.01, 1.0))
        user.historical_leases = int(rng.poisson(0.5))

    def _new_transaction(self, user: User, created_at: float, fraud: bool) -> Transaction:
        cfg = self.config
        rng = self.rng
        value = float(
            cfg.item_value_median * rng.lognormal(0.0, cfg.item_value_sigma)
        )
        if fraud:
            value *= cfg.fraud_item_value_boost
        lease_term = int(rng.choice(cfg.lease_terms))
        monthly_rent = value / lease_term * rng.uniform(1.05, 1.2)
        paid = int(rng.integers(1, 3)) if fraud else lease_term
        txn = Transaction(
            txn_id=self._txn_id,
            uid=user.uid,
            created_at=float(created_at),
            item_value=round(value, 2),
            lease_term=lease_term,
            monthly_rent=round(monthly_rent, 2),
            is_fraud=fraud,
            paid_periods=paid,
        )
        self._txn_id += 1
        return txn
