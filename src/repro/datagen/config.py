"""Configuration for the synthetic deposit-free leasing platform simulator.

Every knob maps to one of the behavioural patterns the paper measures on the
proprietary Jimi dataset (Section III-B), so that the synthetic data exhibits
the same structure: time burst (Fig. 4a-b), temporal aggregation (Fig. 4c),
homophily (Fig. 4d-g) and structural difference (Fig. 4h-i).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .entities import DAY, HOUR

__all__ = ["GeneratorConfig"]


@dataclass(slots=True)
class GeneratorConfig:
    """Knobs of :class:`~repro.datagen.generator.LeasingPlatformSimulator`.

    Defaults produce a D1-like dataset scaled to laptop size: a population
    dominated by normal users with a small fraudster minority organized in
    rings.
    """

    # -- population ----------------------------------------------------
    n_users: int = 3000
    fraud_rate: float = 0.06
    #: fraction of fraudsters organized in rings (the rest are lone wolves
    #: whose graph footprint looks normal — only their features betray them).
    ring_fraction: float = 0.85
    mean_ring_size: float = 8.0
    min_ring_size: int = 3
    max_ring_size: int = 24

    # -- timeline (Jan 2017 – Jun 2018 in the paper: ~540 days) ---------
    span_days: float = 540.0

    # -- normal user activity (uniform over the whole membership) -------
    normal_sessions_mean: float = 20.0
    normal_sessions_min: int = 6
    p_second_device: float = 0.2
    p_public_session: float = 0.08
    p_work_session: float = 0.18
    workplace_participation: float = 0.55
    users_per_workplace: float = 18.0
    normal_applications_mean: float = 1.3
    #: users typically register *because* they want to lease: the first
    #: application lands within this many days of registration.
    first_application_within_days: float = 30.0
    #: fraction of normal users living in multi-person households that share
    #: Wi-Fi, IP, location and sometimes a device — dense legitimate cliques
    #: that graph models must not mistake for fraud rings.
    p_household_member: float = 0.45
    household_size_max: int = 4
    p_household_shared_device: float = 0.8
    #: probability that another household member is also online at home when
    #: one member has an evening home session.
    p_household_copresence: float = 0.25
    #: probability a normal-user group is a student dorm: 6–12 young users
    #: with thin credit sharing Wi-Fi/IP/location — structurally and
    #: feature-wise the hardest legitimate look-alike of a fraud ring.
    p_dorm_group: float = 0.04
    dorm_size_min: int = 6
    dorm_size_max: int = 12
    #: fraction of normal users routing part of their traffic through the
    #: same proxy/VPN exits the device farms abuse.
    p_normal_vpn_user: float = 0.1
    p_vpn_session: float = 0.3
    #: internet cafés: public sessions use a shared café device (with its
    #: resident SIM) with this probability — legitimate device co-occurrence.
    p_cafe_device: float = 0.5
    n_cafe_devices: int = 40
    #: carrier-grade NAT: a share of households sit behind an exit IP shared
    #: with ~10 other households.
    p_cgnat_household: float = 0.3
    households_per_cgnat_ip: float = 10.0
    #: dorms install shared lab computers used for a share of home sessions.
    dorm_shared_devices: int = 2
    #: not every ring bothers sharing SIM cards.
    p_ring_shares_sims: float = 0.6
    #: some rings operate out of a public place (internet café / mall): their
    #: Wi-Fi and location clique then includes innocent bystanders — the
    #: paper's canonical over-smoothing hazard ("a fraudster and a normal
    #: user connected via a public Wi-Fi").
    p_ring_in_public: float = 0.4
    #: the label is *payment-based* (Section II-B): a ring affiliate who
    #: keeps paying rent is not a fraudster, and a normal user who defaults
    #: and keeps the goods is.  These two rates give the labels the same
    #: graph-incoherent fringe real payment data has.
    p_ring_member_pays: float = 0.05
    p_normal_default: float = 0.006

    # -- fraud ring activity (bursty, resource-sharing) ------------------
    #: ring members register/apply within a window of this many days
    #: (Fig. 4c: associated fraud behaviors fall in a 0–3 day window).
    ring_window_days_max: float = 3.0
    fraud_sessions_mean: float = 30.0
    #: fraud behavior logs burst around the application time (Fig. 4b).
    fraud_burst_before: float = 1.5 * DAY
    fraud_burst_after: float = 1.0 * DAY
    #: ring members per shared device (device farms reuse handsets).
    members_per_ring_device: float = 3.0
    members_per_ring_sim: float = 2.5
    p_member_own_device: float = 0.2
    p_shared_delivery: float = 0.45
    #: fraction of ring fraudsters with a "packaged" identity whose profile
    #: features are indistinguishable from normal users (grey-industry
    #: credit packaging) — these are only detectable through the graph.
    p_packaged_identity: float = 0.6
    #: fraction of ring members on the periphery: they mostly use their own
    #: devices and only occasionally touch ring resources, so their graph
    #: signal is weak (caps the recall any graph model can reach).
    p_peripheral_member: float = 0.3
    #: fraction of fraudsters who are careful: they spread their behavior
    #: over ~two weeks before the application instead of bursting.
    p_careful_fraudster: float = 0.25
    careful_spread_days: float = 14.0

    # -- grey-industry shared infrastructure (cross-ring proxy exits) -----
    n_farm_ips: int = 10
    p_farm_proxy_session: float = 0.35
    #: fraud campaigns arrive in waves: this many rings strike per wave,
    #: within ``wave_spread_days`` of each other.
    rings_per_wave: int = 3
    wave_spread_days: float = 5.0

    # -- shared public resources (the uncertainty in implicit relations) -
    n_public_wifi: int = 25
    n_public_ip: int = 30
    n_public_gps: int = 20

    # -- transaction economics -------------------------------------------
    item_value_median: float = 3000.0
    item_value_sigma: float = 0.45
    fraud_item_value_boost: float = 1.15
    lease_terms: tuple[int, ...] = (6, 12)

    # -- D2-style rejected applicants -------------------------------------
    #: if positive, add this fraction (of ``n_users``) of extra applicants
    #: that Jimi's original rule system would reject; they count as positive
    #: samples per the paper's D2 labeling.
    rejected_applicant_fraction: float = 0.0

    # -- log emission per session -----------------------------------------
    logs_per_session_mean: float = 5.0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if not 0.0 <= self.fraud_rate < 1.0:
            raise ValueError("fraud_rate must be in [0, 1)")
        if not 0.0 <= self.ring_fraction <= 1.0:
            raise ValueError("ring_fraction must be in [0, 1]")
        if self.min_ring_size < 2:
            raise ValueError("min_ring_size must be at least 2")
        if self.max_ring_size < self.min_ring_size:
            raise ValueError("max_ring_size must be >= min_ring_size")
        if self.span_days <= 1:
            raise ValueError("span_days must exceed one day")
        if self.rejected_applicant_fraction < 0:
            raise ValueError("rejected_applicant_fraction must be >= 0")

    @property
    def span_seconds(self) -> float:
        return self.span_days * DAY
