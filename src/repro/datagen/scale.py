"""Chunked edge-stream generator for shard-scale BN workloads.

The sharding benchmarks need a BN of ≥10⁷ typed edges over ≥10⁶ users —
two orders of magnitude past what :func:`~repro.datagen.datasets.make_d1`
materializes as per-user ``BehaviorLog`` objects.  This module skips the
log layer entirely and streams *edge contribution chunks*: columnar
``(lo, hi, code, weight)`` arrays ready for one
:meth:`~repro.network.bn.BehaviorNetwork.add_weights` call each, with a
scalar per-chunk timestamp (the window-job fast path).  The full edge set
is never materialized — peak memory is one chunk.

Determinism is *per chunk*, not per stream: chunk ``i`` is drawn from
``SeedSequence([seed, i])``, so any slice of the stream can be regenerated
independently (the benchmark re-streams the same workload once per shard
count) and the result is independent of how many chunks were consumed
before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .behavior_types import BehaviorType

__all__ = ["ScaleConfig", "EdgeChunk", "edge_stream", "sample_targets"]

_DAY = 86_400.0


@dataclass(frozen=True)
class ScaleConfig:
    """Shape of a streamed shard-scale workload.

    ``n_edges`` counts *contributions*, not distinct pairs — collisions
    accumulate weight exactly as repeated co-occurrence does in production
    ingestion.  ``span_days`` spreads the per-chunk timestamps over a
    window history so TTL bookkeeping sees realistic buckets.
    """

    n_users: int = 1_000_000
    n_edges: int = 10_000_000
    chunk_edges: int = 250_000
    edge_types: tuple[BehaviorType, ...] = field(
        default_factory=lambda: tuple(BehaviorType)[:3]
    )
    span_days: float = 30.0
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on shapes the stream cannot produce."""
        if self.n_users < 2:
            raise ValueError("need at least 2 users to form an edge")
        if self.n_edges <= 0 or self.chunk_edges <= 0:
            raise ValueError("n_edges and chunk_edges must be positive")
        if not self.edge_types:
            raise ValueError("need at least one edge type")

    @property
    def n_chunks(self) -> int:
        """How many chunks :func:`edge_stream` yields for this config."""
        return -(-self.n_edges // self.chunk_edges)


@dataclass(frozen=True)
class EdgeChunk:
    """One columnar batch of edge contributions (``lo < hi`` guaranteed)."""

    index: int
    lo: np.ndarray
    hi: np.ndarray
    codes: np.ndarray
    weights: np.ndarray
    timestamp: float

    def __len__(self) -> int:
        return len(self.lo)


def _make_chunk(config: ScaleConfig, index: int, size: int) -> EdgeChunk:
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, index]))
    n = config.n_users
    u = rng.integers(0, n, size=size, dtype=np.int64)
    # v = u + (1 + offset) mod n with offset in [0, n-2] can never equal u,
    # so no rejection loop and the degree distribution stays uniform.
    off = rng.integers(0, n - 1, size=size, dtype=np.int64)
    v = (u + 1 + off) % n
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    codes = rng.integers(0, len(config.edge_types), size=size, dtype=np.int64)
    weights = rng.random(size) + 0.05
    # Scalar per-chunk stamp (the window-job fast path): chunks march
    # forward through the span like closing window jobs do.
    timestamp = (index + 1) / config.n_chunks * config.span_days * _DAY
    return EdgeChunk(
        index=index, lo=lo, hi=hi, codes=codes, weights=weights, timestamp=timestamp
    )


def edge_stream(config: ScaleConfig) -> Iterator[EdgeChunk]:
    """Yield the workload chunk by chunk; never holds more than one chunk.

    Each chunk is independently seeded from ``(config.seed, chunk_index)``:
    re-streaming yields bit-identical chunks regardless of prior consumption.
    """
    config.validate()
    remaining = config.n_edges
    for index in range(config.n_chunks):
        size = min(config.chunk_edges, remaining)
        remaining -= size
        yield _make_chunk(config, index, size)


def sample_targets(config: ScaleConfig, count: int, seed: int = 1) -> list[int]:
    """Deterministic serve-phase targets drawn from the user population."""
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, seed, count]))
    return [int(uid) for uid in rng.integers(0, config.n_users, size=count)]
