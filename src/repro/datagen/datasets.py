"""Benchmark dataset presets mirroring the paper's D1 and D2 (Table II).

The real D1 has 67 072 users with 918 fraudsters (1.4 % positive) and D2 has
1 072 205 applicants of which 92.3 % are positive (rejected by the original
rule system or confirmed fraud).  The presets below reproduce those *ratios*
at laptop scale; the ``scale`` parameter grows or shrinks the population
proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GeneratorConfig
from .entities import Dataset
from .generator import LeasingPlatformSimulator

__all__ = ["make_d1", "make_d2", "DatasetStatistics", "dataset_statistics"]


def make_d1(scale: float = 1.0, seed: int = 7, **overrides) -> Dataset:
    """Generate the D1-like dataset: mostly normal users, ~6 % fraud.

    The paper's D1 positive rate is 1.4 %; at laptop scale that leaves too few
    positives to train on, so the default raises it to 8 % while keeping the
    normal-majority regime.  Pass ``fraud_rate=0.014`` to match the paper
    exactly (needs a larger ``scale`` to be trainable).
    """
    config = GeneratorConfig(n_users=max(200, int(4000 * scale)), fraud_rate=0.08)
    for key, value in overrides.items():
        setattr(config, key, value)
    return LeasingPlatformSimulator(config, seed=seed).generate(name="D1")


def make_d2(scale: float = 1.0, seed: int = 11, **overrides) -> Dataset:
    """Generate the D2-like dataset: applicant stream dominated by positives.

    In the paper >90 % of D2 applications were rejected by Jimi's original
    risk management system and count as positive samples, giving 92.3 %
    positives overall.  We reproduce that by layering a large population of
    rejected applicants (blatant fraud crews) on a small legitimate base.
    """
    config = GeneratorConfig(
        n_users=max(300, int(1200 * scale)),
        fraud_rate=0.30,
        rejected_applicant_fraction=6.0,
        mean_ring_size=10.0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return LeasingPlatformSimulator(config, seed=seed).generate(name="D2")


@dataclass(slots=True)
class DatasetStatistics:
    """The row format of Table II."""

    name: str
    n_nodes: int
    n_positive: int
    n_edges: int
    n_types: int

    def as_row(self) -> str:
        """Render the statistics as an aligned Table II row."""
        return (
            f"{self.name:<8}{self.n_nodes:>10,}{self.n_positive:>12,}"
            f"{self.n_edges:>12,}{self.n_types:>8}"
        )


def dataset_statistics(dataset: Dataset, bn) -> DatasetStatistics:
    """Compute the Table II row for ``dataset`` with its built BN.

    ``bn`` is a :class:`~repro.network.bn.BehaviorNetwork`; accepted untyped
    to avoid a circular import.
    """
    labels = dataset.labels
    return DatasetStatistics(
        name=dataset.name,
        n_nodes=len(labels),
        n_positive=sum(labels.values()),
        n_edges=bn.num_edges(),
        n_types=len(bn.edge_types()),
    )
