"""Domain entities of the deposit-free leasing platform.

These mirror the formalization of Section II-B: users ``u`` with profile
features ``X_u``, transactions ``tau`` with features ``X_tau``, and behavior
logs ``b_u^t = [u, r, s, t]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .behavior_types import BehaviorType

__all__ = ["User", "Transaction", "BehaviorLog", "SECOND", "MINUTE", "HOUR", "DAY"]

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


@dataclass(frozen=True, slots=True)
class BehaviorLog:
    """One behavior log record ``[uid, r, s, timestamp]``."""

    uid: int
    btype: BehaviorType
    value: str
    timestamp: float


@dataclass(slots=True)
class User:
    """A registered platform user with profile information ``X_u``.

    ``is_fraud`` is the ground-truth label (Section II-B: pays rent for at
    most the first 1–2 lease periods, then stops and keeps the goods).
    ``ring_id`` groups fraudsters organized by the same grey-industry crew;
    lone-wolf fraudsters have ``ring_id is None``.
    """

    uid: int
    registered_at: float
    is_fraud: bool = False
    ring_id: int | None = None
    age: float = 30.0
    credit_score: float = 650.0
    income_level: float = 3.0
    occupation_code: int = 0
    phone_verified: bool = True
    id_verified: bool = True
    third_party_score: float = 0.5
    historical_leases: int = 0
    packaged_identity: bool = False


@dataclass(slots=True)
class Transaction:
    """A leasing application ``tau`` that passed the audit process.

    ``paid_periods`` out of ``lease_term`` records the rent payment history
    observed *after* the lease, which defines the label but is obviously not
    available to the detector at audit time.
    """

    txn_id: int
    uid: int
    created_at: float
    item_value: float = 3000.0
    lease_term: int = 12
    monthly_rent: float = 250.0
    is_fraud: bool = False
    paid_periods: int = 12
    rejected_by_rules: bool = False

    @property
    def audit_at(self) -> float:
        """Audit happens within a business day of the application."""
        return self.created_at + DAY


@dataclass(slots=True)
class Dataset:
    """A generated benchmark dataset (synthetic stand-in for Jimi data)."""

    name: str
    users: list[User] = field(default_factory=list)
    transactions: list[Transaction] = field(default_factory=list)
    logs: list[BehaviorLog] = field(default_factory=list)
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def labels(self) -> dict[int, int]:
        """uid -> {0, 1} fraud label over users that have transactions."""
        with_txn = {t.uid for t in self.transactions}
        return {u.uid: int(u.is_fraud) for u in self.users if u.uid in with_txn}

    def user_by_id(self) -> dict[int, User]:
        """Index users by uid."""
        return {u.uid: u for u in self.users}

    def transactions_by_user(self) -> dict[int, list[Transaction]]:
        """Group transactions by uid."""
        result: dict[int, list[Transaction]] = {}
        for txn in self.transactions:
            result.setdefault(txn.uid, []).append(txn)
        return result

    def logs_by_user(self) -> dict[int, list[BehaviorLog]]:
        """Group behavior logs by uid."""
        result: dict[int, list[BehaviorLog]] = {}
        for log in self.logs:
            result.setdefault(log.uid, []).append(log)
        return result
