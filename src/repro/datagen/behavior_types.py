"""Behavior types of Table I and the canonical BN edge-type set.

The paper's Table I lists ten behavior types; the constructed BN of Table II
uses eight edge types (Fig. 7 names them: Device ID, IMEI, IMSI, IP, Wi-Fi
MAC, GPS, GPS of delivery address, workplace).  Precise GPS coordinates
essentially never collide between users, so — as in the paper — the
co-occurrence edges for location use the 100-metre grid variants; we keep the
precise variants in the enum for the feature pipeline.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["BehaviorType", "EDGE_TYPES", "DETERMINISTIC_TYPES", "PROBABILISTIC_TYPES"]


class BehaviorType(str, Enum):
    """A behavior-log type ``r`` in a log record ``[u, r, s, t]`` (Table I)."""

    DEVICE_ID = "device_id"
    IMEI = "imei"
    IMSI = "imsi"
    IPV4 = "ipv4"
    WIFI_MAC = "wifi_mac"
    GPS = "gps"
    GPS_100 = "gps_100"
    GPS_DEV = "gps_dev"
    GPS_DEV_100 = "gps_dev_100"
    WORKPLACE = "workplace"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The eight edge types used to build BN (Table II reports ``# type == 8``).
EDGE_TYPES: tuple[BehaviorType, ...] = (
    BehaviorType.DEVICE_ID,
    BehaviorType.IMEI,
    BehaviorType.IMSI,
    BehaviorType.IPV4,
    BehaviorType.WIFI_MAC,
    BehaviorType.GPS_100,
    BehaviorType.GPS_DEV_100,
    BehaviorType.WORKPLACE,
)

#: Types conveying near-certain relations (Section VI-C: "two people sharing
#: the same device must be related to each other").
DETERMINISTIC_TYPES: tuple[BehaviorType, ...] = (
    BehaviorType.DEVICE_ID,
    BehaviorType.IMEI,
    BehaviorType.IMSI,
)

#: Types whose co-occurrence may be coincidental (public Wi-Fi, shared IP...).
PROBABILISTIC_TYPES: tuple[BehaviorType, ...] = (
    BehaviorType.IPV4,
    BehaviorType.WIFI_MAC,
    BehaviorType.GPS_100,
    BehaviorType.GPS_DEV_100,
    BehaviorType.WORKPLACE,
)
