"""Turbo reproduction: fraud detection in deposit-free leasing services.

Full reimplementation of Hu et al., *"Turbo: Fraud Detection in Deposit-free
Leasing Service via Real-Time Behavior Network Mining"* (ICDE 2021):

* :mod:`repro.datagen` — synthetic leasing platform (Jimi-data substitute);
* :mod:`repro.network` — Behavior Network construction (Algorithm 1);
* :mod:`repro.features` — the X_u / X_tau / X_s feature pipeline;
* :mod:`repro.core` — HAG with the SAO and CFO operators;
* :mod:`repro.baselines` — every competitor of the evaluation section;
* :mod:`repro.system` — the online Turbo system with latency simulation;
* :mod:`repro.eval` — metrics, splits, empirical studies, experiment runner;
* :mod:`repro.nn` — the numpy autograd substrate the models run on.

Quickstart::

    from repro import make_d1, prepare_experiment, get_method, run_method

    dataset = make_d1(scale=0.3)
    data = prepare_experiment(dataset)
    report, scores = run_method(get_method("HAG"), data)
    print(report.as_percentages())
"""

from .core import HAG, CFOLayer, SAOLayer, prepare_aggregators
from .datagen import (
    BehaviorType,
    Dataset,
    GeneratorConfig,
    LeasingPlatformSimulator,
    make_d1,
    make_d2,
)
from .eval import (
    classification_report,
    prepare_experiment,
    repeat_method,
    run_method,
)
from .baselines import get_method, method_names
from .network import BehaviorNetwork, BNBuilder, computation_subgraph
from .system import Turbo, deploy_turbo

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BehaviorType",
    "Dataset",
    "GeneratorConfig",
    "LeasingPlatformSimulator",
    "make_d1",
    "make_d2",
    "BehaviorNetwork",
    "BNBuilder",
    "computation_subgraph",
    "HAG",
    "SAOLayer",
    "CFOLayer",
    "prepare_aggregators",
    "classification_report",
    "prepare_experiment",
    "run_method",
    "repeat_method",
    "get_method",
    "method_names",
    "Turbo",
    "deploy_turbo",
]
