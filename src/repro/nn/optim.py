"""First-order optimizers for the autograd substrate."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of every managed parameter."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update step (implemented by subclasses)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one (momentum) SGD update to every parameter."""
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used by the paper (lr 5e-4)."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 5e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected Adam update to every parameter."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
