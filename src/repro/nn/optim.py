"""First-order optimizers for the autograd substrate."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of every managed parameter."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update step (implemented by subclasses)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one (momentum) SGD update to every parameter."""
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used by the paper (lr 5e-4)."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 5e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        #: two per-parameter scratch buffers so the update runs allocation
        #: free: one holds the (decayed) gradient / numerator, the other the
        #: second-moment term / denominator — both are live at once.
        self._num = [np.empty_like(p.data) for p in self.params]
        self._den = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected Adam update to every parameter.

        The update is computed entirely in preallocated scratch buffers —
        zero per-parameter temporaries.  Every fused ufunc call performs the
        same elementwise operation sequence as :meth:`_step_reference` (only
        the output buffer differs, and scalar multiplication order, which
        IEEE-754 rounds identically), so the two are bit-exact; the test
        suite pins that equivalence.
        """
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v, num, den in zip(
            self.params, self._m, self._v, self._num, self._den
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=num)
                np.add(grad, num, out=num)
                grad = num
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=den)
            m += den
            v *= self.beta2
            np.multiply(grad, grad, out=den)
            den *= 1.0 - self.beta2
            v += den
            # grad (possibly aliasing ``num``) is dead past this point, so
            # the numerator can be built in place.
            np.divide(v, bias2, out=den)
            np.sqrt(den, out=den)
            den += self.eps
            np.divide(m, bias1, out=num)
            num *= self.lr
            np.divide(num, den, out=num)
            param.data -= num

    def _step_reference(self) -> None:
        """The pre-fusion update, one temporary per line — kept verbatim.

        This is the update :meth:`step` replaced with in-place arithmetic;
        the optimizer tests run both against identical parameter clones and
        assert bit-identical trajectories, so any future edit to ``step``
        that changes the float sequence fails loudly.
        """
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
