"""Differentiable sparse-dense products over ``scipy.sparse`` matrices.

GNN layers aggregate neighbourhoods as ``A @ H`` where ``A`` is a (typically
row-normalized) sparse adjacency matrix that is *constant* with respect to the
loss.  Only the dense operand therefore needs a gradient, which keeps the op
simple: ``d(A @ H)/dH = A^T @ grad``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor

__all__ = ["spmm"]


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a constant sparse ``matrix`` by a differentiable ``dense`` tensor.

    Parameters
    ----------
    matrix:
        ``(m, n)`` scipy sparse matrix, treated as a constant.
    dense:
        ``(n, d)`` or ``(n,)`` tensor.

    Returns
    -------
    Tensor of shape ``(m, d)`` (or ``(m,)``).
    """
    if not sp.issparse(matrix):
        raise TypeError(f"expected a scipy sparse matrix, got {type(matrix)!r}")
    csr = matrix.tocsr()
    out_data = np.asarray(csr @ dense.data)
    csr_t = csr.T.tocsr()

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        return [(dense, np.asarray(csr_t @ g))]

    return Tensor._make(out_data, (dense,), backward)
