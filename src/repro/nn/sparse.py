"""Differentiable sparse-dense products over ``scipy.sparse`` matrices.

GNN layers aggregate neighbourhoods as ``A @ H`` where ``A`` is a (typically
row-normalized) sparse adjacency matrix that is *constant* with respect to the
loss.  Only the dense operand therefore needs a gradient, which keeps the op
simple: ``d(A @ H)/dH = A^T @ grad``.

Two hot-path properties are guaranteed here (and pinned by tests via
:func:`transpose_conversion_count`):

* the CSR transpose is built *lazily*, inside the backward closure — a
  forward-only (``no_grad``) pass performs zero transpose conversions;
* a :class:`PreparedAggregator` memoizes its transpose, so a training run
  converts each aggregator at most once no matter how many layers, batches,
  or epochs reuse it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, _blocked_matmul, _unbroadcast

__all__ = [
    "spmm",
    "spmm_affine",
    "PreparedAggregator",
    "as_csr",
    "csr_gather_rows",
    "transpose_conversion_count",
    "reset_transpose_conversion_count",
]


def csr_gather_rows(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Ragged row gather over a CSR ``indptr``: one vectorized slice-concat.

    Returns ``(out_indptr, gidx)`` where ``gidx`` indexes the CSR's value
    arrays so that ``values[gidx]`` is the concatenation of
    ``values[indptr[r]:indptr[r+1]]`` for every ``r`` in ``rows`` (row
    order preserved), and ``out_indptr`` is the matching per-row offset
    array.  This is the frontier-expansion primitive of the full-graph
    materialization path: it replaces a per-row Python loop with O(total
    gathered entries) numpy work.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    out_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=out_indptr[1:])
    total = int(out_indptr[-1])
    if not total:
        return out_indptr, np.empty(0, dtype=np.int64)
    gidx = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_indptr[:-1], lengths)
        + np.repeat(starts, lengths)
    )
    return out_indptr, gidx

_TRANSPOSE_CONVERSIONS = 0


def transpose_conversion_count() -> int:
    """How many CSR transpose conversions :func:`spmm` has performed."""
    return _TRANSPOSE_CONVERSIONS


def reset_transpose_conversion_count() -> None:
    """Reset the conversion counter (test isolation helper)."""
    global _TRANSPOSE_CONVERSIONS
    _TRANSPOSE_CONVERSIONS = 0


def _transpose_csr(csr: sp.csr_matrix) -> sp.csr_matrix:
    global _TRANSPOSE_CONVERSIONS
    _TRANSPOSE_CONVERSIONS += 1
    return csr.T.tocsr()


class PreparedAggregator:
    """A constant aggregation matrix with a memoized CSR transpose.

    Wraps the forward operand ``A`` (kept in CSR form) and builds ``A^T``
    once, on the first backward pass that needs it.  Pass instances of this
    class to :func:`spmm` (or any layer that calls it) wherever the same
    aggregator is reused across layers or steps.
    """

    __slots__ = ("matrix", "_transpose")

    def __init__(self, matrix: sp.spmatrix) -> None:
        if not sp.issparse(matrix):
            raise TypeError(f"expected a scipy sparse matrix, got {type(matrix)!r}")
        self.matrix = matrix.tocsr()
        self._transpose: sp.csr_matrix | None = None

    # -- matrix-like conveniences (tests and analysis code use these) ----
    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def tocsr(self) -> sp.csr_matrix:
        """The wrapped forward matrix, unchanged (no copy)."""
        return self.matrix

    def toarray(self) -> np.ndarray:
        """Densify the wrapped forward matrix."""
        return self.matrix.toarray()

    def __matmul__(self, other):
        return self.matrix @ other

    def __repr__(self) -> str:
        cached = "cached" if self._transpose is not None else "lazy"
        return f"PreparedAggregator(shape={self.shape}, nnz={self.nnz}, transpose={cached})"

    def transpose_csr(self) -> sp.csr_matrix:
        """``A^T`` in CSR form, built on first use and memoized."""
        if self._transpose is None:
            self._transpose = _transpose_csr(self.matrix)
        return self._transpose


def as_csr(matrix: sp.spmatrix | PreparedAggregator) -> sp.csr_matrix:
    """Unwrap a sparse matrix or :class:`PreparedAggregator` to plain CSR."""
    if isinstance(matrix, PreparedAggregator):
        return matrix.matrix
    if not sp.issparse(matrix):
        raise TypeError(f"expected a scipy sparse matrix, got {type(matrix)!r}")
    return matrix.tocsr()


def spmm(matrix: sp.spmatrix | PreparedAggregator, dense: Tensor) -> Tensor:
    """Multiply a constant sparse ``matrix`` by a differentiable ``dense`` tensor.

    Parameters
    ----------
    matrix:
        ``(m, n)`` scipy sparse matrix or :class:`PreparedAggregator`,
        treated as a constant.
    dense:
        ``(n, d)`` or ``(n,)`` tensor.

    Returns
    -------
    Tensor of shape ``(m, d)`` (or ``(m,)``).
    """
    if isinstance(matrix, PreparedAggregator):
        csr = matrix.matrix
        transpose = matrix.transpose_csr
    elif sp.issparse(matrix):
        csr = matrix.tocsr()

        def transpose() -> sp.csr_matrix:
            return _transpose_csr(csr)

    else:
        raise TypeError(f"expected a scipy sparse matrix, got {type(matrix)!r}")
    out_data = np.asarray(csr @ dense.data)

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        return [(dense, np.asarray(transpose() @ g))]

    return Tensor._make(out_data, (dense,), backward)


def spmm_affine(
    matrix: sp.spmatrix | PreparedAggregator,
    dense: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
) -> Tensor:
    """Fused ``(matrix @ dense) @ weight + bias`` as a single autograd node.

    The aggregate-then-affine pattern is every message-passing layer's hot
    path.  Fusing it collapses three graph nodes (spmm, matmul, add) into
    one: the aggregated activations ``A @ H`` exist only as a cached ndarray
    for the backward pass, never as an intermediate autograd tensor, and one
    backward closure emits all gradients directly.  Bit-exact with the
    unfused chain — the forward runs the identical op sequence (sparse
    product, ``_blocked_matmul``, broadcast add) and the chain's backward
    composes to exactly the formulas below.

    ``dense`` must be 2-D ``(n, d)``; ``weight`` is ``(d, k)``.
    """
    if isinstance(matrix, PreparedAggregator):
        csr = matrix.matrix
        transpose = matrix.transpose_csr
    elif sp.issparse(matrix):
        csr = matrix.tocsr()

        def transpose() -> sp.csr_matrix:
            return _transpose_csr(csr)

    else:
        raise TypeError(f"expected a scipy sparse matrix, got {type(matrix)!r}")
    if dense.ndim != 2 or weight.ndim != 2:
        raise ValueError("spmm_affine requires 2-D dense and weight tensors")
    agg = np.asarray(csr @ dense.data)
    out_data = _blocked_matmul(agg, weight.data)
    if bias is not None:
        out_data = out_data + bias.data

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        gz = g @ np.swapaxes(weight.data, -1, -2)
        grads = [
            (dense, np.asarray(transpose() @ gz)),
            (weight, _unbroadcast(np.swapaxes(agg, -1, -2) @ g, weight.shape)),
        ]
        if bias is not None:
            grads.append((bias, _unbroadcast(g, bias.data.shape)))
        return grads

    parents = (dense, weight) if bias is None else (dense, weight, bias)
    return Tensor._make(out_data, parents, backward)
