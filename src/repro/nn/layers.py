"""Composable neural-network modules on top of :mod:`repro.nn.tensor`."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from . import init
from .tensor import Tensor, addmm, is_grad_enabled

__all__ = ["Module", "Linear", "MLP", "Dropout", "Sequential", "ModuleList"]


class Module:
    """Base class providing parameter discovery and train/eval switching.

    Subclasses register parameters as ``Tensor`` attributes (or nested
    ``Module`` / ``ModuleList`` attributes); :meth:`parameters` walks the
    object graph, mirroring the familiar torch API.
    """

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Tensor]:
        """All trainable tensors reachable from this module."""
        found: list[Tensor] = []
        seen: set[int] = set()
        self._collect(found, seen)
        return found

    def _collect(self, found: list[Tensor], seen: set[int]) -> None:
        if id(self) in seen:
            return
        seen.add(id(self))
        for value in self.__dict__.values():
            self._collect_value(value, found, seen)

    @staticmethod
    def _collect_value(value: object, found: list[Tensor], seen: set[int]) -> None:
        if isinstance(value, Tensor):
            if value.requires_grad and id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                Module._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                Module._collect_value(item, found, seen)

    def train(self) -> "Module":
        """Switch this module (and submodules) to training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch this module (and submodules) to inference mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            self._set_mode_value(value, training)

    @staticmethod
    def _set_mode_value(value: object, training: bool) -> None:
        if isinstance(value, Module):
            value._set_mode(training)
        elif isinstance(value, (list, tuple)):
            for item in value:
                Module._set_mode_value(item, training)
        elif isinstance(value, dict):
            for item in value.values():
                Module._set_mode_value(item, training)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat snapshot of all parameter arrays (ordered by discovery)."""
        return {f"p{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from a ``state_dict`` snapshot."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays but model has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            array = state[f"p{i}"]
            if array.shape != param.data.shape:
                raise ValueError(f"shape mismatch for parameter {i}")
            param.data = array.copy()

    def __call__(self, *args, **kwargs):
        """Alias for :meth:`forward`."""
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        """Compute the module's output (must be overridden)."""
        raise NotImplementedError


class ModuleList(Module):
    """A list of sub-modules that participates in parameter discovery."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        """Add a submodule to the list."""
        self.items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]


class Linear(Module):
    """Affine layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Affine map of the input rows.

        Batched inputs take the fused :func:`~repro.nn.tensor.addmm` path
        (one graph node, no intermediate activation); it is bit-exact with
        the matmul-then-add pair, which remains as the 1-D fallback.
        """
        if self.bias is not None and x.ndim >= 2:
            return addmm(x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; identity in eval mode or when autograd is disabled."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0 or not is_grad_enabled():
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers.

    ``hidden`` lists the intermediate layer widths; the final Linear maps to
    ``out_features`` with no activation (logits).
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        widths = [in_features, *hidden]
        self.hidden_layers = ModuleList(
            Linear(a, b, rng) for a, b in zip(widths[:-1], widths[1:])
        )
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self.head = Linear(widths[-1], out_features, rng)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.hidden_layers:
            x = layer(x).relu()
            if self.dropout is not None:
                x = self.dropout(x)
        return self.head(x)
