"""Minimal autograd + neural network substrate (numpy-only).

The paper trains its models with a deep-learning framework; this package is
the offline replacement.  It provides:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autodiff over numpy arrays;
* :mod:`~repro.nn.layers` — ``Module``/``Linear``/``MLP``/``Dropout``;
* :mod:`~repro.nn.optim` — ``SGD`` and ``Adam``;
* :mod:`~repro.nn.losses` — BCE-with-logits, hinge, MSE;
* :func:`~repro.nn.sparse.spmm` — differentiable sparse @ dense products for
  GNN neighbourhood aggregation.
"""

from .init import kaiming_uniform, normal, xavier_normal, xavier_uniform, zeros
from .layers import MLP, Dropout, Linear, Module, ModuleList, Sequential
from .losses import bce_with_logits, hinge_loss, mse_loss
from .optim import SGD, Adam, Optimizer
from .sparse import (
    PreparedAggregator,
    as_csr,
    csr_gather_rows,
    reset_transpose_conversion_count,
    spmm,
    spmm_affine,
    transpose_conversion_count,
)
from .tensor import (
    Tensor,
    addmm,
    as_tensor,
    concat,
    is_grad_enabled,
    no_grad,
    row_blocks,
    segment_sum,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "addmm",
    "as_tensor",
    "concat",
    "stack",
    "segment_sum",
    "where",
    "no_grad",
    "is_grad_enabled",
    "row_blocks",
    "Module",
    "ModuleList",
    "Linear",
    "MLP",
    "Dropout",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "bce_with_logits",
    "hinge_loss",
    "mse_loss",
    "spmm",
    "spmm_affine",
    "PreparedAggregator",
    "as_csr",
    "csr_gather_rows",
    "transpose_conversion_count",
    "reset_transpose_conversion_count",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "normal",
    "zeros",
]
