"""Loss functions for binary fraud classification."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = ["bce_with_logits", "hinge_loss", "mse_loss"]


def bce_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    pos_weight: float = 1.0,
) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits.

    Uses the log-sum-exp form ``max(x, 0) - x*y + log(1 + exp(-|x|))`` so no
    intermediate sigmoid can saturate.  ``pos_weight`` rescales the positive
    class, the standard remedy for the extreme class imbalance of the D1
    dataset (918 fraudsters among 67 072 users in the paper).
    """
    targets = np.asarray(targets, dtype=np.float64)
    x = logits
    relu_x = x.relu()
    softplus = (1.0 + (x.abs() * -1.0).exp()).log()
    per_example = relu_x - x * Tensor(targets) + softplus
    if pos_weight != 1.0:
        weights = np.where(targets > 0.5, pos_weight, 1.0)
        per_example = per_example * Tensor(weights)
        return per_example.sum() * (1.0 / weights.sum())
    return per_example.mean()


def hinge_loss(scores: Tensor, targets: np.ndarray, margin: float = 1.0) -> Tensor:
    """Mean hinge loss; ``targets`` in {0, 1} are mapped to {-1, +1}."""
    signs = np.where(np.asarray(targets, dtype=np.float64) > 0.5, 1.0, -1.0)
    slack = (as_tensor(margin) - scores * Tensor(signs)).relu()
    return slack.mean()


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error (used by embedding regressors in tests)."""
    diff = predictions - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()
