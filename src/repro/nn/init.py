"""Weight initialization schemes for the autograd substrate."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "normal"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> Tensor:
    """Glorot/Xavier uniform initialization for a weight of ``shape``."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-limit, limit, size=shape), requires_grad=True)


def xavier_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> Tensor:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> Tensor:
    """He uniform initialization (suits ReLU networks)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return Tensor(rng.uniform(-limit, limit, size=shape), requires_grad=True)


def zeros(shape: tuple[int, ...]) -> Tensor:
    """Zero-initialized trainable tensor (for biases)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01
) -> Tensor:
    """Small-variance normal initialization (for attention vectors)."""
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
