"""Reverse-mode automatic differentiation on numpy arrays.

This module is the neural-network substrate of the reproduction: the paper
trains HAG and its GNN baselines with a deep-learning framework, which is not
available offline, so we implement a small but complete autograd engine.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it.  Calling :meth:`Tensor.backward` on a scalar result propagates
gradients to every ancestor created with ``requires_grad=True``.  All ops are
broadcast-aware; gradients of broadcast operands are reduced back to the
operand's shape.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "addmm",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "row_blocks",
]

_GRAD_ENABLED = True
_ROW_BLOCKS: np.ndarray | None = None


class no_grad:
    """Context manager that disables graph recording (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for autograd."""
    return _GRAD_ENABLED


class row_blocks:
    """Compute dense matmuls one row block at a time inside the context.

    BLAS kernels pick their blocking/threading strategy from the *full*
    operand shapes, so the float64 result of ``packed[s:e] @ W`` computed as
    part of one big product is not always bit-identical to the standalone
    per-block product — summation order inside a dot product may differ.
    Batched inference that promises bit-exact parity with the scalar path
    (``HAG.predict_subgraphs``) therefore packs requests row-wise and enters
    this context with the block boundaries: every 2-D matmul whose left
    operand covers exactly ``boundaries[-1]`` rows is then evaluated per
    block, which *is* the scalar computation by construction.  All other ops
    in the forward (sparse aggregation, elementwise nonlinearities, row
    softmax, stacked 3-D matmuls) are row-local already and run genuinely
    packed.

    ``boundaries`` is the cumulative row-offset array ``[0, n1, n1+n2, ...]``.
    """

    def __init__(self, boundaries: Sequence[int] | np.ndarray) -> None:
        bounds = np.asarray(boundaries, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ValueError("boundaries must be a 1-D cumulative offset array")
        if bounds[0] != 0 or np.any(np.diff(bounds) < 0):
            raise ValueError("boundaries must start at 0 and be non-decreasing")
        self.boundaries = bounds

    def __enter__(self) -> "row_blocks":
        global _ROW_BLOCKS
        self._prev = _ROW_BLOCKS
        _ROW_BLOCKS = self.boundaries
        return self

    def __exit__(self, *exc: object) -> None:
        global _ROW_BLOCKS
        _ROW_BLOCKS = self._prev


def _blocked_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b``, sliced per active row block when that reproduces scalar bits."""
    bounds = _ROW_BLOCKS
    if (
        bounds is None
        or a.ndim != 2
        or b.ndim not in (1, 2)
        or a.shape[0] != bounds[-1]
    ):
        return a @ b
    shape = (a.shape[0], b.shape[1]) if b.ndim == 2 else (a.shape[0],)
    out = np.empty(shape, dtype=np.result_type(a, b))
    for start, stop in zip(bounds[:-1], bounds[1:]):
        out[start:stop] = a[start:stop] @ b
    return out


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` ndarray.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        tag = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar payload as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        If ``grad`` is omitted the tensor must be scalar and a seed gradient
        of 1.0 is used.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the recorded graph.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            g = grads.pop(id(node), None)
            if g is None or node._backward is None:
                continue
            for parent, pg in node._backward(g):
                if not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pg
                else:
                    grads[id(parent)] = pg
                parent._accumulate(pg)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [
                (self, _unbroadcast(g, self.shape)),
                (other, _unbroadcast(g, other.shape)),
            ]

        return Tensor._make(out_data, (self, other), backward)

    def __radd__(self, other: float) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, -g)]

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self.__add__(as_tensor(other).__neg__())

    def __rsub__(self, other: float) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [
                (self, _unbroadcast(g * other.data, self.shape)),
                (other, _unbroadcast(g * self.data, other.shape)),
            ]

        return Tensor._make(out_data, (self, other), backward)

    def __rmul__(self, other: float) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [
                (self, _unbroadcast(g / other.data, self.shape)),
                (
                    other,
                    _unbroadcast(-g * self.data / (other.data**2), other.shape),
                ),
            ]

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: float) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * exponent * self.data ** (exponent - 1))]

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out_data = _blocked_matmul(self.data, other.data)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            grads: list[tuple[Tensor, np.ndarray]] = []
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                grads.append((self, g * b))
                grads.append((other, g * a))
            elif a.ndim == 1:
                # a: (k,), b: (..., k, m), out/g: (..., m)
                ga = (b * g[..., None, :]).reshape(-1, b.shape[-2], b.shape[-1])
                grads.append((self, ga.sum(axis=(0, 2))))
                gb = a[:, None] * g[..., None, :]
                grads.append((other, _unbroadcast(gb, b.shape)))
            elif b.ndim == 1:
                # a: (..., k), b: (k,), out/g: (...)
                grads.append((self, g[..., None] * b))
                gb = (a * g[..., None]).reshape(-1, a.shape[-1]).sum(axis=0)
                grads.append((other, gb))
            else:
                ga = g @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ g
                grads.append((self, _unbroadcast(ga, a.shape)))
                grads.append((other, _unbroadcast(gb, b.shape)))
            return grads

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        """Elementwise ``max(x, 0)``."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * mask)]

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """Elementwise leaky ReLU with the given negative slope."""
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * np.where(mask, 1.0, negative_slope))]

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * (1.0 - out_data**2))]

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (input clipped for stability)."""
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * out_data * (1.0 - out_data))]

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential (input clipped for stability)."""
        out_data = np.exp(np.clip(self.data, -500, 500))

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * out_data)]

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g / self.data)]

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient sign(x))."""
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * sign)]

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient masked outside."""
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g * mask)]

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            g = np.asarray(g)
            if axis is None:
                return [(self, np.broadcast_to(g, self.shape).copy())]
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            return [(self, np.broadcast_to(g, self.shape).copy())]

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when ``None``)."""
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; ties share the gradient equally."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            g = np.asarray(g)
            if axis is None:
                mask = self.data == out_data
                return [(self, g * mask / mask.sum())]
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = self.data == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return [(self, g_exp * mask / counts)]

        return Tensor._make(out_data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        """Return a view with the requested shape (supports ``-1``)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g.reshape(original))]

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        """Reshape to one dimension."""
        return self.reshape(-1)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (reversed order when none are given)."""
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g.transpose(inverse))]

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            return [(self, full)]

        return Tensor._make(out_data, (self,), backward)

    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows by integer index (with repeats), differentiable."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            full = np.zeros_like(self.data)
            np.add.at(full, indices, g)
            return [(self, full)]

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (implemented as primitives for numerical stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out_data = e / e.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            return [(self, out_data * (g - dot))]

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        soft = np.exp(out_data)

        def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
            return [(self, g - soft * g.sum(axis=axis, keepdims=True))]

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: "Tensor | np.ndarray | float | int | Sequence") -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        grads = []
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            grads.append((t, g[tuple(index)]))
        return grads

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        slabs = np.split(g, len(tensors), axis=axis)
        return [(t, np.squeeze(s, axis=axis)) for t, s in zip(tensors, slabs)]

    return Tensor._make(out_data, tuple(tensors), backward)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets given by ``segment_ids``.

    The inverse of :meth:`Tensor.index_select`; together they implement
    sparse gather/scatter message passing (used by the GAT baseline and the
    edge-level operators).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, values.data)

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        return [(values, g[segment_ids])]

    return Tensor._make(out_data, (values,), backward)


def addmm(x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """Fused ``x @ weight + bias`` as a single autograd node.

    One graph node instead of two kills the intermediate activation tensor
    and one ``_accumulate`` pass per training step.  Bit-exact with the
    unfused pair: the forward is the same ``_blocked_matmul`` followed by
    the same broadcast add, and the unfused add's backward passes the
    incoming gradient through unchanged (``_unbroadcast`` to an identical
    shape is the identity), so the three gradients below are precisely the
    arrays the two-node graph would produce.

    Restricted to ``x.ndim >= 2`` with a 2-D ``weight`` — the shapes where
    the fused backward formulas match ``__matmul__``'s general-case branch.
    """
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    if x.ndim < 2 or weight.ndim != 2:
        raise ValueError("addmm requires x.ndim >= 2 and a 2-D weight")
    out_data = _blocked_matmul(x.data, weight.data) + bias.data

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        ga = g @ np.swapaxes(weight.data, -1, -2)
        gw = np.swapaxes(x.data, -1, -2) @ g
        return [
            (x, _unbroadcast(ga, x.shape)),
            (weight, _unbroadcast(gw, weight.shape)),
            (bias, _unbroadcast(g, bias.shape)),
        ]

    return Tensor._make(out_data, (x, weight, bias), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select between two tensors by a boolean ndarray mask."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(g: np.ndarray) -> list[tuple[Tensor, np.ndarray]]:
        return [
            (a, _unbroadcast(np.where(condition, g, 0.0), a.shape)),
            (b, _unbroadcast(np.where(condition, 0.0, g), b.shape)),
        ]

    return Tensor._make(out_data, (a, b), backward)
