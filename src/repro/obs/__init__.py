"""Observability subsystem: tracing, metrics and training profiling.

The paper's Section V claims rest on per-stage latency accounting (Fig. 8a)
and on production-style operational telemetry.  This package makes both
first-class, in the spirit of production GNN-serving systems (BRIGHT,
InferTurbo):

* :mod:`repro.obs.tracing` — per-request span trees.  Every
  ``Turbo.predict`` call produces a ``request`` root span with
  ``bn_sample`` / ``feature_fetch`` / ``inference`` / ``fallback``
  children, simulated-clock timestamps, retry/degradation annotations and
  fault events stamped by the injector on the span that absorbed them.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  gauges and histograms.  ``repro.system.monitoring`` is a thin view over
  it, so dashboard counters and metric values reconcile exactly.
* :mod:`repro.obs.export` — JSONL span exporter/loader plus the
  span-derived latency table that validates the tracer against the
  latency model bit-for-bit (``benchmarks/bench_fig8a_response_time.py``).
* :mod:`repro.obs.profiling` — wall-clock profiling hooks for the offline
  training loops (per-epoch and per-stage timings, sampled-node counts).

See ``docs/OBSERVABILITY.md`` for the span model, metric names and the
exporter format.
"""

from .export import (
    latency_table_from_spans,
    load_spans_jsonl,
    rebuild_trees,
    span_to_dict,
    write_spans_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiling import EpochProfile, NullProfiler, TrainProfiler
from .tracing import (
    Span,
    TraceContext,
    Tracer,
    assert_all_traced,
    current_span,
    render_span_tree,
    use_span,
)

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "current_span",
    "use_span",
    "render_span_tree",
    "assert_all_traced",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TrainProfiler",
    "NullProfiler",
    "EpochProfile",
    "span_to_dict",
    "write_spans_jsonl",
    "load_spans_jsonl",
    "rebuild_trees",
    "latency_table_from_spans",
]
