"""Wall-clock profiling hooks for the offline training loops.

Unlike the online system — whose latency is *charged* against the
simulated :class:`~repro.system.latency.LatencyModel` — offline training
(``repro.core.trainer`` / ``repro.core.minibatch``) runs real numpy work,
so the profiler measures real wall time via ``time.perf_counter``.

Usage::

    profiler = TrainProfiler()
    train_node_classifier(..., profiler=profiler)
    print(profiler.report())

Each epoch produces an :class:`EpochProfile` with total seconds, the loss,
per-stage timings (``forward``, ``backward``, ``step``, ``validation``;
neighbor-sampled training adds ``sampling`` and ``induction``), the batch
count, and the number of sampled subgraph nodes.  Totals are mirrored
into an optional :class:`~repro.obs.metrics.MetricsRegistry` under the
``train.*`` metric names documented in ``docs/OBSERVABILITY.md``.

:class:`NullProfiler` is the no-op stand-in the training loops fall back
to when no profiler is passed; its hooks cost one attribute lookup and a
shared no-op context manager, keeping the hot path unperturbed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = ["EpochProfile", "TrainProfiler", "NullProfiler"]


@dataclass(slots=True)
class EpochProfile:
    """Timings and counts of one training epoch."""

    epoch: int
    seconds: float = 0.0
    loss: float = float("nan")
    stages: dict[str, float] = field(default_factory=dict)
    batches: int = 0
    sampled_nodes: int = 0


class NullProfiler:
    """No-op profiler: every hook does nothing (shared ``nullcontext``)."""

    _CTX = nullcontext()

    def epoch(self, index: int):
        """No-op epoch scope."""
        return self._CTX

    def stage(self, name: str):
        """No-op stage scope."""
        return self._CTX

    def count_batch(self, sampled_nodes: int = 0) -> None:
        """No-op batch counter."""

    def record_loss(self, loss: float) -> None:
        """No-op loss recorder."""


class TrainProfiler:
    """Collects per-epoch / per-stage wall-clock timings and sample counts."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry
        self.epochs: list[EpochProfile] = []
        self._current: EpochProfile | None = None

    @contextmanager
    def epoch(self, index: int):
        """Scope one epoch: times it and appends an :class:`EpochProfile`."""
        profile = EpochProfile(epoch=index)
        self._current = profile
        started = time.perf_counter()
        try:
            yield profile
        finally:
            profile.seconds = time.perf_counter() - started
            self.epochs.append(profile)
            self._current = None
            if self.registry is not None:
                self.registry.counter("train.epochs").inc()
                self.registry.histogram("train.epoch_seconds").observe(profile.seconds)
                self.registry.counter("train.batches").inc(profile.batches)
                self.registry.counter("train.sampled_nodes").inc(profile.sampled_nodes)

    @contextmanager
    def stage(self, name: str):
        """Scope one stage; its wall time accumulates on the current epoch."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            if self._current is not None:
                stages = self._current.stages
                stages[name] = stages.get(name, 0.0) + elapsed

    def count_batch(self, sampled_nodes: int = 0) -> None:
        """Count one mini-batch (and the nodes its sampled subgraph holds)."""
        if self._current is not None:
            self._current.batches += 1
            self._current.sampled_nodes += sampled_nodes

    def record_loss(self, loss: float) -> None:
        """Attach the epoch's training loss to the current profile."""
        if self._current is not None:
            self._current.loss = float(loss)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stage_totals(self) -> dict[str, float]:
        """Total seconds per stage across all profiled epochs."""
        totals: dict[str, float] = {}
        for profile in self.epochs:
            for name, seconds in profile.stages.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def total_seconds(self) -> float:
        """Wall-clock seconds across all profiled epochs."""
        return sum(p.seconds for p in self.epochs)

    def report(self) -> str:
        """Plain-text profile: per-stage totals plus epoch/batch counts."""
        totals = self.stage_totals()
        lines = [
            f"epochs={len(self.epochs)}  total={self.total_seconds():.3f}s"
            f"  batches={sum(p.batches for p in self.epochs)}"
            f"  sampled_nodes={sum(p.sampled_nodes for p in self.epochs)}"
        ]
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            share = seconds / self.total_seconds() if self.total_seconds() else 0.0
            lines.append(f"  {name:<12} {seconds:8.3f}s  ({100 * share:5.1f}%)")
        return "\n".join(lines)
