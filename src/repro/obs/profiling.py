"""Wall-clock profiling hooks for the offline training loops.

Unlike the online system — whose latency is *charged* against the
simulated :class:`~repro.system.latency.LatencyModel` — offline training
(``repro.core.trainer`` / ``repro.core.minibatch`` /
``repro.core.train_engine``) runs real numpy work, so the profiler
measures real wall time via ``time.perf_counter``.

Usage::

    profiler = TrainProfiler()
    train_node_classifier(..., profiler=profiler)
    print(profiler.report())

Each epoch produces an :class:`EpochProfile` with total seconds, the loss,
per-stage timings (``forward``, ``backward``, ``step``, ``validation``;
neighbor-sampled training adds ``sampling`` and ``induction``; the
parallel engine adds ``presample``, ``gather``, ``prefetch``, ``reduce``,
``dispatch``, ``workers_busy`` and ``workers_critical``), the batch count,
and the number of sampled subgraph nodes.  Totals are mirrored into an
optional :class:`~repro.obs.metrics.MetricsRegistry` under the ``train.*``
metric names documented in ``docs/OBSERVABILITY.md`` — per-epoch counters
plus one ``train.stage_seconds.<stage>`` histogram per stage — and
:meth:`TrainProfiler.mirror_into` replays them post-hoc into a registry
created *after* training (``deploy_turbo`` publishes them under
``turbo.train.*`` this way).

When a :class:`~repro.obs.tracing.Tracer` is attached, every epoch also
emits a ``train_epoch`` span whose children are the epoch's stages, so
training shows up in ``repro trace`` next to the serving spans.  The
children are laid end-to-end from per-stage *totals*: with the prefetch
pipeline, assembly stages tick on a background thread concurrently with
compute, so the span tree is a cost breakdown, not a timeline (children
may sum past the epoch's own span — that overhang *is* the overlap).

Thread-safety: the prefetch thread records assembly stages while the main
thread records compute stages.  Stage names on the two threads are
disjoint, so the per-name read-modify-write on the stages dict never
races under the GIL.

:class:`NullProfiler` is the no-op stand-in the training loops fall back
to when no profiler is passed; its hooks cost one attribute lookup and a
shared no-op context manager, keeping the hot path unperturbed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["EpochProfile", "TrainProfiler", "NullProfiler"]


@dataclass(slots=True)
class EpochProfile:
    """Timings and counts of one training epoch."""

    epoch: int
    seconds: float = 0.0
    loss: float = float("nan")
    stages: dict[str, float] = field(default_factory=dict)
    batches: int = 0
    sampled_nodes: int = 0


class NullProfiler:
    """No-op profiler: every hook does nothing (shared ``nullcontext``)."""

    _CTX = nullcontext()

    def epoch(self, index: int):
        """No-op epoch scope."""
        return self._CTX

    def stage(self, name: str):
        """No-op stage scope."""
        return self._CTX

    def add_stage_seconds(self, name: str, seconds: float) -> None:
        """No-op externally-timed stage accumulator."""

    def count_batch(self, sampled_nodes: int = 0) -> None:
        """No-op batch counter."""

    def record_loss(self, loss: float) -> None:
        """No-op loss recorder."""


class TrainProfiler:
    """Collects per-epoch / per-stage wall-clock timings and sample counts."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.epochs: list[EpochProfile] = []
        #: stage seconds recorded outside any epoch scope (one-time run
        #: setup such as the engine's ``presample`` pass).
        self.run_stages: dict[str, float] = {}
        self._current: EpochProfile | None = None

    @contextmanager
    def epoch(self, index: int):
        """Scope one epoch: times it and appends an :class:`EpochProfile`."""
        profile = EpochProfile(epoch=index)
        self._current = profile
        started = time.perf_counter()
        try:
            yield profile
        finally:
            profile.seconds = time.perf_counter() - started
            self.epochs.append(profile)
            self._current = None
            if self.registry is not None:
                self._mirror_epoch(self.registry, profile, "")
            if self.tracer is not None:
                self._emit_epoch_trace(profile, started)

    @contextmanager
    def stage(self, name: str):
        """Scope one stage; its wall time accumulates on the current epoch."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage_seconds(name, time.perf_counter() - started)

    def add_stage_seconds(self, name: str, seconds: float) -> None:
        """Accumulate externally-timed seconds onto the current epoch's stage.

        The pooled training path times worker busy spans *in the child
        process* and books them here (``workers_busy``/``workers_critical``)
        — a context manager around the parent's dispatch could not see them.

        Outside an epoch scope the seconds land in :attr:`run_stages`
        (one-time setup work like the presample pass), still visible in
        :meth:`stage_totals` and :meth:`mirror_into`.
        """
        stages = (
            self._current.stages if self._current is not None else self.run_stages
        )
        stages[name] = stages.get(name, 0.0) + seconds

    def count_batch(self, sampled_nodes: int = 0) -> None:
        """Count one mini-batch (and the nodes its sampled subgraph holds)."""
        if self._current is not None:
            self._current.batches += 1
            self._current.sampled_nodes += sampled_nodes

    def record_loss(self, loss: float) -> None:
        """Attach the epoch's training loss to the current profile."""
        if self._current is not None:
            self._current.loss = float(loss)

    # ------------------------------------------------------------------
    # Metrics / tracing export
    # ------------------------------------------------------------------
    @staticmethod
    def _mirror_epoch(
        registry: MetricsRegistry, profile: EpochProfile, prefix: str
    ) -> None:
        registry.counter(f"{prefix}train.epochs").inc()
        registry.histogram(f"{prefix}train.epoch_seconds").observe(profile.seconds)
        registry.counter(f"{prefix}train.batches").inc(profile.batches)
        registry.counter(f"{prefix}train.sampled_nodes").inc(profile.sampled_nodes)
        for name, seconds in profile.stages.items():
            registry.histogram(f"{prefix}train.stage_seconds.{name}").observe(
                seconds
            )

    def mirror_into(self, registry: MetricsRegistry, prefix: str = "") -> None:
        """Replay every recorded epoch's totals into ``registry``.

        For registries that do not exist yet while training runs:
        ``deploy_turbo`` trains first and constructs the ``Turbo`` system
        (and its monitor) afterwards, then replays the profile under the
        system's ``turbo.`` prefix so ``repro trace``/``repro metrics``
        show the training cost next to the serving counters.
        """
        for profile in self.epochs:
            self._mirror_epoch(registry, profile, prefix)
        for name, seconds in self.run_stages.items():
            registry.histogram(f"{prefix}train.stage_seconds.{name}").observe(
                seconds
            )

    def _emit_epoch_trace(self, profile: EpochProfile, started: float) -> None:
        """One ``train_epoch`` span per epoch with per-stage child spans."""
        root = self.tracer.start_trace(
            "train_epoch",
            at=started,
            epoch=profile.epoch,
            batches=profile.batches,
            sampled_nodes=profile.sampled_nodes,
        )
        at = started
        for name, seconds in profile.stages.items():
            child = root.child(name, at)
            child.finish(seconds)
            at += seconds
        self.tracer.finish_trace(root, profile.seconds)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stage_totals(self) -> dict[str, float]:
        """Total seconds per stage: run-level setup plus all epochs."""
        totals: dict[str, float] = dict(self.run_stages)
        for profile in self.epochs:
            for name, seconds in profile.stages.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def total_seconds(self) -> float:
        """Wall-clock seconds across all profiled epochs."""
        return sum(p.seconds for p in self.epochs)

    def report(self) -> str:
        """Plain-text profile: per-stage totals plus epoch/batch counts."""
        totals = self.stage_totals()
        lines = [
            f"epochs={len(self.epochs)}  total={self.total_seconds():.3f}s"
            f"  batches={sum(p.batches for p in self.epochs)}"
            f"  sampled_nodes={sum(p.sampled_nodes for p in self.epochs)}"
        ]
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            share = seconds / self.total_seconds() if self.total_seconds() else 0.0
            lines.append(f"  {name:<12} {seconds:8.3f}s  ({100 * share:5.1f}%)")
        return "\n".join(lines)
