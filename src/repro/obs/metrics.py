"""Named counters, gauges and histograms behind the system telemetry.

The :class:`MetricsRegistry` is the single store of operational metrics:
``repro.system.monitoring.SystemMonitor`` (the dashboard view) and
``LatencyHistogram`` are thin views over it, so every number a dashboard
shows reconciles exactly with a named metric here — a contract pinned by
``tests/test_system/test_tracing.py``.

Metric instruments are deliberately minimal and dependency-free:

* :class:`Counter` — monotonically increasing count;
* :class:`Gauge` — last-write-wins value;
* :class:`Histogram` — reservoir of samples with mean/percentile queries
  (unit-agnostic; the latency views convert seconds to milliseconds).

Metric names are dotted paths (``turbo.requests``,
``turbo.latency.sampling``); the canonical name list lives in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing counter."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def as_int(self) -> int:
        """The counter value as an integer (dashboard convenience)."""
        return int(self.value)


class Gauge:
    """A last-write-wins instantaneous value."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the measured quantity."""
        self.value = float(value)


class Histogram:
    """Reservoir of samples with mean and percentile queries (unit-agnostic).

    Keeps exact ``count`` and ``total`` for all observations; percentile
    queries run over the first ``max_samples`` retained samples.
    """

    def __init__(self, max_samples: int = 100_000) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one sample (must be non-negative)."""
        if value < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        self.total += value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        """Mean over *all* observations (not just the retained reservoir)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, percentile: float) -> float:
        """Sample percentile over the retained reservoir (0 when empty)."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, percentile))


class MetricsRegistry:
    """Create-on-first-use registry of named metric instruments.

    ``counter``/``gauge``/``histogram`` return the existing instrument for
    a name or create it; a name is bound to one instrument kind for the
    registry's lifetime (mixing kinds raises).
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: dict) -> None:
        for store in (self.counters, self.gauges, self.histograms):
            if store is not kind and name in store:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        if name not in self.counters:
            self._check_unique(name, self.counters)
            self.counters[name] = Counter()
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        if name not in self.gauges:
            self._check_unique(name, self.gauges)
            self.gauges[name] = Gauge()
        return self.gauges[name]

    def histogram(self, name: str, factory=Histogram) -> Histogram:
        """The histogram under ``name`` (created on first use via ``factory``).

        ``factory`` lets views register a :class:`Histogram` subclass (the
        latency views add millisecond-flavored accessors); it is ignored
        when the name already exists.
        """
        if name not in self.histograms:
            self._check_unique(name, self.histograms)
            self.histograms[name] = factory()
        return self.histograms[name]

    def snapshot(self) -> dict:
        """All metric values as one plain dict (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": h.mean,
                    "p50": h.percentile(50),
                    "p99": h.percentile(99),
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Plain-text metrics snapshot (the ``repro trace`` CLI prints it)."""
        lines = ["metrics:"]
        for name, c in sorted(self.counters.items()):
            lines.append(f"  {name:<32} {c.value:12.0f}")
        for name, g in sorted(self.gauges.items()):
            lines.append(f"  {name:<32} {g.value:12.2f}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"  {name:<32} count={h.count:<7d} mean={1000 * h.mean:9.2f}ms"
                f"  p99={1000 * h.percentile(99):9.2f}ms"
            )
        return "\n".join(lines)
