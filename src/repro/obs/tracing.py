"""Per-request span trees on the simulated clock.

A *span* is one timed operation: it has a name, simulated-clock ``start``
and ``end`` timestamps, a free-form attribute dict, a list of events
(e.g. faults the injector stamped on it) and child spans.  A *trace* is
the tree rooted at a ``request`` span; ``Turbo.predict`` produces exactly
one closed trace per served request:

.. code-block:: text

    request
    ├── bn_sample        (breakdown slot: sampling)
    ├── feature_fetch    (breakdown slot: features)
    ├── inference        (breakdown slot: prediction)
    └── fallback         (degraded requests only; slot: prediction)

Because all latency in :mod:`repro.system` is *charged* rather than
measured, a span's authoritative duration is the charged seconds recorded
at :meth:`Span.finish` time — ``end`` is derived as ``start + duration``.
That is what lets ``benchmarks/bench_fig8a_response_time.py`` regenerate
the Fig. 8a latency table from exported spans bit-for-bit equal to the
:class:`~repro.system.latency.LatencyBreakdown`-derived table.

Identifiers are deterministic counters (no wall clock, no randomness), so
same-seed replays — including same-seed
:class:`~repro.system.faults.FaultInjector` chaos runs — produce
identical span trees, a contract pinned by ``tests/test_system``.

The module also keeps a process-local *active span* stack
(:func:`current_span` / :func:`use_span`): the storage substrate and the
fault injector use it to stamp low-level events (db/cache op counts,
injected faults) onto whatever pipeline stage is currently executing,
without threading a span argument through every call signature.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "current_span",
    "use_span",
    "render_span_tree",
    "assert_all_traced",
]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Immutable (trace_id, span_id) pair used to propagate trace parentage.

    A caller that already owns a trace (an upstream service, a batch
    replayer) passes its context in
    :class:`~repro.system.service.PredictRequest`; the request's root span
    then joins that trace instead of starting a fresh one.
    """

    trace_id: str
    span_id: str


@dataclass(slots=True)
class Span:
    """One timed operation in a trace tree.

    ``duration`` is authoritative (charged simulated seconds); ``end`` is
    ``start + duration`` and is kept for timeline rendering.  A span with
    ``end is None`` is still open.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    duration: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)
    _next_child: int = 0

    @property
    def closed(self) -> bool:
        """Has :meth:`finish` been called on this span?"""
        return self.end is not None

    def child(self, name: str, at: float) -> "Span":
        """Open a child span named ``name`` starting at simulated time ``at``."""
        self._next_child += 1
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=f"{self.span_id}.{self._next_child}",
            parent_id=self.span_id,
            start=at,
        )
        self.children.append(span)
        return span

    def finish(self, duration: float) -> "Span":
        """Close the span with its charged ``duration`` (simulated seconds)."""
        if duration < 0:
            raise ValueError("span duration cannot be negative")
        if self.closed:
            raise RuntimeError(f"span {self.span_id!r} already finished")
        self.duration = duration
        self.end = self.start + duration
        return self

    def annotate(self, key: str, value: Any) -> "Span":
        """Set one attribute on this span (last write wins)."""
        self.attributes[key] = value
        return self

    def annotate_tree(self, key: str, value: Any) -> "Span":
        """Set one attribute on this span and every descendant."""
        for span in self.iter():
            span.attributes[key] = value
        return self

    def incr(self, key: str, amount: int = 1) -> "Span":
        """Increment a numeric attribute (used for per-span op counters)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount
        return self

    def add_event(self, name: str, at: float, **attrs: Any) -> "Span":
        """Append a point-in-time event (e.g. an injected fault) to the span."""
        self.events.append({"name": name, "at": at, **attrs})
        return self

    def iter(self) -> Iterator["Span"]:
        """Yield this span and all descendants, depth-first, children in order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first), else None."""
        for span in self.iter():
            if span.name == name:
                return span
        return None

    def context(self) -> TraceContext:
        """This span's propagation context (to parent downstream requests)."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)


class Tracer:
    """Produces and retains per-request span trees.

    Trace identifiers are sequence numbers, so a tracer replaying the same
    request stream produces identical trees.  Finished traces are kept in
    :attr:`traces` (optionally bounded by ``max_traces``, oldest evicted
    first) for export and rendering.
    """

    def __init__(self, max_traces: int | None = None) -> None:
        if max_traces is not None and max_traces < 1:
            raise ValueError("max_traces must be positive (or None)")
        self.max_traces = max_traces
        self.traces: list[Span] = []
        self.started = 0
        self.finished = 0

    def start_trace(
        self,
        name: str,
        at: float,
        parent: TraceContext | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a new root span at simulated time ``at``.

        With ``parent`` set, the root joins the caller's trace (its
        ``trace_id`` is inherited and ``parent_id`` links upstream);
        otherwise a fresh deterministic trace id is minted.
        """
        self.started += 1
        if parent is None:
            trace_id = f"t{self.started:08d}"
            span_id = f"{trace_id}.0"
            parent_id = None
        else:
            trace_id = parent.trace_id
            span_id = f"{parent.span_id}.r{self.started}"
            parent_id = parent.span_id
        root = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start=at,
        )
        root.attributes.update(attrs)
        return root

    def finish_trace(self, root: Span, duration: float) -> Span:
        """Close ``root`` with its charged duration and retain the trace."""
        root.finish(duration)
        self.finished += 1
        self.traces.append(root)
        if self.max_traces is not None and len(self.traces) > self.max_traces:
            del self.traces[: len(self.traces) - self.max_traces]
        return root

    def open_traces(self) -> int:
        """Traces started but not finished (should be 0 between requests)."""
        return self.started - self.finished


# ----------------------------------------------------------------------
# Active-span context (storage / fault-injector stamping)
# ----------------------------------------------------------------------
_ACTIVE: list[Span] = []


def current_span() -> Span | None:
    """The innermost active span, or None outside any :func:`use_span` block."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_span(span: Span):
    """Make ``span`` the active span for the duration of the ``with`` block."""
    _ACTIVE.append(span)
    try:
        yield span
    finally:
        _ACTIVE.pop()


# ----------------------------------------------------------------------
# Rendering & invariants
# ----------------------------------------------------------------------
def _format_attrs(span: Span) -> str:
    parts = [f"{k}={v}" for k, v in sorted(span.attributes.items())]
    if span.events:
        parts.append(f"events={len(span.events)}")
    return "  ".join(parts)


def render_span_tree(root: Span) -> str:
    """ASCII rendering of one trace (durations in ms, attrs inline)."""
    lines: list[str] = []

    def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        duration = f"{1000.0 * span.duration:9.2f} ms" if span.closed else "   (open)  "
        attrs = _format_attrs(span)
        lines.append(f"{prefix}{connector}{span.name:<14} {duration}  {attrs}".rstrip())
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(span.children):
            visit(child, child_prefix, i == len(span.children) - 1, False)

    visit(root, "", True, True)
    return "\n".join(lines)


def assert_all_traced(responses) -> None:
    """Fail unless every response carries a *closed* root span.

    The benchmark harnesses (`bench_fig8a_response_time`,
    `bench_resilience`) call this so no request can complete untraced —
    a silent untraced path is a bug, not a degradation.
    """
    missing = [
        getattr(r, "txn_id", "?")
        for r in responses
        if getattr(r, "span", None) is None or not r.span.closed
    ]
    if missing:
        raise AssertionError(
            f"{len(missing)} request(s) completed without a closed root span: "
            f"{missing[:10]}"
        )
