"""JSONL span exporter/loader and the span-derived latency table.

Export format: one JSON object per span per line (OTel-flavored), fields
``trace_id, span_id, parent_id, name, start, end, duration, attributes,
events``.  Children are reconstructed from ``parent_id`` links by
:func:`rebuild_trees`, so a trace file round-trips losslessly (float
values survive exactly: JSON serializes Python floats with shortest
round-trip repr).

:func:`latency_table_from_spans` regenerates the Fig. 8a per-request
latency table — ``(sampling, features, prediction, total)`` in seconds —
from a list of exported traces.  Stage spans map onto breakdown slots as

=============  ===========================
span name      breakdown slot
=============  ===========================
bn_sample      sampling
feature_fetch  features
inference      prediction
fallback       prediction (summed after)
=============  ===========================

and the sums are performed in the same order the pipeline charges them,
so the table is bit-for-bit equal to the
:class:`~repro.system.latency.LatencyBreakdown`-derived one — the
validation gate of ``benchmarks/bench_fig8a_response_time.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .tracing import Span

__all__ = [
    "span_to_dict",
    "write_spans_jsonl",
    "load_spans_jsonl",
    "rebuild_trees",
    "latency_table_from_spans",
]

#: span name -> (slot, order) used when regenerating the latency table.
_SLOT_OF = {
    "bn_sample": "sampling",
    "feature_fetch": "features",
    "inference": "prediction",
    "fallback": "prediction",
}


def span_to_dict(span: Span) -> dict:
    """One span (not its children) as a JSON-serializable dict."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attributes": span.attributes,
        "events": span.events,
    }


def write_spans_jsonl(roots: Iterable[Span], path: str | Path) -> int:
    """Write every span of every trace to ``path`` (one JSON per line).

    Traces are written in order; within a trace, spans are depth-first
    (root first).  Returns the number of span lines written.
    """
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        for root in roots:
            for span in root.iter():
                fh.write(json.dumps(span_to_dict(span)) + "\n")
                count += 1
    return count


def load_spans_jsonl(path: str | Path) -> list[dict]:
    """Read an exported trace file back into a list of span dicts."""
    rows: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def rebuild_trees(rows: Sequence[dict]) -> list[dict]:
    """Reassemble flat span rows into trace trees.

    Returns the root span dicts (those whose parent is absent from the
    file), each with a ``children`` list, in file order.  Children keep
    file order too, which is the depth-first export order.
    """
    by_id: dict[str, dict] = {}
    roots: list[dict] = []
    for row in rows:
        node = dict(row)
        node["children"] = []
        by_id[node["span_id"]] = node
    for row in rows:
        node = by_id[row["span_id"]]
        parent = by_id.get(row["parent_id"]) if row["parent_id"] else None
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def _stage_durations(tree: dict) -> dict[str, list[float]]:
    durations: dict[str, list[float]] = {
        "sampling": [],
        "features": [],
        "prediction": [],
    }

    def visit(node: dict) -> None:
        slot = _SLOT_OF.get(node["name"])
        if slot is not None:
            durations[slot].append(node["duration"])
        for child in node["children"]:
            visit(child)

    visit(tree)
    return durations


def latency_table_from_spans(
    trees: Sequence[dict],
) -> list[tuple[float, float, float, float]]:
    """Per-request ``(sampling, features, prediction, total)`` rows (seconds).

    ``trees`` is the output of :func:`rebuild_trees`.  Stage durations are
    summed in pipeline charge order and the total as
    ``sampling + features + prediction`` — the exact float-operation order
    of :class:`~repro.system.latency.LatencyBreakdown`, so the rows match
    the latency-model-derived table bit-for-bit.
    """
    table: list[tuple[float, float, float, float]] = []
    for tree in trees:
        durations = _stage_durations(tree)
        sampling = 0.0
        for d in durations["sampling"]:
            sampling += d
        features = 0.0
        for d in durations["features"]:
            features += d
        prediction = 0.0
        for d in durations["prediction"]:
            prediction += d
        table.append((sampling, features, prediction, sampling + features + prediction))
    return table
