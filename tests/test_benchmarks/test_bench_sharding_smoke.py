"""Tiny-scale smoke run of the sharded-BN benchmark harness.

The full harness is a slow-marked test at 1M users / 10M edge
contributions; this keeps its plumbing — the streamed workload generator,
snapshot-digest equality, serve parity, the process-pool verification
slice, the shared gate contract, JSON emission — covered by the fast
tier.  Speedup *values* at toy scale are noise (routing overhead does not
amortize against micro per-shard applies), so the gates' pass/fail
outcome is deliberately not asserted here.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

GATES = (
    "ingest_speedup_2_shards",
    "serve_speedup_2_shards",
    "ingest_speedup_4_shards",
    "serve_speedup_4_shards",
)

pytestmark = pytest.mark.sharding


def test_sharding_harness_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    bench = importlib.import_module("bench_sharding")
    monkeypatch.setattr(bench, "N_USERS", 3000)
    monkeypatch.setattr(bench, "N_EDGES", 30000)
    monkeypatch.setattr(bench, "CHUNK_EDGES", 10000)
    monkeypatch.setattr(bench, "N_REQUESTS", 12)
    monkeypatch.setattr(bench, "POOL_SLICE", 6)
    result_path = tmp_path / "BENCH_sharding.json"

    result = bench.run_harness(result_path=result_path)
    capsys.readouterr()  # keep the harness banner out of the test output

    # The sweep ran every shard count and passed its internal bit-exact
    # asserts (snapshot digest, serve parity, pool slice — run_harness
    # would have raised otherwise).
    assert set(result["sweep"]) == {str(n) for n in bench.SHARD_COUNTS}
    for n in bench.SHARD_COUNTS:
        row = result["sweep"][str(n)]
        assert row["ingest"]["deploy_s"] > 0.0
        assert row["serve"]["deploy_s"] > 0.0
        assert sum(row["ingest"]["shard_rows"]) > 0
    assert result["n_requests"] == 12
    assert result["snapshot_digest"]

    # The process-pool slice ran through real forked workers.
    pool_check = result["pool_check"]
    assert pool_check is not None
    assert pool_check["slice"] == 6
    assert pool_check["workers"] >= 1

    # The shared gate contract attached its verdicts and wrote the JSON.
    assert set(result["gates"]) == set(GATES)
    assert isinstance(result["gates_met"], bool)
    on_disk = json.loads(result_path.read_text())
    assert on_disk["gates"] == result["gates"]


def test_committed_sharding_result_passed_gates():
    """The committed full-scale run must have met every gate."""
    committed = BENCHMARKS_DIR.parent / "BENCH_sharding.json"
    result = json.loads(committed.read_text())
    assert result["gates_met"] is True
    assert set(result["gates"]) == set(GATES)
