"""Tiny-scale smoke run of the open-loop load-test harness.

The full sweep is a slow ``loadtest``-marked test; this keeps its plumbing —
capacity calibration, drift-aligned traffic generation, the queue frontend
pass, per-point frontier rows, the hard every-request-traced assert and the
shared gate contract — covered by the fast tier.  Latency and shed numbers
at toy scale are noise, so individual gate verdicts are deliberately not
asserted here (the structural gates — totality and tracing — must still
hold at any scale).
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

GATES = (
    "p99_2x_within_slack",
    "served_fraction_2x",
    "overload_served_fraction",
    "overload_queue_bounded",
    "autoscaler_engaged",
    "no_uncaught_exceptions",
    "all_requests_traced",
)
ROW_FIELDS = (
    "multiplier",
    "offered_qps",
    "realized_qps",
    "arrivals",
    "served",
    "shed",
    "served_fraction",
    "p50_ms",
    "p99_ms",
    "peak_depth",
    "peak_workers",
    "scale_ups",
    "batches",
)


def test_loadtest_harness_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    bench = importlib.import_module("bench_loadtest")
    from repro.datagen import make_d1

    monkeypatch.setattr(bench, "d1_dataset", lambda: make_d1(scale=0.1, seed=0))
    monkeypatch.setattr(bench, "TRAIN_EPOCHS", 2)
    monkeypatch.setattr(bench, "ARRIVALS_1X", 10)
    monkeypatch.setattr(bench, "MULTIPLIERS", (0.5, 2.0, 6.0))
    monkeypatch.setattr(bench, "BATCH_SIZE", 4)
    monkeypatch.setattr(bench, "CALIBRATION_BATCHES", 1)
    result_path = tmp_path / "BENCH_loadtest.json"

    result = bench.run_harness(result_path=result_path)
    capsys.readouterr()  # keep the harness banner out of the test output

    # The sweep ran every point and the per-point rows are fully populated.
    frontier = result["frontier"]
    assert [row["multiplier"] for row in frontier] == [0.5, 2.0, 6.0]
    for row in frontier:
        assert set(ROW_FIELDS) <= set(row)
        assert row["arrivals"] == row["served"] + row["shed"]
        assert row["offered_qps"] > 0.0
    assert result["single_worker_capacity_qps"] > 0.0
    assert result["nominal_qps"] > 0.0

    # run_harness would have raised on any untraced request; the structural
    # gates must hold even at toy scale.
    assert result["uncaught"] == []
    assert set(result["gates"]) == set(GATES)
    assert result["gates"]["no_uncaught_exceptions"]["passed"] is True
    assert result["gates"]["all_requests_traced"]["passed"] is True
    assert isinstance(result["gates_met"], bool)

    on_disk = json.loads(result_path.read_text())
    assert on_disk["frontier"] == frontier


def test_committed_loadtest_result_meets_gates():
    """The committed BENCH_loadtest.json must have been green when written."""
    committed = json.loads(
        (BENCHMARKS_DIR.parent / "BENCH_loadtest.json").read_text()
    )
    assert committed["gates_met"] is True
    for name, gate in committed["gates"].items():
        assert gate["value"] >= gate["minimum"], (name, gate)
    # the frontier must cover the 2x point and a beyond-saturation point
    multipliers = [row["multiplier"] for row in committed["frontier"]]
    assert 2.0 in multipliers
    assert max(multipliers) > 2.0
