"""Fast smoke tests for the slow benchmark harnesses."""
