"""Tiny-scale smoke run of the BN ingest benchmark harness.

The full harness is a slow-marked test; this keeps its plumbing — workload
generation, the bit-exact parity asserts inside every section, the shared
gate contract, JSON emission — covered by the fast tier.  Speedup *values*
at toy scale are noise, so the gates' pass/fail outcome is deliberately
not asserted here.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

SECTIONS = ("window_job", "batch_build", "replay", "ttl_sweep")
GATES = (
    "pair_enumeration_speedup",
    "replay_speedup",
    "batch_build_not_slower",
    "ttl_sweep_not_slower",
)


def test_ingest_harness_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    bench = importlib.import_module("bench_bn_ingest")
    monkeypatch.setattr(bench, "N_USERS", 60)
    monkeypatch.setattr(bench, "DAYS", 2)
    monkeypatch.setattr(bench, "REPEATS", 1)
    result_path = tmp_path / "BENCH_bn_ingest.json"

    result = bench.run_harness(result_path=result_path)
    capsys.readouterr()  # keep the harness banner out of the test output

    # Every section ran, timed both sides, and passed its internal
    # bit-exact parity asserts (run_harness would have raised otherwise).
    assert set(SECTIONS) <= set(result["sections"])
    for name in SECTIONS:
        section = result["sections"][name]
        assert section["reference_s"] > 0.0
        assert section["vectorized_s"] > 0.0
        assert section["speedup"] > 0.0
    assert result["sections"]["window_job"]["contributions"] > 0

    # The shared gate contract attached its verdicts and wrote the JSON.
    assert set(result["gates"]) == set(GATES)
    assert isinstance(result["gates_met"], bool)
    on_disk = json.loads(result_path.read_text())
    assert on_disk["n_users"] == 60
    assert set(SECTIONS) <= set(on_disk["sections"])


def test_committed_ingest_result_meets_gates():
    """The committed BENCH_bn_ingest.json must have been green when written."""
    committed = json.loads(
        (BENCHMARKS_DIR.parent / "BENCH_bn_ingest.json").read_text()
    )
    assert committed["gates_met"] is True
    for name, gate in committed["gates"].items():
        assert gate["value"] >= gate["minimum"], (name, gate)
