"""Cross-benchmark schema pin: every committed BENCH_*.json speaks one contract.

Every benchmark harness writes its result through ``_shared.check_gates``,
so every committed ``BENCH_*.json`` must parse and carry the shared fields:
a non-empty ``gates`` mapping whose rows hold numeric ``value``/``minimum``
and a boolean ``passed`` consistent with them, plus a ``gates_met`` verdict
that is exactly the conjunction of the rows.  A bench that drifts off the
contract (as ``bench_resilience`` once did with its bespoke ``all_ok``
field) fails here before any dashboard or CI consumer trips over it.

``BENCH_fig8a_trace.jsonl`` is a raw trace, not a harness result, and is
excluded by the ``*.json`` glob.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULT_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))

#: results that must exist — a bench silently not committing its JSON (or a
#: rename breaking the glob) fails here, not in a downstream consumer.
REQUIRED_RESULTS = (
    "BENCH_lambda.json",
    "BENCH_lambda_fullgraph.json",
    "BENCH_loadtest.json",
    "BENCH_serving_batch.json",
    "BENCH_sharding.json",
    "BENCH_train_parallel.json",
)


def test_committed_results_exist():
    assert RESULT_FILES, "no committed BENCH_*.json results found"
    names = {p.name for p in RESULT_FILES}
    missing = [name for name in REQUIRED_RESULTS if name not in names]
    assert not missing, f"required bench results not committed: {missing}"


@pytest.mark.parametrize(
    "path", RESULT_FILES, ids=[p.name for p in RESULT_FILES]
)
def test_result_carries_gate_contract(path):
    result = json.loads(path.read_text())
    assert isinstance(result, dict)

    gates = result.get("gates")
    assert isinstance(gates, dict) and gates, f"{path.name}: missing gates"
    for name, gate in gates.items():
        assert isinstance(name, str) and name
        assert isinstance(gate["value"], (int, float)), (path.name, name)
        assert isinstance(gate["minimum"], (int, float)), (path.name, name)
        assert isinstance(gate["passed"], bool), (path.name, name)
        # the verdict is derivable, not free-floating
        assert gate["passed"] == (gate["value"] >= gate["minimum"]), (path.name, name)
        # check_gates must never write non-finite values (json.dumps would
        # emit Infinity/NaN, which is not JSON and breaks strict parsers)
        assert abs(gate["value"]) < float("inf"), (path.name, name)

    assert isinstance(result.get("gates_met"), bool), f"{path.name}: missing gates_met"
    assert result["gates_met"] == all(g["passed"] for g in gates.values()), path.name
