"""Tiny-scale smoke run of the batched-serving benchmark harness.

The full harness is a slow-marked test; this keeps its plumbing — the
ring-heavy workload builder, the bit-exact parity and span-reconciliation
asserts inside every section, the shared gate contract, JSON emission —
covered by the fast tier.  Speedup *values* at toy scale are noise, so the
gates' pass/fail outcome is deliberately not asserted here.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

SECTIONS = ("scalar_path", "end_to_end", "feature_assembly")
GATES = (
    "batched_throughput_speedup",
    "batched_compute_speedup",
    "feature_assembly_speedup",
    "scalar_not_slower",
)


def test_serving_harness_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    bench = importlib.import_module("bench_serving_batch")
    from repro.datagen import make_d1

    monkeypatch.setattr(bench, "d1_dataset", lambda: make_d1(scale=0.1, seed=0))
    monkeypatch.setattr(bench, "TRAIN_EPOCHS", 2)
    monkeypatch.setattr(bench, "N_REQUESTS", 8)
    monkeypatch.setattr(bench, "BATCH_SIZE", 4)
    result_path = tmp_path / "BENCH_serving_batch.json"

    result = bench.run_harness(result_path=result_path)
    capsys.readouterr()  # keep the harness banner out of the test output

    # Every section ran, timed both sides, and passed its internal
    # bit-exact parity / span-reconciliation asserts (run_harness would
    # have raised otherwise).
    assert set(SECTIONS) <= set(result["sections"])
    for name in SECTIONS:
        section = result["sections"][name]
        assert section["reference_s"] > 0.0
        assert section["vectorized_s"] > 0.0
    end_to_end = result["sections"]["end_to_end"]
    assert end_to_end["requests"] == 8
    assert end_to_end["batch_size"] == 4
    assert end_to_end["throughput_speedup"] > 0.0
    assert end_to_end["compute_speedup"] > 0.0
    assert end_to_end["sample_coalescing"] >= 1.0
    assert end_to_end["feature_coalescing"] >= 1.0
    assert result["sections"]["feature_assembly"]["unique_rows"] > 0

    # The shared gate contract attached its verdicts and wrote the JSON.
    assert set(result["gates"]) == set(GATES)
    assert isinstance(result["gates_met"], bool)
    on_disk = json.loads(result_path.read_text())
    assert set(SECTIONS) <= set(on_disk["sections"])


def test_committed_serving_result_meets_gates():
    """The committed BENCH_serving_batch.json must have been green when written."""
    committed = json.loads(
        (BENCHMARKS_DIR.parent / "BENCH_serving_batch.json").read_text()
    )
    assert committed["gates_met"] is True
    for name, gate in committed["gates"].items():
        assert gate["value"] >= gate["minimum"], (name, gate)
